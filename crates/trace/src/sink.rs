//! Pluggable destinations for completed spans and counters.

use std::sync::Mutex;

use crate::tree::Trace;
use crate::{CounterRecord, SpanRecord};

/// A destination for trace records. Sinks must be thread-safe: fork-join
/// workers record concurrently. Implementations should be cheap and
/// non-blocking-ish — they run inline in the instrumented code (at phase
/// granularity, never inside per-move loops).
pub trait Sink: Send + Sync {
    /// Called once per span, when it closes.
    fn record_span(&self, span: SpanRecord);
    /// Called once per counter attachment.
    fn record_counter(&self, counter: CounterRecord);
}

/// A sink that drops everything. Useful as an explicit "tracing off"
/// sink; note that [`crate::Tracer::disabled`] is cheaper still (no ids,
/// no clock reads).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn record_span(&self, _span: SpanRecord) {}
    fn record_counter(&self, _counter: CounterRecord) {}
}

/// A sink that buffers every record in memory, for tests and for
/// assembling a [`Trace`] after the traced region completes.
#[derive(Debug, Default)]
pub struct CollectingSink {
    spans: Mutex<Vec<SpanRecord>>,
    counters: Mutex<Vec<CounterRecord>>,
}

impl CollectingSink {
    /// An empty sink.
    pub fn new() -> CollectingSink {
        CollectingSink::default()
    }

    /// Snapshot of the spans recorded so far (completion order).
    pub fn spans(&self) -> Vec<SpanRecord> {
        match self.spans.lock() {
            Ok(g) => g.clone(),
            Err(_) => Vec::new(),
        }
    }

    /// Snapshot of the counters recorded so far.
    pub fn counters(&self) -> Vec<CounterRecord> {
        match self.counters.lock() {
            Ok(g) => g.clone(),
            Err(_) => Vec::new(),
        }
    }

    /// Assembles the records into a deterministic [`Trace`] tree.
    pub fn build_trace(&self) -> Trace {
        Trace::from_records(&self.spans(), &self.counters())
    }
}

impl Sink for CollectingSink {
    fn record_span(&self, span: SpanRecord) {
        if let Ok(mut g) = self.spans.lock() {
            g.push(span);
        }
    }

    fn record_counter(&self, counter: CounterRecord) {
        if let Ok(mut g) = self.counters.lock() {
            g.push(counter);
        }
    }
}
