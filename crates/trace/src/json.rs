//! A minimal JSON value, writer helpers, and recursive-descent parser.
//!
//! The workspace builds offline with no registry access, so the trace
//! exporter and its schema tests cannot lean on serde. This module is the
//! small, dependency-free subset they need: enough JSON to *emit* the
//! documented trace/metrics schemas and to *parse them back* for
//! validation in tests and tooling. Numbers are kept as `f64`, which is
//! exact for every integer the exporter emits (durations and counters are
//! far below 2^53 in practice); [`Value::as_u64`] rejects values that
//! lost precision.

use std::collections::BTreeMap;

/// A parsed JSON value. Objects preserve no duplicate keys (last wins)
/// and iterate in key order, which keeps comparisons deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly (rejects negatives, fractions, and values beyond 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n < 0.0 || n.fract() != 0.0 || n > 9_007_199_254_740_992.0 {
            return None;
        }
        Some(n as u64)
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Serializes to a compact JSON string ([`parse`]'s inverse on
    /// documents this crate emits).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_to(&mut out);
        out
    }

    fn write_to(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_number(*n, out),
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_to(out);
                }
                out.push(']');
            }
            Value::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_to(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes a number: f64-exact integers print without a fraction so they
/// survive [`Value::as_u64`] round trips; non-finite values (which JSON
/// cannot represent) degrade to `null`.
fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
        out.push_str(&(n as i64).to_string());
    } else {
        out.push_str(&n.to_string());
    }
}

/// Appends `s` to `out` as a JSON string literal (quotes included).
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // lint: checked-cast — char is a Unicode scalar, always < 2^21.
            c if (c as u32) < 0x20 => {
                // lint: checked-cast — char is a Unicode scalar, always < 2^21.
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Returns a message with a byte offset on error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char,
                self.pos - 1,
                got as char
            )),
            None => Err(format!("expected {:?}, got end of input", b as char)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected {:?} at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => break,
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos - 1)),
            }
        }
        self.depth -= 1;
        Ok(Value::Arr(items))
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos - 1)),
            }
        }
        self.depth -= 1;
        Ok(Value::Obj(map))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain UTF-8 bytes.
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                match std::str::from_utf8(&self.bytes[start..self.pos]) {
                    Ok(s) => out.push_str(s),
                    Err(_) => return Err(format!("invalid UTF-8 near byte {start}")),
                }
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs: combine a high surrogate with
                        // the following \uXXXX low surrogate.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                return Err(format!("lone surrogate at byte {}", self.pos));
                            }
                            self.pos += 2;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(format!("bad surrogate pair at byte {}", self.pos));
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return Err(format!("bad code point at byte {}", self.pos)),
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", self.pos)),
                },
                Some(_) => return Err(format!("control byte in string at byte {}", self.pos - 1)),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut cp: u32 = 0;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(format!("bad \\u escape at byte {}", self.pos)),
            };
            cp = cp * 16 + d;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_document() {
        let v = parse(r#"{"a": [1, 2.5, null, true], "b": {"c": "x\n\"y\""}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 4);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\n\"y\"")
        );
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{0001}π — ok";
        let mut doc = String::from("[");
        write_escaped(nasty, &mut doc);
        doc.push(']');
        let v = parse(&doc).unwrap();
        assert_eq!(v.as_arr().unwrap()[0].as_str(), Some(nasty));
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
        assert!(parse(r#""\ud83d""#).is_err(), "lone surrogate");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("[1] trailing").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse(&("[".repeat(1000) + &"]".repeat(1000))).is_err());
    }

    #[test]
    fn as_u64_guards_precision() {
        assert_eq!(parse("3").unwrap().as_u64(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
        assert_eq!(parse("1e300").unwrap().as_u64(), None);
    }
}
