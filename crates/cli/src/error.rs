//! CLI error type carrying the process exit code.
//!
//! Exit-code contract (documented in the README):
//!
//! * `0` — success (a degraded decomposition still exits 0 unless
//!   `--strict` is given; the degradation reason goes to stderr),
//! * `1` — internal error (partitioner defect, worker panic),
//! * `2` — bad input: unparseable matrix file, bad flags, `K = 0`, ...
//! * `3` — infeasible request rejected under `--strict` (balance target
//!   cannot be met),
//! * `4` — a resource budget was exhausted under `--strict`,
//! * `5` — the chosen model has no big-index (u64) path for a matrix
//!   that needs one; the stderr hint names the width-capable models.

use fgh_core::{ErrorCategory, FghError};

/// An error plus the exit code the process should return.
#[derive(Debug)]
pub struct CmdError {
    /// Process exit code (1–4, see module docs).
    pub code: u8,
    /// Message printed to stderr.
    pub msg: String,
}

impl CmdError {
    /// An error with an explicit exit code.
    pub fn new(code: u8, msg: impl Into<String>) -> Self {
        CmdError {
            code,
            msg: msg.into(),
        }
    }
}

/// Plain-string errors come from flag parsing, file loading, and similar
/// user-facing input problems — exit code 2.
impl From<String> for CmdError {
    fn from(msg: String) -> Self {
        CmdError { code: 2, msg }
    }
}

/// Pipeline errors map through [`FghError::category`], except
/// [`FghError::UnsupportedWidth`], which gets its own exit code (5) and a
/// hint naming the models that do run on the big-index path — the fix is
/// almost always `--model`, not a different matrix.
impl From<FghError> for CmdError {
    fn from(e: FghError) -> Self {
        if let FghError::UnsupportedWidth { .. } = &e {
            return CmdError {
                code: 5,
                msg: format!(
                    "{e}\nhint: width-capable models: graph-1d, hypergraph-1d-colnet, \
                     hypergraph-1d-rownet, fine-grain-2d"
                ),
            };
        }
        let code = match e.category() {
            ErrorCategory::BadInput => 2,
            ErrorCategory::Infeasible => 3,
            ErrorCategory::Budget => 4,
            ErrorCategory::Internal => 1,
        };
        CmdError {
            code,
            msg: e.to_string(),
        }
    }
}

/// Result alias for subcommands.
pub type CmdResult = Result<(), CmdError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_follow_categories() {
        assert_eq!(CmdError::from("bad flag".to_string()).code, 2);
        assert_eq!(CmdError::from(FghError::InvalidInput("k".into())).code, 2);
        assert_eq!(CmdError::from(FghError::Infeasible("eps".into())).code, 3);
        assert_eq!(
            CmdError::from(FghError::BudgetExhausted("wall".into())).code,
            4
        );
        assert_eq!(
            CmdError::from(FghError::Model(fgh_core::ModelError::Invalid("x".into()))).code,
            1
        );
    }

    #[test]
    fn unsupported_width_gets_exit_5_and_a_model_hint() {
        let e = CmdError::from(FghError::UnsupportedWidth {
            model: "checkerboard-2d",
            width: fgh_sparse::IndexWidth::U64,
        });
        assert_eq!(e.code, 5);
        assert!(e.msg.contains("checkerboard-2d"), "{}", e.msg);
        assert!(e.msg.contains("64-bit"), "{}", e.msg);
        for capable in [
            "graph-1d",
            "hypergraph-1d-colnet",
            "hypergraph-1d-rownet",
            "fine-grain-2d",
        ] {
            assert!(
                e.msg.contains(capable),
                "hint must name {capable}: {}",
                e.msg
            );
        }
    }
}
