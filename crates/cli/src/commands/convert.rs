//! `fgh convert` — export a matrix's decomposition model as a standard
//! partitioning-tool input file (`.hgr` for PaToH/hMETIS, `.graph` for
//! MeTiS), enabling cross-checks against the original tools.

use fgh_core::models::{ColumnNetModel, FineGrainModel, RowNetModel, StandardGraphModel};

use crate::commands::load_matrix;
use crate::error::CmdResult;
use crate::opts::Opts;

pub fn run(args: &[String]) -> CmdResult {
    let o = Opts::parse(args)?;
    let path = o.one_positional("matrix.mtx")?;
    let a = load_matrix(path)?;
    let model = o.get("model").unwrap_or("fine-grain-2d");
    let out = o
        .get("out")
        .map(String::from)
        .unwrap_or_else(|| default_name(path, model));

    match model {
        "fine-grain-2d" => {
            let m = FineGrainModel::build(&a).map_err(|e| e.to_string())?;
            fgh_hypergraph::io::write_hgr(m.hypergraph(), &out).map_err(|e| e.to_string())?;
            println!(
                "wrote {out}: fine-grain hypergraph, |V|={} |N|={} pins={}",
                m.hypergraph().num_vertices(),
                m.hypergraph().num_nets(),
                m.hypergraph().num_pins()
            );
        }
        "hypergraph-1d-colnet" => {
            let m = ColumnNetModel::build(&a).map_err(|e| e.to_string())?;
            fgh_hypergraph::io::write_hgr(m.hypergraph(), &out).map_err(|e| e.to_string())?;
            println!(
                "wrote {out}: column-net hypergraph, |V|={} |N|={}",
                m.hypergraph().num_vertices(),
                m.hypergraph().num_nets()
            );
        }
        "hypergraph-1d-rownet" => {
            let m = RowNetModel::build(&a).map_err(|e| e.to_string())?;
            fgh_hypergraph::io::write_hgr(m.hypergraph(), &out).map_err(|e| e.to_string())?;
            println!(
                "wrote {out}: row-net hypergraph, |V|={} |N|={}",
                m.hypergraph().num_vertices(),
                m.hypergraph().num_nets()
            );
        }
        "graph-1d" => {
            let m = StandardGraphModel::build(&a).map_err(|e| e.to_string())?;
            fgh_graph::io::write_metis(m.graph(), &out).map_err(|e| e.to_string())?;
            println!(
                "wrote {out}: standard graph model, n={} m={}",
                m.graph().n(),
                m.graph().num_edges()
            );
        }
        other => return Err(format!("cannot export model {other:?} (no file format)").into()),
    }
    Ok(())
}

fn default_name(matrix_path: &str, model: &str) -> String {
    let stem = std::path::Path::new(matrix_path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("matrix");
    let ext = if model == "graph-1d" { "graph" } else { "hgr" };
    format!("{stem}.{model}.{ext}")
}
