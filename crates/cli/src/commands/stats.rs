//! `fgh stats` — Table-1 style matrix properties.

use fgh_sparse::MatrixStats;

use crate::commands::load_matrix;
use crate::error::CmdResult;
use crate::opts::Opts;

pub fn run(args: &[String]) -> CmdResult {
    let o = Opts::parse(args)?;
    let path = o.one_positional("matrix.mtx")?;
    let a = load_matrix(path)?;
    let s = MatrixStats::compute(&a);
    println!("matrix:      {path}");
    println!("rows x cols: {} x {}", s.nrows, s.ncols);
    println!("nonzeros:    {}", s.nnz);
    println!(
        "per row:     min {} / max {} / avg {:.2}",
        s.row_min, s.row_max, s.row_avg
    );
    println!(
        "per col:     min {} / max {} / avg {:.2}",
        s.col_min, s.col_max, s.col_avg
    );
    println!("square:      {}", a.is_square());
    if a.is_square() {
        println!("full diag:   {}", a.has_full_diagonal());
        println!("sym pattern: {}", a.pattern_symmetric());
    }
    Ok(())
}
