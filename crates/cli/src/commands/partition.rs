//! `fgh partition` — decompose a matrix and optionally write the mapping.

use std::io::Write;

use fgh_core::{decompose_workload_any, Decomposition, WorkloadAny, WorkloadOutcome};
use fgh_sparse::AnyCsrMatrix;

use crate::commands::{finish_outcome, load_matrix_any};
use crate::error::CmdResult;
use crate::opts::Opts;

pub fn run(args: &[String]) -> CmdResult {
    let o = Opts::parse(args)?;
    let path = o.one_positional("matrix.mtx")?;
    let a = load_matrix_any(path)?;
    let cfg = o.decompose_config(o.parse_required("k")?)?;
    let out = finish_outcome(
        decompose_workload_any(WorkloadAny::Spmv(&a), &cfg).and_then(WorkloadOutcome::into_spmv),
        o.has("strict"),
    )?;

    if let Some(trace) = &out.trace {
        eprint!("{}", trace.render());
    }

    println!(
        "matrix:            {path} ({} rows, {} nnz)",
        a.nrows(),
        a.nnz()
    );
    println!("model:             {}", cfg.model.name());
    println!("index width:       {} bits", out.width.bits());
    println!("processors:        {}", cfg.k);
    println!("objective:         {}", out.objective);
    println!(
        "comm volume:       {} words ({:.4} scaled by M)",
        out.stats.total_volume(),
        out.stats.scaled_total_volume()
    );
    println!(
        "  expand:          {} words, {} messages",
        out.stats.expand_volume, out.stats.expand_messages
    );
    println!(
        "  fold:            {} words, {} messages",
        out.stats.fold_volume, out.stats.fold_messages
    );
    println!("max sent/proc:     {} words", out.stats.max_sent_words());
    println!(
        "msgs/proc:         avg {:.2}, max {}",
        out.stats.avg_messages_per_proc(),
        out.stats.max_messages_per_proc()
    );
    println!(
        "load imbalance:    {:.2}%",
        out.stats.load_imbalance_percent()
    );
    println!("partition time:    {:.3}s", out.elapsed.as_secs_f64());
    match out.status.reason() {
        Some(r) => println!("status:            degraded ({}): {r}", r.code()),
        None => println!("status:            full"),
    }

    if let Some(out_path) = o.get("out") {
        write_mapping(&out.decomposition, out_path)?;
        println!("mapping written:   {out_path}");
    }
    if let Some(json_path) = o.get("metrics-json") {
        // Dispatch on the carrier width; the document itself only reads
        // width-independent dimensions from the matrix.
        let doc = match &a {
            AnyCsrMatrix::U32(m) => fgh_core::metrics_json(m, &cfg, &out),
            AnyCsrMatrix::U64(m) => fgh_core::metrics_json(m, &cfg, &out),
        } + "\n";
        std::fs::write(json_path, doc).map_err(|e| format!("{json_path}: {e}"))?;
        println!("metrics written:   {json_path}");
    }
    Ok(())
}

/// Writes a decomposition as a plain-text mapping file:
/// line 1: `k n nnz`; then `n` vector-owner lines; then `nnz`
/// nonzero-owner lines (CSR order).
pub fn write_mapping(d: &Decomposition, path: &str) -> Result<(), String> {
    let f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
    let mut w = std::io::BufWriter::new(f);
    let io_err = |e: std::io::Error| format!("{path}: {e}");
    writeln!(w, "{} {} {}", d.k, d.n, d.nonzero_owner.len()).map_err(io_err)?;
    for &p in &d.vec_owner {
        writeln!(w, "{p}").map_err(io_err)?;
    }
    for &p in &d.nonzero_owner {
        writeln!(w, "{p}").map_err(io_err)?;
    }
    w.flush().map_err(io_err)
}

/// Reads a mapping file written by [`write_mapping`].
#[cfg_attr(not(test), allow(dead_code))]
pub fn read_mapping(path: &str) -> Result<Decomposition, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| format!("{path}: empty file"))?;
    let mut it = header.split_whitespace();
    let parse = |t: Option<&str>, what: &str| -> Result<u64, String> {
        t.ok_or_else(|| format!("{path}: missing {what}"))?
            .parse()
            .map_err(|e| format!("{path}: bad {what}: {e}"))
    };
    let k = u32::try_from(parse(it.next(), "k")?).map_err(|_| format!("{path}: k out of range"))?;
    let n = parse(it.next(), "n")?;
    let nnz = usize::try_from(parse(it.next(), "nnz")?)
        .map_err(|_| format!("{path}: nnz out of range"))?;
    let mut nums = lines.map(|l| l.trim().parse::<u32>());
    let mut take = |count: usize, what: &str| -> Result<Vec<u32>, String> {
        (0..count)
            .map(|_| {
                nums.next()
                    .ok_or_else(|| format!("{path}: truncated {what}"))?
                    .map_err(|e| format!("{path}: bad {what}: {e}"))
            })
            .collect()
    };
    let vec_owner = take(n as usize, "vector owners")?;
    let nonzero_owner = take(nnz, "nonzero owners")?;
    Ok(Decomposition {
        k,
        n,
        nonzero_owner,
        vec_owner,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_roundtrip() {
        let d = Decomposition {
            k: 3,
            n: 2,
            nonzero_owner: vec![0, 2, 1],
            vec_owner: vec![2, 0],
        };
        let dir = std::env::temp_dir().join("fgh_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("map.txt");
        let path = path.to_str().unwrap();
        write_mapping(&d, path).unwrap();
        let back = read_mapping(path).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn read_mapping_rejects_garbage() {
        let dir = std::env::temp_dir().join("fgh_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.txt");
        std::fs::write(&path, "2 2\n0\n").unwrap();
        assert!(read_mapping(path.to_str().unwrap()).is_err());
        std::fs::write(&path, "2 2 2\n0\n1\nxyz\n1\n").unwrap();
        assert!(read_mapping(path.to_str().unwrap()).is_err());
    }
}
