//! `fgh compare` — all models on one matrix, Table-2 style row.

use fgh_core::{
    decompose_workload, DecomposeConfig, Model, Workload, WorkloadKind, WorkloadOutcome,
};

use crate::commands::{finish_outcome, load_matrix};
use crate::error::{CmdError, CmdResult};
use crate::opts::Opts;

pub fn run(args: &[String]) -> CmdResult {
    let o = Opts::parse(args)?;
    let path = o.one_positional("matrix.mtx")?;
    let a = load_matrix(path)?;
    let k: u32 = o.parse_required("k")?;
    let seed: u64 = o.parse_or("seed", 1)?;

    println!(
        "{path}: {} rows, {} nonzeros, K = {k}\n",
        a.nrows(),
        a.nnz()
    );
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>8} {:>9} {:>9}",
        "model", "volume", "vol/M", "max/proc", "msgs/p", "imbal%", "time"
    );
    println!("{}", "-".repeat(84));
    // The comparison is an SpMV shoot-out: SpGEMM-workload models need a
    // second operand and live under `fgh spgemm`.
    for model in Model::ALL
        .into_iter()
        .filter(|m| m.workload() == WorkloadKind::Spmv)
    {
        let cfg = DecomposeConfig::new(model, k)
            .with_seed(seed)
            .with_budget(o.budget()?)
            .with_parallelism(o.parallelism()?);
        let out = finish_outcome(
            decompose_workload(Workload::Spmv(&a), &cfg).and_then(WorkloadOutcome::into_spmv),
            o.has("strict"),
        )
        .map_err(|e| CmdError::new(e.code, format!("{}: {}", model.name(), e.msg)))?;
        println!(
            "{:<22} {:>10} {:>10.4} {:>10} {:>8.2} {:>9.2} {:>8.3}s",
            model.name(),
            out.stats.total_volume(),
            out.stats.scaled_total_volume(),
            out.stats.max_sent_words(),
            out.stats.avg_messages_per_proc(),
            out.stats.load_imbalance_percent(),
            out.elapsed.as_secs_f64(),
        );
    }
    Ok(())
}
