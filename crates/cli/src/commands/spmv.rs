//! `fgh spmv` — decompose, execute one distributed SpMV, verify.

use fgh_core::{decompose_workload, Tracer, Workload, WorkloadOutcome};
use fgh_spmv::parallel::parallel_spmv;
use fgh_spmv::DistributedSpmv;

use crate::commands::{finish_outcome, load_matrix};
use crate::error::CmdResult;
use crate::opts::Opts;

pub fn run(args: &[String]) -> CmdResult {
    let o = Opts::parse(args)?;
    let path = o.one_positional("matrix.mtx")?;
    let a = load_matrix(path)?;
    let cfg = o.decompose_config(o.parse_required("k")?)?;
    let out = finish_outcome(
        decompose_workload(Workload::Spmv(&a), &cfg).and_then(WorkloadOutcome::into_spmv),
        o.has("strict"),
    )?;
    if let Some(trace) = &out.trace {
        eprint!("{}", trace.render());
    }
    let plan = DistributedSpmv::build(&a, &out.decomposition).map_err(|e| e.to_string())?;

    let x: Vec<f64> = (0..a.ncols())
        .map(|j| 1.0 + (j % 101) as f64 * 1e-2)
        .collect();
    let threaded = o.has("parallel");
    let (y, comm) = if threaded {
        parallel_spmv(&plan, &x).map_err(|e| e.to_string())?
    } else if o.has("trace") {
        // A second span tree for the execution itself: the simulator's
        // expand / local-mult / fold phases with word counters.
        let (tracer, sink) = Tracer::collecting();
        let root = tracer.span("spmv");
        let r = plan
            .multiply_traced(&x, &root.handle())
            .map_err(|e| e.to_string())?;
        drop(root);
        eprint!("{}", sink.build_trace().render());
        r
    } else {
        plan.multiply(&x).map_err(|e| e.to_string())?
    };

    let y_serial = a.spmv(&x).map_err(|e| e.to_string())?;
    let max_err = y
        .iter()
        .zip(&y_serial)
        .map(|(p, s)| (p - s).abs())
        .fold(0.0f64, f64::max);

    println!(
        "executor:        {}",
        if threaded {
            "threaded (one thread per processor)"
        } else {
            "simulator"
        }
    );
    println!("model:           {}", cfg.model.name());
    println!(
        "words moved:     {} (expand {}, fold {})",
        comm.total_words(),
        comm.expand_words,
        comm.fold_words
    );
    println!(
        "messages:        {} (expand {}, fold {})",
        comm.total_messages(),
        comm.expand_messages,
        comm.fold_messages
    );
    println!("modeled volume:  {} words", out.stats.total_volume());
    println!("max |err|:       {max_err:.3e}");
    if comm.total_words() != out.stats.total_volume() {
        return Err(crate::error::CmdError::new(
            1,
            "executed word count does not match the model (bug)",
        ));
    }
    if max_err > 1e-6 {
        return Err(crate::error::CmdError::new(
            1,
            format!("numeric mismatch vs serial SpMV: {max_err}"),
        ));
    }
    println!("verified: distributed result matches serial, traffic matches model");
    Ok(())
}
