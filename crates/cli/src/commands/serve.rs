//! `fgh serve` — the partition-as-a-service daemon, plus its load
//! client and self-test harness.
//!
//! Four modes, one subcommand:
//!
//! * **daemon** (default): bind, serve until SIGTERM/SIGINT, drain,
//!   optionally write the final `fgh-serve-metrics/1` report.
//! * **`--self-test`**: start an in-process daemon with fault injection,
//!   hammer it with the hostile load mix, shut it down, and fail unless
//!   everything came back typed and the drain was clean — the CI smoke
//!   job in one flag.
//! * **`--load ADDR`**: run the load generator against an external
//!   daemon.
//! * **`--check-metrics FILE`**: validate a metrics report file against
//!   the schema (CI artifact validation).

use std::time::Duration;

use fgh_serve::client::{LoadConfig, LoadReport};
use fgh_serve::metrics::validate_serve_metrics_value;
use fgh_serve::server::{ServeConfig, Server};
use fgh_serve::{run_load, Listen, ServeSnapshot};

use crate::error::{CmdError, CmdResult};
use crate::opts::Opts;

pub fn run(args: &[String]) -> CmdResult {
    let o = Opts::parse(args)?;
    if let Some(path) = o.get("check-metrics") {
        return check_metrics(path);
    }
    if o.has("self-test") {
        return self_test(&o);
    }
    if let Some(addr) = o.get("load") {
        return load(addr, &o);
    }
    daemon(&o)
}

fn serve_config(o: &Opts) -> Result<ServeConfig, String> {
    let mut cfg = ServeConfig::loopback();
    cfg.listen = match o.get("uds") {
        #[cfg(unix)]
        Some(path) => Listen::Unix(path.into()),
        #[cfg(not(unix))]
        Some(_) => return Err("--uds is only supported on unix".into()),
        None => Listen::Tcp(o.get("listen").unwrap_or("127.0.0.1:7713").to_string()),
    };
    cfg.workers = o.parse_or("workers", 4usize)?;
    cfg.queue_capacity = o.parse_or("queue", 32usize)?;
    cfg.cache_bytes = o.parse_or("cache-bytes", 8usize << 20)?;
    cfg.drain = Duration::from_millis(o.parse_or("drain-ms", 10_000u64)?);
    cfg.budget_ceiling = o.budget()?;
    cfg.parallelism = o.parallelism()?;
    cfg.fault_injection = o.has("fault-injection");
    Ok(cfg)
}

fn write_metrics(path: &str, snapshot: &ServeSnapshot) -> CmdResult {
    let doc = snapshot.to_document();
    validate_serve_metrics_value(&doc)
        .map_err(|e| CmdError::new(1, format!("internal: metrics failed validation: {e}")))?;
    std::fs::write(path, doc.to_json()).map_err(|e| format!("{path}: {e}"))?;
    eprintln!("metrics report written to {path}");
    Ok(())
}

fn print_snapshot(s: &ServeSnapshot) {
    println!("connections:       {}", s.accepted_connections);
    println!(
        "jobs:              {} admitted, {} completed, {} cancelled, {} degraded",
        s.admitted, s.completed, s.cancelled_jobs, s.degraded
    );
    println!(
        "rejections:        {} overloaded, {} bad-request, {} bad-frame, {} shutting-down",
        s.rejected_overloaded,
        s.rejected_bad_request,
        s.rejected_bad_frame,
        s.rejected_shutting_down
    );
    println!(
        "workers:           {} configured, {} panics contained, {} respawned",
        s.workers, s.worker_panics, s.worker_respawns
    );
    println!(
        "queue:             capacity {}, peak depth {}",
        s.queue_capacity, s.queue_peak_depth
    );
    println!(
        "cache:             {} hits, {} misses, {} evictions, {} integrity failures",
        s.cache_hits, s.cache_misses, s.cache_evictions, s.cache_integrity_failures
    );
    println!(
        "drain:             {} ({} jobs finished while draining)",
        if s.drain_clean {
            "clean"
        } else {
            "deadline overrun (stragglers cancelled)"
        },
        s.drained_jobs
    );
}

fn daemon(o: &Opts) -> CmdResult {
    let mut cfg = serve_config(o)?;
    cfg.watch_signals = true;
    let handle =
        Server::start(cfg).map_err(|e| CmdError::new(1, format!("failed to start: {e}")))?;
    eprintln!("fgh serve listening on {}", handle.addr());
    // Orchestrators (and the CI smoke job) read the bound address from
    // this file — essential with an ephemeral port.
    if let Some(path) = o.get("addr-file") {
        std::fs::write(path, handle.addr()).map_err(|e| format!("{path}: {e}"))?;
    }
    let snapshot = handle.join();
    eprintln!("fgh serve drained and stopped");
    print_snapshot(&snapshot);
    if let Some(path) = o.get("metrics-json") {
        write_metrics(path, &snapshot)?;
    }
    if snapshot.drain_clean {
        Ok(())
    } else {
        Err(CmdError::new(
            1,
            "drain deadline overrun: in-flight jobs were cancelled",
        ))
    }
}

fn load_config(o: &Opts) -> Result<LoadConfig, String> {
    let mut cfg = LoadConfig::new(
        o.parse_or("jobs", 72usize)?,
        o.parse_or("concurrency", 12usize)?,
    );
    cfg.inject = o.has("inject");
    if let Some(m) = o.get("matrix") {
        cfg.matrix = m.to_string();
    }
    cfg.scale = o.parse_or("scale", 64u32)?;
    Ok(cfg)
}

fn print_report(r: &LoadReport) {
    println!(
        "load:              {} jobs, {} full, {} degraded",
        r.jobs, r.ok_full, r.ok_degraded
    );
    println!(
        "injected:          {} malformed frames, {} disconnects, {} panics, {} bad requests",
        r.malformed_sent, r.disconnects_sent, r.panics_sent, r.bad_requests_sent
    );
    for (code, n) in &r.typed_errors {
        println!("typed error:       {code} x{n}");
    }
    for v in &r.violations {
        println!("VIOLATION:         {v}");
    }
}

fn load(addr: &str, o: &Opts) -> CmdResult {
    let report = run_load(addr, &load_config(o)?);
    print_report(&report);
    if report.is_clean() {
        Ok(())
    } else {
        Err(CmdError::new(
            1,
            format!(
                "load run saw {} protocol violations and {} refused connections",
                report.violations.len(),
                report.connect_failures
            ),
        ))
    }
}

fn self_test(o: &Opts) -> CmdResult {
    let mut cfg = serve_config(o)?;
    // Self-test always runs loopback/ephemeral with faults enabled and a
    // deliberately small queue so admission control is actually exercised.
    cfg.listen = Listen::Tcp("127.0.0.1:0".into());
    cfg.fault_injection = true;
    cfg.queue_capacity = cfg.queue_capacity.min(8);
    cfg.drain = Duration::from_secs(30);
    let handle =
        Server::start(cfg).map_err(|e| CmdError::new(1, format!("failed to start: {e}")))?;
    eprintln!("self-test daemon on {}", handle.addr());

    let mut lc = load_config(o)?;
    lc.inject = true;
    let report = run_load(handle.addr(), &lc);
    handle.shutdown();
    let snapshot = handle.join();

    print_report(&report);
    print_snapshot(&snapshot);
    if let Some(path) = o.get("metrics-json") {
        write_metrics(path, &snapshot)?;
    }

    let mut failures: Vec<String> = Vec::new();
    if !report.is_clean() {
        failures.push(format!(
            "{} protocol violations, {} refused connections",
            report.violations.len(),
            report.connect_failures
        ));
    }
    if !snapshot.drain_clean {
        failures.push("drain deadline overrun".into());
    }
    if report.disconnects_sent > 0 && snapshot.cancelled_jobs == 0 {
        failures.push("disconnects were injected but no job was cancelled".to_string());
    }
    if report.panics_sent > 0 && snapshot.worker_panics == 0 {
        failures.push("panics were injected but none was contained".to_string());
    }
    if failures.is_empty() {
        println!("self-test:         PASS");
        Ok(())
    } else {
        Err(CmdError::new(
            1,
            format!("self-test FAILED: {}", failures.join("; ")),
        ))
    }
}

fn check_metrics(path: &str) -> CmdResult {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let v = fgh_trace::json::parse(&text).map_err(|e| format!("{path}: not valid json: {e}"))?;
    validate_serve_metrics_value(&v).map_err(|e| format!("{path}: {e}"))?;
    println!("{path}: valid fgh-serve-metrics/1");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn self_test_passes_end_to_end() {
        let dir = std::env::temp_dir().join("fgh_cli_serve_test");
        std::fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("serve-metrics.json");
        let metrics_s = metrics.to_str().unwrap();
        run(&args(&format!(
            "--self-test --jobs 48 --concurrency 8 --workers 3 --metrics-json {metrics_s}"
        )))
        .unwrap();
        // And the artifact validator accepts what self-test wrote.
        run(&args(&format!("--check-metrics {metrics_s}"))).unwrap();
    }

    #[test]
    fn check_metrics_rejects_garbage() {
        let dir = std::env::temp_dir().join("fgh_cli_serve_test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad-metrics.json");
        std::fs::write(&bad, "{\"schema\":\"bogus/9\"}").unwrap();
        assert!(run(&args(&format!("--check-metrics {}", bad.display()))).is_err());
        assert!(run(&args("--check-metrics /nonexistent/metrics.json")).is_err());
    }
}
