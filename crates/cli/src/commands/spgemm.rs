//! `fgh spgemm` — partition the fine-grain SpGEMM task hypergraph of
//! `C = A · B`, replay the partition through the storage-traffic
//! simulator, and cross-check that the measured remote traffic equals
//! the model-predicted communication volume.

use fgh_core::{decompose_workload_any, SpgemmOutcome, WorkloadAny, WorkloadOutcome};
use fgh_sparse::AnyCsrMatrix;
use fgh_traffic::TrafficReport;

use crate::commands::{finish_spgemm, load_matrix_any};
use crate::error::{CmdError, CmdResult};
use crate::opts::Opts;

pub fn run(args: &[String]) -> CmdResult {
    let o = Opts::parse(args)?;
    let (path_a, path_b) = o.one_or_two_positional("A.mtx [B.mtx]")?;
    let a = load_matrix_any(path_a)?;
    let b = match path_b {
        Some(p) => load_matrix_any(p)?,
        None => a.clone(), // one operand: the A·A product
    };
    let cfg = o.decompose_config_for("spgemm-fine-grain", o.parse_required("k")?)?;
    let out = finish_spgemm(
        decompose_workload_any(WorkloadAny::Spgemm(&a, &b), &cfg)
            .and_then(WorkloadOutcome::into_spgemm),
        o.has("strict"),
    )?;

    if let Some(trace) = &out.trace {
        eprint!("{}", trace.render());
    }

    let (aw, bw, report) = replay_traffic(&a, &b, &out)?;
    if report.total_remote() != out.stats.total_volume() {
        return Err(CmdError::new(
            1,
            format!(
                "traffic simulator measured {} remote words but the model predicted {} — \
                 the exactness invariant is broken",
                report.total_remote(),
                out.stats.total_volume()
            ),
        ));
    }

    println!(
        "A:                 {path_a} ({} x {}, {} nnz)",
        a.nrows(),
        a.ncols(),
        a.nnz()
    );
    println!(
        "B:                 {} ({} x {}, {} nnz)",
        path_b.unwrap_or("= A"),
        b.nrows(),
        b.ncols(),
        b.nnz()
    );
    println!("model:             {}", cfg.model.name());
    println!("index width:       {} bits", out.width.bits());
    println!("processors:        {}", cfg.k);
    println!("multiply tasks:    {} (flops)", out.flops);
    println!("objective:         {}", out.objective);
    println!("comm volume:       {} words", out.stats.total_volume());
    println!("  expand A:        {} words", out.stats.a_expand_volume);
    println!("  expand B:        {} words", out.stats.b_expand_volume);
    println!("  fold C:          {} words", out.stats.fold_volume);
    println!(
        "msgs/proc max:     {} ({} messages total)",
        out.stats.max_messages_per_proc(),
        out.stats.total_messages()
    );
    println!(
        "load imbalance:    {:.2}%",
        out.stats.load_imbalance_percent()
    );
    println!("simulated traffic (storage replay):");
    println!(
        "  A reads:         {} dram, {} remote",
        report.a.dram_reads, report.a.remote_reads
    );
    println!(
        "  B reads:         {} dram, {} remote",
        report.b.dram_reads, report.b.remote_reads
    );
    println!(
        "  C writes:        {} dram, {} remote",
        report.c.dram_writes, report.c.remote_writes
    );
    println!(
        "  total remote:    {} words (== predicted volume)",
        report.total_remote()
    );
    println!("partition time:    {:.3}s", out.elapsed.as_secs_f64());
    match out.status.reason() {
        Some(r) => println!("status:            degraded ({}): {r}", r.code()),
        None => println!("status:            full"),
    }

    if let Some(json_path) = o.get("metrics-json") {
        let traffic = report.to_value();
        let doc = match (&aw, &bw) {
            (AnyCsrMatrix::U32(am), AnyCsrMatrix::U32(bm)) => {
                fgh_core::spgemm_metrics_json(am, bm, &cfg, &out, Some(&traffic))
            }
            (AnyCsrMatrix::U64(am), AnyCsrMatrix::U64(bm)) => {
                fgh_core::spgemm_metrics_json(am, bm, &cfg, &out, Some(&traffic))
            }
            _ => unreachable!("both operands converted to the outcome width"),
        } + "\n";
        std::fs::write(json_path, doc).map_err(|e| format!("{json_path}: {e}"))?;
        println!("metrics written:   {json_path}");
    }
    Ok(())
}

/// Runs the storage-traffic simulator at the outcome's carrier width and
/// returns the width-converted operands alongside the report (the
/// metrics document reuses them).
fn replay_traffic(
    a: &AnyCsrMatrix,
    b: &AnyCsrMatrix,
    out: &SpgemmOutcome,
) -> Result<(AnyCsrMatrix, AnyCsrMatrix, TrafficReport), CmdError> {
    let aw = a
        .convert_width(out.width)
        .map_err(|e| CmdError::new(1, format!("width conversion: {e}")))?;
    let bw = b
        .convert_width(out.width)
        .map_err(|e| CmdError::new(1, format!("width conversion: {e}")))?;
    let report = match (&aw, &bw) {
        (AnyCsrMatrix::U32(am), AnyCsrMatrix::U32(bm)) => {
            fgh_traffic::simulate(am, bm, &out.decomposition)
        }
        (AnyCsrMatrix::U64(am), AnyCsrMatrix::U64(bm)) => {
            fgh_traffic::simulate(am, bm, &out.decomposition)
        }
        _ => unreachable!("convert_width returned mismatched widths"),
    }
    .map_err(|e| CmdError::new(1, format!("traffic replay: {e}")))?;
    Ok((aw, bw, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn workdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join("fgh_cli_spgemm").join(name);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn spgemm_partitions_two_operands_and_writes_metrics() {
        let dir = workdir("two");
        let dirs = dir.to_str().unwrap();
        crate::commands::gen::run(&args(&format!("bcspwr10 --scale 64 --out {dirs}"))).unwrap();
        let mtx = format!("{dirs}/bcspwr10_s64.mtx");
        let json = format!("{dirs}/metrics.json");
        run(&args(&format!("{mtx} {mtx} --k 4 --metrics-json {json}"))).unwrap();
        let doc = std::fs::read_to_string(&json).unwrap();
        let v = fgh_trace::json::parse(&doc).unwrap();
        fgh_core::validate_metrics_value(&v).unwrap();
        assert_eq!(v.get("workload").unwrap().as_str(), Some("spgemm"));
        let traffic = v.get("traffic").unwrap();
        assert_eq!(
            traffic.get("total_remote").unwrap().as_u64(),
            v.get("objective").unwrap().as_u64(),
            "simulated traffic must equal the partitioner's objective"
        );
    }

    #[test]
    fn spgemm_single_operand_squares_the_matrix() {
        let dir = workdir("square");
        let dirs = dir.to_str().unwrap();
        crate::commands::gen::run(&args(&format!("bcspwr10 --scale 64 --out {dirs}"))).unwrap();
        run(&args(&format!("{dirs}/bcspwr10_s64.mtx --k 2"))).unwrap();
    }

    #[test]
    fn spgemm_rejects_bad_inputs() {
        assert!(run(&args("missing.mtx --k 4")).is_err());
        let dir = workdir("errors");
        let dirs = dir.to_str().unwrap();
        crate::commands::gen::run(&args(&format!("bcspwr10 --scale 64 --out {dirs}"))).unwrap();
        let mtx = format!("{dirs}/bcspwr10_s64.mtx");
        // Missing --k and an SpMV-only model are both typed errors.
        assert!(run(&args(&mtx)).is_err());
        assert!(run(&args(&format!("{mtx} --k 4 --model graph-1d"))).is_err());
    }
}
