//! `fgh` subcommands.

pub mod compare;
pub mod convert;
pub mod gen;
pub mod partition;
pub mod serve;
pub mod spgemm;
pub mod spmv;
pub mod spy;
pub mod stats;

use fgh_core::{DecompositionOutcome, FghError, SpgemmOutcome};
use fgh_sparse::{AnyCsrMatrix, CsrMatrix};

use crate::error::CmdError;

/// Loads a MatrixMarket file into CSR. Compression honors the COO
/// matrix's attached duplicate policy via [`CsrMatrix::try_from_coo`], so
/// a policy violation surfaces as a typed error rather than a panic.
pub fn load_matrix(path: &str) -> Result<CsrMatrix, String> {
    let coo = fgh_sparse::io::read_matrix_market(path).map_err(|e| format!("{path}: {e}"))?;
    CsrMatrix::try_from_coo(coo).map_err(|e| format!("{path}: {e}"))
}

/// Loads a MatrixMarket file into a CSR carrier at the index width its
/// header demands: catalog-scale inputs stay on the `u32` fast path,
/// inputs whose fine-grain hypergraph would overflow 32-bit ids come back
/// `u64`. Decomposition commands route this through
/// [`fgh_core::decompose_any`] so the CLI never names an index width.
pub fn load_matrix_any(path: &str) -> Result<AnyCsrMatrix, String> {
    let coo = fgh_sparse::io::read_matrix_market_any(path).map_err(|e| format!("{path}: {e}"))?;
    coo.try_into_csr().map_err(|e| format!("{path}: {e}"))
}

/// Applies the degraded-outcome policy shared by the subcommands: errors
/// propagate with their exit code, `--strict` converts a degraded outcome
/// into an error (exit 3, or 4 when a budget tripped), and otherwise the
/// degradation reason is reported on stderr while the run continues.
pub fn finish_outcome(
    r: Result<DecompositionOutcome, FghError>,
    strict: bool,
) -> Result<DecompositionOutcome, CmdError> {
    let out = r.map_err(CmdError::from)?;
    let out = if strict {
        out.into_strict().map_err(CmdError::from)?
    } else {
        out
    };
    if let Some(reason) = out.status.reason() {
        eprintln!("warning: degraded decomposition: {reason}");
    }
    Ok(out)
}

/// [`finish_outcome`] for the SpGEMM face of the workload API — same
/// strict/degraded policy, applied to a task-hypergraph outcome.
pub fn finish_spgemm(
    r: Result<SpgemmOutcome, FghError>,
    strict: bool,
) -> Result<SpgemmOutcome, CmdError> {
    let out = r.map_err(CmdError::from)?;
    let out = if strict {
        out.into_strict().map_err(CmdError::from)?
    } else {
        out
    };
    if let Some(reason) = out.status.reason() {
        eprintln!("warning: degraded decomposition: {reason}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn workdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join("fgh_cli_integration").join(name);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// gen → stats → partition → spmv → convert → spy, end to end through
    /// the subcommand entry points.
    #[test]
    fn full_cli_workflow() {
        let dir = workdir("workflow");
        let dirs = dir.to_str().unwrap();

        super::gen::run(&args(&format!("sherman3 --scale 32 --out {dirs}"))).unwrap();
        let mtx = format!("{dirs}/sherman3_s32.mtx");
        assert!(std::path::Path::new(&mtx).exists());

        super::stats::run(&args(&mtx)).unwrap();

        let map = format!("{dirs}/map.txt");
        super::partition::run(&args(&format!("{mtx} --k 4 --out {map}"))).unwrap();
        let d = super::partition::read_mapping(&map).unwrap();
        assert_eq!(d.k, 4);
        let a = load_matrix(&mtx).unwrap();
        d.validate(&a).unwrap();

        super::spmv::run(&args(&format!("{mtx} --k 4 --parallel --threads 2"))).unwrap();

        let hgr = format!("{dirs}/m.hgr");
        super::convert::run(&args(&format!("{mtx} --out {hgr}"))).unwrap();
        let hg = fgh_hypergraph::io::read_hgr(&hgr).unwrap();
        assert_eq!(hg.num_nets(), 2 * a.nrows());

        super::spy::run(&args(&format!("{mtx} --width 20"))).unwrap();
        super::spy::run(&args(&format!("{mtx} --width 20 --k 2"))).unwrap();
    }

    #[test]
    fn compare_runs_all_models() {
        let dir = workdir("compare");
        let dirs = dir.to_str().unwrap();
        super::gen::run(&args(&format!("bcspwr10 --scale 32 --out {dirs}"))).unwrap();
        super::compare::run(&args(&format!("{dirs}/bcspwr10_s32.mtx --k 4"))).unwrap();
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(super::stats::run(&args("/nonexistent/x.mtx")).is_err());
        assert!(super::gen::run(&args("not-a-matrix")).is_err());
        assert!(super::partition::run(&args("also-missing.mtx --k 4")).is_err());
        let dir = workdir("errors");
        let bad = dir.join("bad.mtx");
        std::fs::write(&bad, "this is not matrix market\n").unwrap();
        assert!(super::stats::run(&args(bad.to_str().unwrap())).is_err());
    }
}
