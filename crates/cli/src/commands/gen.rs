//! `fgh gen` — write catalog analogues as MatrixMarket files.

use std::path::PathBuf;

use crate::error::CmdResult;
use crate::opts::Opts;

pub fn run(args: &[String]) -> CmdResult {
    let o = Opts::parse(args)?;
    let which = o.one_positional("matrix name or 'all'")?.to_string();
    let scale: u32 = o.parse_or("scale", 8)?;
    let seed: u64 = o.parse_or("seed", 1)?;
    let out_dir = PathBuf::from(o.get("out").unwrap_or("."));
    std::fs::create_dir_all(&out_dir).map_err(|e| format!("{}: {e}", out_dir.display()))?;

    let entries = if which.eq_ignore_ascii_case("all") {
        fgh_sparse::catalog::catalog()
    } else {
        vec![fgh_sparse::catalog::by_name(&which)
            .ok_or_else(|| format!("unknown catalog matrix {which:?}"))?]
    };

    for entry in entries {
        let a = entry.generate_scaled(scale, seed);
        let path = out_dir.join(format!("{}_s{scale}.mtx", entry.name));
        fgh_sparse::io::write_matrix_market(&a, &path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        println!(
            "wrote {} ({} rows, {} nonzeros)",
            path.display(),
            a.nrows(),
            a.nnz()
        );
    }
    Ok(())
}
