//! `fgh spy` — ASCII spy plot of a matrix, optionally overlaid with a
//! decomposition's ownership map.

use fgh_core::{decompose_workload, Workload, WorkloadOutcome};

use crate::commands::{finish_outcome, load_matrix};
use crate::error::CmdResult;
use crate::opts::Opts;

pub fn run(args: &[String]) -> CmdResult {
    let o = Opts::parse(args)?;
    let path = o.one_positional("matrix.mtx")?;
    let a = load_matrix(path)?;
    let width: u32 = o.parse_or("width", 60)?;

    println!(
        "{path}: {} x {}, {} nonzeros",
        a.nrows(),
        a.ncols(),
        a.nnz()
    );
    println!();
    if let Some(kstr) = o.get("k") {
        let k: u32 = kstr.parse().map_err(|e| format!("--k: {e}"))?;
        let cfg = o.decompose_config(k)?;
        let out = finish_outcome(
            decompose_workload(Workload::Spmv(&a), &cfg).and_then(WorkloadOutcome::into_spmv),
            o.has("strict"),
        )?;
        println!(
            "ownership map ({}, K = {k}; cells show the dominant owner, base 36):",
            cfg.model.name()
        );
        println!();
        print!(
            "{}",
            fgh_sparse::spy::spy_owners(&a, &out.decomposition.nonzero_owner, width)
        );
        println!();
        println!(
            "volume {} words, imbalance {:.2}%",
            out.stats.total_volume(),
            out.stats.load_imbalance_percent()
        );
    } else {
        print!("{}", fgh_sparse::spy::spy_pattern(&a, width));
    }
    Ok(())
}
