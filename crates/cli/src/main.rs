//! `fgh` — command-line front end for the fine-grain hypergraph
//! decomposition library.
//!
//! ```text
//! fgh gen <name|all> [--scale N] [--seed N] [--out DIR]
//! fgh stats <matrix.mtx>
//! fgh partition <matrix.mtx> --k K [--model MODEL] [--epsilon E]
//!               [--seed N] [--runs N] [--out parts.txt]
//! fgh spmv <matrix.mtx> --k K [--model MODEL] [--parallel]
//! fgh compare <matrix.mtx> --k K [--seed N]
//! fgh serve [--listen ADDR | --uds PATH] [--workers N] [--queue N]
//! ```
//!
//! `MODEL` is one of `graph-1d`, `hypergraph-1d-colnet`,
//! `hypergraph-1d-rownet`, `fine-grain-2d` (default), `checkerboard-2d`,
//! `mondriaan-2d`, `jagged-2d`, `checkerboard-hg-2d` (short aliases like
//! `graph`, `finegrain`, `mondriaan` work too).

mod commands;
mod error;
mod opts;

use std::process::ExitCode;

use error::CmdError;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprint!("{}", usage());
            return ExitCode::from(2);
        }
    };
    let result = match cmd {
        "gen" => commands::gen::run(rest),
        "stats" => commands::stats::run(rest),
        "partition" => commands::partition::run(rest),
        "serve" => commands::serve::run(rest),
        "spgemm" => commands::spgemm::run(rest),
        "spmv" => commands::spmv::run(rest),
        "spy" => commands::spy::run(rest),
        "compare" => commands::compare::run(rest),
        "convert" => commands::convert::run(rest),
        "help" | "--help" | "-h" => {
            print!("{}", usage());
            return ExitCode::SUCCESS;
        }
        other => Err(CmdError::new(
            2,
            format!("unknown command {other:?}\n\n{}", usage()),
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.msg);
            ExitCode::from(e.code)
        }
    }
}

fn usage() -> &'static str {
    "fgh - fine-grain hypergraph sparse matrix decomposition\n\
     \n\
     usage:\n\
     \x20 fgh gen <name|all> [--scale N] [--seed N] [--out DIR]\n\
     \x20     generate Table-1 catalog analogues as MatrixMarket files\n\
     \x20 fgh stats <matrix.mtx>\n\
     \x20     print the matrix properties Table 1 reports\n\
     \x20 fgh partition <matrix.mtx> --k K [--model M] [--epsilon E] [--seed N]\n\
     \x20               [--runs N] [--initial S] [--out parts.txt] [--max-wall-ms N]\n\
     \x20               [--strict] [--trace] [--metrics-json FILE]\n\
     \x20     decompose for K processors; optionally write the mapping\n\
     \x20 fgh spmv <matrix.mtx> --k K [--model M] [--parallel] [--max-wall-ms N] [--strict]\n\
     \x20          [--trace]\n\
     \x20     decompose, execute one distributed y = Ax, verify and report\n\
     \x20 fgh spgemm <A.mtx> [B.mtx] --k K [--model M] [--strict] [--trace]\n\
     \x20            [--metrics-json FILE]\n\
     \x20     partition the fine-grain SpGEMM task hypergraph of C = A*B\n\
     \x20     (B omitted = A*A), replay the storage traffic, and verify that\n\
     \x20     measured remote words equal the model-predicted volume\n\
     \x20 fgh compare <matrix.mtx> --k K [--seed N]\n\
     \x20     run every model on the matrix and print a comparison table\n\
     \x20 fgh convert <matrix.mtx> [--model M] [--out FILE]\n\
     \x20     export the model as .hgr (PaToH/hMETIS) or .graph (MeTiS)\n\
     \x20 fgh spy <matrix.mtx> [--width N] [--k K --model M]\n\
     \x20     ASCII spy plot, optionally with a decomposition ownership map\n\
     \x20 fgh serve [--listen ADDR | --uds PATH] [--workers N] [--queue N]\n\
     \x20           [--drain-ms N] [--cache-bytes N] [--fault-injection]\n\
     \x20           [--metrics-json FILE] [--addr-file FILE]\n\
     \x20     run the partition daemon until SIGTERM, then drain and report\n\
     \x20 fgh serve --self-test [--jobs N] [--concurrency N] [--metrics-json FILE]\n\
     \x20     in-process daemon + hostile load mix; exit 0 only on a clean run\n\
     \x20 fgh serve --load ADDR [--jobs N] [--concurrency N] [--inject]\n\
     \x20     run the load generator against a running daemon\n\
     \x20 fgh serve --check-metrics FILE\n\
     \x20     validate an fgh-serve-metrics/1 report file\n\
     \n\
     models: graph-1d | hypergraph-1d-colnet | hypergraph-1d-rownet |\n\
     \x20       fine-grain-2d (default) | checkerboard-2d | mondriaan-2d | jagged-2d | checkerboard-hg-2d |\n\
     \x20       spgemm-fine-grain (spgemm workload only, its default)\n\
     \n\
     common flags:\n\
     \x20 --threads N       partitioner thread count (default: all cores);\n\
     \x20                   results are bit-identical for every N\n\
     \x20 --initial S       initial scheme: ghg (default) | random | binpacking |\n\
     \x20                   geometric | auto (geometric needs vertex coordinates,\n\
     \x20                   i.e. the fine-grain model; falls back to ghg)\n\
     \x20 --parallel        (spmv) execute with one thread per processor\n\
     \x20 --max-wall-ms N   wall-clock budget for the partitioner; when it\n\
     \x20                   trips, the best partition found is returned\n\
     \x20 --max-bytes N     working-set byte budget for the partitioner;\n\
     \x20                   exceeding it truncates descent, never aborts\n\
     \x20 --strict          reject degraded outcomes (infeasible balance,\n\
     \x20                   exhausted budget) instead of warning on stderr\n\
     \x20 --trace           record per-phase spans and print the span tree\n\
     \x20                   (durations + counters) on stderr\n\
     \x20 --metrics-json F  (partition) write the run as an fgh-metrics/1\n\
     \x20                   JSON document (comm + engine stats + trace)\n\
     \n\
     exit codes: 0 ok (degraded outcomes warn on stderr) | 1 internal error |\n\
     \x20 2 bad input | 3 infeasible under --strict | 4 budget exhausted under --strict |\n\
     \x20 5 model has no big-index (u64) path for this matrix (use graph-1d,\n\
     \x20   hypergraph-1d-colnet, hypergraph-1d-rownet, or fine-grain-2d)\n"
}
