//! Tiny hand-rolled flag parser shared by the subcommands.

use fgh_core::{DecomposeConfig, InitialScheme, Model, Parallelism};

/// Parsed command line: positional arguments plus `--flag value` pairs.
#[derive(Debug, Default)]
pub struct Opts {
    pub positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &[
    "--parallel",
    "--quiet",
    "--strict",
    "--trace",
    "--fault-injection",
    "--self-test",
    "--inject",
];

impl Opts {
    /// Parses `args`; flags must start with `--`.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut o = Opts::default();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if BOOL_FLAGS.contains(&a.as_str()) {
                    o.flags.push((name.to_string(), None));
                } else {
                    let v = it
                        .next()
                        .ok_or_else(|| format!("flag --{name} needs a value"))?;
                    o.flags.push((name.to_string(), Some(v.clone())));
                }
            } else {
                o.positional.push(a.clone());
            }
        }
        Ok(o)
    }

    /// The single required positional argument.
    pub fn one_positional(&self, what: &str) -> Result<&str, String> {
        match self.positional.as_slice() {
            [p] => Ok(p),
            [] => Err(format!("missing argument: {what}")),
            _ => Err(format!("expected exactly one argument ({what})")),
        }
    }

    /// One required positional plus an optional second (the SpGEMM
    /// command's `A.mtx [B.mtx]` shape).
    pub fn one_or_two_positional(&self, what: &str) -> Result<(&str, Option<&str>), String> {
        match self.positional.as_slice() {
            [a] => Ok((a, None)),
            [a, b] => Ok((a, Some(b))),
            [] => Err(format!("missing argument: {what}")),
            _ => Err(format!("expected at most two arguments ({what})")),
        }
    }

    /// String flag value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Boolean flag presence.
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    /// Parsed flag with a default.
    pub fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(name) {
            Some(v) => v.parse().map_err(|e| format!("--{name}: {e}")),
            None => Ok(default),
        }
    }

    /// Required parsed flag.
    pub fn parse_required<T: std::str::FromStr>(&self, name: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        self.get(name)
            .ok_or_else(|| format!("missing required flag --{name}"))?
            .parse()
            .map_err(|e| format!("--{name}: {e}"))
    }

    /// The `--max-wall-ms` and `--max-bytes` flags as a partitioner
    /// budget (default unlimited). Both degrade rather than abort: the
    /// engine keeps the best partition found when a cap trips.
    pub fn budget(&self) -> Result<fgh_core::Budget, String> {
        let mut b = fgh_core::Budget::UNLIMITED;
        if let Some(v) = self.get("max-wall-ms") {
            let ms: u64 = v.parse().map_err(|e| format!("--max-wall-ms: {e}"))?;
            b.max_wall = Some(std::time::Duration::from_millis(ms));
        }
        if let Some(v) = self.get("max-bytes") {
            b.max_bytes = Some(v.parse().map_err(|e| format!("--max-bytes: {e}"))?);
        }
        Ok(b)
    }

    /// The `--threads N` flag as a partitioner thread policy. Absent means
    /// [`Parallelism::Auto`] (all available cores); `--threads 1` forces a
    /// serial run. Results are bit-identical across thread counts.
    pub fn parallelism(&self) -> Result<Parallelism, String> {
        match self.get("threads") {
            Some(v) => {
                let n: usize = v.parse().map_err(|e| format!("--threads: {e}"))?;
                if n == 0 {
                    return Err("--threads: thread count must be >= 1".into());
                }
                Ok(Parallelism::Threads(n))
            }
            None => Ok(Parallelism::Auto),
        }
    }

    /// The `--model` flag (default fine-grain 2D). Accepts every name
    /// and alias [`Model`]'s `FromStr` knows.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn model(&self) -> Result<Model, String> {
        self.model_or("fine-grain-2d")
    }

    /// [`Opts::model`] with a caller-chosen default name.
    pub fn model_or(&self, default: &str) -> Result<Model, String> {
        self.get("model")
            .unwrap_or(default)
            .parse()
            .map_err(|e| format!("--model: {e}"))
    }

    /// The `--initial` flag (default GHG): ghg, random, binpacking,
    /// geometric, or auto.
    pub fn initial(&self) -> Result<InitialScheme, String> {
        self.get("initial")
            .unwrap_or("ghg")
            .parse()
            .map_err(|e| format!("--initial: {e}"))
    }

    /// Builds the decomposition request shared by the subcommands from
    /// the common flags (`--model --epsilon --seed --runs --initial
    /// --max-wall-ms --max-bytes --threads --trace`) and an
    /// already-resolved processor count.
    pub fn decompose_config(&self, k: u32) -> Result<DecomposeConfig, String> {
        self.decompose_config_for("fine-grain-2d", k)
    }

    /// [`Opts::decompose_config`] with a caller-chosen default model —
    /// the SpGEMM subcommand defaults to the task-hypergraph model
    /// instead of the SpMV fine-grain model.
    pub fn decompose_config_for(
        &self,
        default_model: &str,
        k: u32,
    ) -> Result<DecomposeConfig, String> {
        Ok(DecomposeConfig::new(self.model_or(default_model)?, k)
            .with_epsilon(self.parse_or("epsilon", 0.03)?)
            .with_seed(self.parse_or("seed", 1)?)
            .with_runs(self.parse_or("runs", 1)?)
            .with_budget(self.budget()?)
            .with_parallelism(self.parallelism()?)
            .with_trace(self.has("trace"))
            .with_initial(self.initial()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_positional_and_flags() {
        let o = Opts::parse(&sv("a.mtx --k 16 --parallel --model graph-1d")).unwrap();
        assert_eq!(o.one_positional("matrix").unwrap(), "a.mtx");
        assert_eq!(o.parse_required::<u32>("k").unwrap(), 16);
        assert!(o.has("parallel"));
        assert_eq!(o.model().unwrap(), Model::Graph1D);
    }

    #[test]
    fn threads_flag_maps_to_parallelism() {
        let o = Opts::parse(&sv("a.mtx --threads 4")).unwrap();
        assert_eq!(o.parallelism().unwrap(), Parallelism::Threads(4));
        let o = Opts::parse(&sv("a.mtx")).unwrap();
        assert_eq!(o.parallelism().unwrap(), Parallelism::Auto);
        let o = Opts::parse(&sv("a.mtx --threads 0")).unwrap();
        assert!(o.parallelism().is_err());
        let o = Opts::parse(&sv("a.mtx --threads lots")).unwrap();
        assert!(o.parallelism().is_err());
    }

    #[test]
    fn defaults() {
        let o = Opts::parse(&sv("m.mtx --k 4")).unwrap();
        assert_eq!(o.model().unwrap(), Model::FineGrain2D);
        assert_eq!(o.parse_or("seed", 1u64).unwrap(), 1);
        assert_eq!(o.parse_or("runs", 3usize).unwrap(), 3);
    }

    #[test]
    fn errors() {
        assert!(Opts::parse(&sv("--k")).is_err());
        let o = Opts::parse(&sv("m.mtx")).unwrap();
        assert!(o.parse_required::<u32>("k").is_err());
        let o = Opts::parse(&sv("m.mtx --model bogus")).unwrap();
        assert!(o.model().is_err());
        let o = Opts::parse(&sv("a b")).unwrap();
        assert!(o.one_positional("matrix").is_err());
    }

    #[test]
    fn initial_flag_maps_to_scheme() {
        let o = Opts::parse(&sv("m.mtx --initial geometric")).unwrap();
        assert_eq!(o.initial().unwrap(), InitialScheme::Geometric);
        let o = Opts::parse(&sv("m.mtx --initial AUTO")).unwrap();
        assert_eq!(o.initial().unwrap(), InitialScheme::Auto);
        let o = Opts::parse(&sv("m.mtx")).unwrap();
        assert_eq!(o.initial().unwrap(), InitialScheme::Ghg);
        let o = Opts::parse(&sv("m.mtx --initial bogus")).unwrap();
        assert!(o.initial().is_err());
    }

    #[test]
    fn last_flag_wins() {
        let o = Opts::parse(&sv("m --k 2 --k 8")).unwrap();
        assert_eq!(o.parse_required::<u32>("k").unwrap(), 8);
    }
}
