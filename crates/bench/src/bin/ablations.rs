//! Ablation study over the partitioner's design choices called out in
//! DESIGN.md, measured as fine-grain-model communication volume (the
//! paper's objective) averaged over seeds:
//!
//! * net splitting in recursive bisection — on vs off,
//! * coarsening scheme — HCM vs HCC vs scaled HCC,
//! * initial partitioning — GHG vs random vs weight-only bin packing vs
//!   geometric (longest-axis cut of the nonzero point cloud),
//! * direct K-way refinement post-pass — on vs off,
//! * volume-minimizing 2D (fine-grain) vs structured 2D (checkerboard).
//!
//! Usage: cargo run --release -p fgh-bench --bin ablations --
//!        [--scale N] [--runs N] [--ks 16] [--matrices a,b] [--seed N]

use fgh_bench::ExperimentConfig;
use fgh_core::models::{CheckerboardModel, FineGrainModel};
use fgh_core::CommStats;
use fgh_partition::{partition_hypergraph, CoarseningScheme, InitialScheme, PartitionConfig};
use fgh_sparse::CsrMatrix;

struct Variant {
    name: &'static str,
    cfg: fn(u64) -> PartitionConfig,
}

fn variants() -> Vec<Variant> {
    fn base(seed: u64) -> PartitionConfig {
        PartitionConfig::with_seed(seed)
    }
    vec![
        Variant {
            name: "baseline (HCC+GHG+split+kway)",
            cfg: base,
        },
        Variant {
            name: "no net splitting",
            cfg: |s| PartitionConfig {
                net_splitting: false,
                ..base(s)
            },
        },
        Variant {
            name: "1 V-cycle",
            cfg: |s| PartitionConfig {
                vcycles: 1,
                ..base(s)
            },
        },
        Variant {
            name: "3 V-cycles",
            cfg: |s| PartitionConfig {
                vcycles: 3,
                ..base(s)
            },
        },
        Variant {
            name: "no k-way refine post-pass",
            cfg: |s| PartitionConfig {
                kway_refine: false,
                ..base(s)
            },
        },
        Variant {
            name: "coarsening: HCM",
            cfg: |s| PartitionConfig {
                coarsening: CoarseningScheme::Hcm,
                ..base(s)
            },
        },
        Variant {
            name: "coarsening: scaled HCC",
            cfg: |s| PartitionConfig {
                coarsening: CoarseningScheme::ScaledHcc,
                ..base(s)
            },
        },
        Variant {
            name: "initial: random",
            cfg: |s| PartitionConfig {
                initial: InitialScheme::Random,
                ..base(s)
            },
        },
        Variant {
            name: "initial: bin packing",
            cfg: |s| PartitionConfig {
                initial: InitialScheme::BinPacking,
                ..base(s)
            },
        },
        Variant {
            name: "initial: geometric",
            cfg: |s| PartitionConfig {
                initial: InitialScheme::Geometric,
                ..base(s)
            },
        },
    ]
}

fn avg_cutsize(
    a: &CsrMatrix,
    k: u32,
    runs: usize,
    seed: u64,
    make: fn(u64) -> PartitionConfig,
) -> f64 {
    let model = FineGrainModel::build(a).expect("square");
    let mut total = 0u64;
    for r in 0..runs {
        let mut cfg = make(seed.wrapping_add(r as u64 * 7919));
        if matches!(cfg.initial, InitialScheme::Geometric | InitialScheme::Auto) {
            // The geometric scheme seeds from the fine-grain vertex
            // positions; the model has them, the hypergraph alone does not.
            let n = model.hypergraph().num_vertices();
            let coords: Vec<(f32, f32)> = (0..n)
                .map(|v| {
                    let (r, c) = model.coords(v);
                    (r as f32, c as f32)
                })
                .collect();
            cfg.coords = Some(std::sync::Arc::new(coords));
        }
        let res = partition_hypergraph(model.hypergraph(), k, &cfg).expect("partition");
        total += res.cutsize;
    }
    total as f64 / runs as f64
}

fn main() {
    let mut cfg = match ExperimentConfig::from_args(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if cfg.matrices.is_empty() {
        cfg.matrices = vec![
            "sherman3".into(),
            "ken-11".into(),
            "vibrobox".into(),
            "finan512".into(),
        ];
    }
    let k = cfg.ks[0];
    println!(
        "Ablations: fine-grain communication volume (words), K = {k}, scale 1/{}, {} run(s)",
        cfg.scale, cfg.runs
    );
    println!();

    let entries = cfg.selected_entries();
    print!("{:<32}", "variant");
    for e in &entries {
        print!(" {:>12}", e.name);
    }
    println!();
    println!("{}", "-".repeat(32 + entries.len() * 13));

    let mats: Vec<CsrMatrix> = entries
        .iter()
        .map(|e| e.generate_scaled(cfg.scale, cfg.seed))
        .collect();

    let mut baseline: Vec<f64> = Vec::new();
    for (vi, v) in variants().iter().enumerate() {
        print!("{:<32}", v.name);
        for (mi, a) in mats.iter().enumerate() {
            let c = avg_cutsize(a, k, cfg.runs, cfg.seed, v.cfg);
            if vi == 0 {
                baseline.push(c);
                print!(" {:>12.0}", c);
            } else {
                print!(" {:>6.0} ({:+4.0}%)", c, 100.0 * (c / baseline[mi] - 1.0));
            }
        }
        println!();
    }

    // Structured-2D contrast: checkerboard (no volume objective at all).
    print!("{:<32}", "checkerboard 2D (no objective)");
    for (mi, a) in mats.iter().enumerate() {
        let cb = CheckerboardModel::build(a, k).expect("square");
        let d = cb.decode(a).expect("valid");
        let vol = CommStats::compute(a, &d).expect("stats").total_volume() as f64;
        print!(
            " {:>6.0} ({:+4.0}%)",
            vol,
            100.0 * (vol / baseline[mi] - 1.0)
        );
    }
    println!();
    println!();
    println!("cells: volume (and % change vs baseline; positive = worse).");
}
