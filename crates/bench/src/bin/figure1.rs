//! Regenerates **Figure 1** of the paper: the dependency-relation view of
//! the fine-grain hypergraph model.
//!
//! The paper's figure shows, for a generic matrix, a column net
//! `n_j = {v_ij, v_jj, v_lj}` of size 3 (the tasks that need `x_j`) and a
//! row net `m_i = {v_ih, v_ii, v_ik, v_ij}` of size 4 (the partial results
//! folded into `y_i`). This binary builds exactly that matrix, constructs
//! the fine-grain model, and renders the two nets with their pins and the
//! scalar operations they represent.
//!
//! Usage: `cargo run -p fgh-bench --bin figure1`

use fgh_core::models::FineGrainModel;
use fgh_sparse::{CooMatrix, CsrMatrix};

fn main() {
    // Index layout of the figure: h < i < j < k < l.
    let (h, i, j, k, l) = (0u32, 1u32, 2u32, 3u32, 4u32);
    // Nonzeros: row i = {a_ih, a_ii, a_ik, a_ij}; column j = {a_ij, a_jj, a_lj};
    // plus the remaining diagonal entries for consistency.
    let a = CsrMatrix::from_coo(
        CooMatrix::from_triplets(
            5,
            5,
            vec![
                (i, h, 1.0),
                (i, i, 1.0),
                (i, k, 1.0),
                (i, j, 1.0),
                (j, j, 1.0),
                (l, j, 1.0),
                (h, h, 1.0),
                (k, k, 1.0),
                (l, l, 1.0),
            ],
        )
        .expect("figure matrix in bounds"),
    );
    let model = FineGrainModel::build(&a).expect("square matrix");
    let hg = model.hypergraph();

    let name = |idx: u32| ["h", "i", "j", "k", "l"][idx as usize];

    println!("Figure 1. Dependency relation of the 2D fine-grain hypergraph model");
    println!();
    println!("matrix pattern (rows/cols h,i,j,k,l; * = nonzero):");
    println!();
    print!("      ");
    for c in 0..5 {
        print!(" {} ", name(c));
    }
    println!();
    for r in 0..5u32 {
        print!("   {} |", name(r));
        for c in 0..5u32 {
            print!(" {} ", if a.contains(r, c) { "*" } else { "." });
        }
        println!();
    }
    println!();

    // Column net n_j.
    let nj = model.col_net(j);
    println!(
        "column net n_j (size {}): models the EXPAND of x_j (pre-communication)",
        hg.net_size(nj)
    );
    for &v in hg.pins(nj) {
        let (r, c) = model.coords(v);
        println!(
            "   pin v_{}{}  <- scalar multiply  y_{}^{} = a_{}{} * x_{}",
            name(r),
            name(c),
            name(r),
            name(c),
            name(r),
            name(c),
            name(c)
        );
    }
    println!();

    // Row net m_i.
    let mi = model.row_net(i);
    println!(
        "row net m_i (size {}): models the FOLD of y_i (post-communication)",
        hg.net_size(mi)
    );
    let mut terms: Vec<String> = Vec::new();
    for &v in hg.pins(mi) {
        let (r, c) = model.coords(v);
        println!(
            "   pin v_{}{}  -> partial result  y_{}^{}",
            name(r),
            name(c),
            name(r),
            name(c)
        );
        terms.push(format!("y_{}^{}", name(r), name(c)));
    }
    println!("   accumulation: y_{} = {}", name(i), terms.join(" + "));
    println!();

    println!("shared pin of n_j and m_j: v_jj (the consistency condition) -> x_j and y_j");
    println!("are both assigned to part[v_jj], preserving symmetric partitioning.");
    println!();
    println!(
        "model sizes: |V| = {} ({} nonzeros + {} dummies), |N| = {} = 2M, pins = {}",
        hg.num_vertices(),
        model.num_real_vertices(),
        model.num_dummy_vertices(),
        hg.num_nets(),
        hg.num_pins()
    );

    // Sanity: sizes match the paper's figure.
    assert_eq!(hg.net_size(nj), 3, "n_j must have 3 pins as in the figure");
    assert_eq!(hg.net_size(mi), 4, "m_i must have 4 pins as in the figure");
}
