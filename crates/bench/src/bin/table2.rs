//! Regenerates **Table 2** of the paper: average communication
//! requirements of the standard graph model, the 1D hypergraph model, and
//! the proposed 2D fine-grain hypergraph model.
//!
//! For every matrix and K ∈ {16, 32, 64} (paper protocol), each model is
//! run with `--runs` random seeds and the metrics are averaged:
//!
//! * `tot`  — total communication volume in words, scaled by the matrix
//!   order,
//! * `max`  — maximum volume sent by a single processor, scaled likewise,
//! * `#msg` — average number of messages per processor,
//! * `time` — partitioning wall time in seconds, with (in parentheses)
//!   the time normalized to the graph model on the same instance.
//!
//! Per-K averages and the overall average close the table, followed by the
//! paper's headline ratios (fine-grain vs graph / vs 1D hypergraph).
//!
//! Usage:
//!   cargo run --release -p fgh-bench --bin table2 -- [--scale N] [--runs N]
//!       [--ks 16,32,64] [--matrices a,b] [--seed N] [--full]

use fgh_bench::{run_instance, table2_models, ExperimentConfig, InstanceResult};
use fgh_core::Model;

fn main() {
    let cfg = match ExperimentConfig::from_args(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let entries = cfg.selected_entries();
    if entries.is_empty() {
        eprintln!("error: no matrices selected");
        std::process::exit(2);
    }

    println!(
        "Table 2. Average communication requirements (scale 1/{}, {} run(s) per instance, eps = 3%)",
        cfg.scale, cfg.runs
    );
    println!();
    println!(
        "{:<12} {:>3} | {:>7} {:>7} {:>7} {:>8} | {:>7} {:>7} {:>7} {:>8} {:>7} | {:>7} {:>7} {:>7} {:>8} {:>7}",
        "", "", "graph", "graph", "graph", "graph", "hg-1d", "hg-1d", "hg-1d", "hg-1d", "",
        "fg-2d", "fg-2d", "fg-2d", "fg-2d", ""
    );
    println!(
        "{:<12} {:>3} | {:>7} {:>7} {:>7} {:>8} | {:>7} {:>7} {:>7} {:>8} {:>7} | {:>7} {:>7} {:>7} {:>8} {:>7}",
        "name", "K", "tot", "max", "#msg", "time", "tot", "max", "#msg", "time", "(norm)",
        "tot", "max", "#msg", "time", "(norm)"
    );
    println!("{}", "-".repeat(160));

    // accum[model][k_index] and overall accumulation for the summary rows.
    let models = table2_models();
    let nk = cfg.ks.len();
    let mut per_k_acc: Vec<Vec<InstanceResult>> =
        vec![vec![InstanceResult::default(); nk]; models.len()];
    let mut counts = vec![0usize; nk];

    for entry in &entries {
        let a = entry.generate_scaled(cfg.scale, cfg.seed);
        for (ki, &k) in cfg.ks.iter().enumerate() {
            let mut row: Vec<InstanceResult> = Vec::with_capacity(models.len());
            for &model in &models {
                match run_instance(&a, model, k, cfg.runs, cfg.seed) {
                    Ok(r) => row.push(r),
                    Err(e) => {
                        eprintln!("{} K={k} {}: {e}", entry.name, model.name());
                        std::process::exit(1);
                    }
                }
            }
            print_row(entry.name, k, &row);
            for (mi, r) in row.iter().enumerate() {
                acc_add(&mut per_k_acc[mi][ki], r);
            }
            counts[ki] += 1;
        }
    }

    println!("{}", "-".repeat(160));
    println!("Averages");
    let mut overall: Vec<InstanceResult> = vec![InstanceResult::default(); models.len()];
    for (ki, &k) in cfg.ks.iter().enumerate() {
        let row: Vec<InstanceResult> = (0..models.len())
            .map(|mi| acc_scale(&per_k_acc[mi][ki], counts[ki]))
            .collect();
        print_row("average", k, &row);
        for (mi, r) in row.iter().enumerate() {
            acc_add(&mut overall[mi], r);
        }
    }
    let overall: Vec<InstanceResult> = overall.iter().map(|r| acc_scale(r, nk)).collect();
    print_row_label("overall average", &overall);

    // Headline claims of the paper's Section 4.
    println!();
    let g = &overall[0];
    let h = &overall[1];
    let f = &overall[2];
    println!(
        "fine-grain total volume vs graph model:      {:>5.1}% lower (paper: 59%)",
        100.0 * (1.0 - f.tot / g.tot)
    );
    println!(
        "fine-grain total volume vs 1D hypergraph:    {:>5.1}% lower (paper: 43%)",
        100.0 * (1.0 - f.tot / h.tot)
    );
    println!(
        "fine-grain partition time vs 1D hypergraph:  {:>5.2}x (paper: ~2.4x)",
        f.time_s / h.time_s
    );
    println!(
        "fine-grain partition time vs graph model:    {:>5.2}x (paper: ~7.3x)",
        f.time_s / g.time_s
    );
    let _ = Model::Graph1D;
}

fn acc_add(acc: &mut InstanceResult, r: &InstanceResult) {
    acc.tot += r.tot;
    acc.max += r.max;
    acc.avg_msgs += r.avg_msgs;
    acc.time_s += r.time_s;
    acc.imbalance += r.imbalance;
}

fn acc_scale(acc: &InstanceResult, n: usize) -> InstanceResult {
    let f = n.max(1) as f64;
    InstanceResult {
        tot: acc.tot / f,
        max: acc.max / f,
        avg_msgs: acc.avg_msgs / f,
        time_s: acc.time_s / f,
        imbalance: acc.imbalance / f,
    }
}

fn print_row(name: &str, k: u32, row: &[InstanceResult]) {
    let g = &row[0];
    let h = &row[1];
    let f = &row[2];
    println!(
        "{:<12} {:>3} | {:>7.3} {:>7.3} {:>7.2} {:>8.3} | {:>7.3} {:>7.3} {:>7.2} {:>8.3} ({:>5.2}) | {:>7.3} {:>7.3} {:>7.2} {:>8.3} ({:>5.2})",
        name, k,
        g.tot, g.max, g.avg_msgs, g.time_s,
        h.tot, h.max, h.avg_msgs, h.time_s, h.time_s / g.time_s.max(1e-12),
        f.tot, f.max, f.avg_msgs, f.time_s, f.time_s / g.time_s.max(1e-12),
    );
}

fn print_row_label(name: &str, row: &[InstanceResult]) {
    let g = &row[0];
    let h = &row[1];
    let f = &row[2];
    println!(
        "{:<16} | {:>7.3} {:>7.3} {:>7.2} {:>8.3} | {:>7.3} {:>7.3} {:>7.2} {:>8.3} ({:>5.2}) | {:>7.3} {:>7.3} {:>7.2} {:>8.3} ({:>5.2})",
        name,
        g.tot, g.max, g.avg_msgs, g.time_s,
        h.tot, h.max, h.avg_msgs, h.time_s, h.time_s / g.time_s.max(1e-12),
        f.tot, f.max, f.avg_msgs, f.time_s, f.time_s / g.time_s.max(1e-12),
    );
}
