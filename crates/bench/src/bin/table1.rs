//! Regenerates **Table 1** of the paper: properties of the test matrices.
//!
//! Prints, for each of the 14 matrices, the paper's reported properties
//! side by side with the measured properties of the synthetic analogue
//! used in this reproduction (at the requested `--scale`).
//!
//! Usage: `cargo run --release -p fgh-bench --bin table1 [--scale N] [--seed N]`

use fgh_bench::ExperimentConfig;

fn main() {
    let cfg = match ExperimentConfig::from_args(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    println!(
        "Table 1. Properties of test matrices (paper values vs synthetic analogues, scale 1/{})",
        cfg.scale
    );
    println!();
    println!(
        "{:<12} | {:>9} {:>8} {:>5} {:>6} {:>7} | {:>9} {:>8} {:>5} {:>6} {:>7}",
        "",
        "paper",
        "paper",
        "paper",
        "paper",
        "paper",
        "synth",
        "synth",
        "synth",
        "synth",
        "synth"
    );
    println!(
        "{:<12} | {:>9} {:>8} {:>5} {:>6} {:>7} | {:>9} {:>8} {:>5} {:>6} {:>7}",
        "name", "rows/cols", "nnz", "min", "max", "avg", "rows/cols", "nnz", "min", "max", "avg"
    );
    println!("{}", "-".repeat(118));

    for entry in cfg.selected_entries() {
        let s = entry.measured_stats(cfg.scale, cfg.seed);
        println!(
            "{:<12} | {:>9} {:>8} {:>5} {:>6} {:>7.2} | {:>9} {:>8} {:>5} {:>6} {:>7.2}",
            entry.name,
            entry.paper.rows,
            entry.paper.nnz,
            entry.paper.min,
            entry.paper.max,
            entry.paper.avg,
            s.nrows,
            s.nnz,
            s.rowcol_min(),
            s.rowcol_max(),
            s.rowcol_avg(),
        );
    }
    println!();
    println!("note: analogues are generated per DESIGN.md (no access to the original");
    println!("collections); drop real .mtx files in with fgh-sparse::io to use them instead.");
}
