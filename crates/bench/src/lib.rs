//! # fgh-bench — harness regenerating the paper's experiments
//!
//! Binaries:
//!
//! * `table1` — properties of the 14 test matrices (paper values alongside
//!   the synthetic analogues actually used),
//! * `table2` — the full model comparison: standard graph model vs 1D
//!   hypergraph model vs 2D fine-grain model, K ∈ {16, 32, 64}, scaled
//!   total/max communication volume, average message counts, partitioning
//!   time (absolute and normalized to the graph model), per-K and overall
//!   averages,
//! * `figure1` — the dependency-relation view of the fine-grain model on a
//!   small example matrix.
//!
//! Criterion benches (`cargo bench`) cover partitioning time per model
//! (the "time" columns), SpMV executor throughput, and model construction.
//!
//! The experiment protocol follows the paper: each decomposition instance
//! is run with several random seeds and *averaged* (the paper used 50
//! seeds on a 133 MHz PowerPC; the default here is smaller — raise
//! `--runs` and use `--scale 1` to run the full protocol).

use fgh_core::{decompose_workload, DecomposeConfig, Model, Workload, WorkloadOutcome};
use fgh_sparse::catalog::CatalogEntry;
use fgh_sparse::CsrMatrix;

/// Experiment parameters shared by the harness binaries.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Matrix size divisor (1 = the paper's full sizes).
    pub scale: u32,
    /// Random-seed runs averaged per instance (paper: 50).
    pub runs: usize,
    /// Processor counts (paper: 16, 32, 64).
    pub ks: Vec<u32>,
    /// Matrix names to include (empty = all 14).
    pub matrices: Vec<String>,
    /// Base seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scale: 8,
            runs: 3,
            ks: vec![16, 32, 64],
            matrices: Vec::new(),
            seed: 1,
        }
    }
}

impl ExperimentConfig {
    /// Parses harness CLI flags: `--scale N`, `--runs N`, `--ks a,b,c`,
    /// `--matrices x,y`, `--seed N`, `--full` (= `--scale 1 --runs 50`).
    pub fn from_args(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut cfg = ExperimentConfig::default();
        let mut args = args.peekable();
        while let Some(flag) = args.next() {
            let mut take = |what: &str| {
                args.next()
                    .ok_or_else(|| format!("{flag} needs a value ({what})"))
            };
            match flag.as_str() {
                "--scale" => {
                    cfg.scale = take("integer")?
                        .parse()
                        .map_err(|e| format!("--scale: {e}"))?
                }
                "--runs" => {
                    cfg.runs = take("integer")?
                        .parse()
                        .map_err(|e| format!("--runs: {e}"))?
                }
                "--seed" => {
                    cfg.seed = take("integer")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?
                }
                "--ks" => {
                    cfg.ks = take("comma list")?
                        .split(',')
                        .map(|s| s.trim().parse().map_err(|e| format!("--ks: {e}")))
                        .collect::<Result<_, _>>()?
                }
                "--matrices" => {
                    cfg.matrices = take("comma list")?
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .collect()
                }
                "--full" => {
                    cfg.scale = 1;
                    cfg.runs = 50;
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if cfg.scale == 0 || cfg.runs == 0 || cfg.ks.is_empty() {
            return Err("scale, runs and ks must be nonzero/nonempty".into());
        }
        Ok(cfg)
    }

    /// The catalog entries selected by `matrices` (all when empty).
    pub fn selected_entries(&self) -> Vec<CatalogEntry> {
        let all = fgh_sparse::catalog::catalog();
        if self.matrices.is_empty() {
            return all;
        }
        all.into_iter()
            .filter(|e| self.matrices.iter().any(|m| m.eq_ignore_ascii_case(e.name)))
            .collect()
    }
}

/// Seed-averaged metrics of one (matrix, model, K) decomposition instance
/// — one cell group of Table 2.
#[derive(Debug, Clone, Default)]
pub struct InstanceResult {
    /// Mean scaled total volume (words / M).
    pub tot: f64,
    /// Mean scaled max per-processor sent volume.
    pub max: f64,
    /// Mean messages per processor.
    pub avg_msgs: f64,
    /// Mean partitioning wall time in seconds.
    pub time_s: f64,
    /// Mean percent load imbalance.
    pub imbalance: f64,
}

/// Runs one instance: `runs` independent seeds, metrics averaged (the
/// paper's protocol).
pub fn run_instance(
    a: &CsrMatrix,
    model: Model,
    k: u32,
    runs: usize,
    base_seed: u64,
) -> Result<InstanceResult, String> {
    let mut acc = InstanceResult::default();
    for r in 0..runs {
        // Serial keeps Table-2 wall times comparable across machines;
        // the parallel_scaling bench measures the threaded mode.
        let cfg = DecomposeConfig::new(model, k)
            .with_seed(base_seed.wrapping_add(r as u64 * 7919))
            .with_parallelism(fgh_core::Parallelism::Serial);
        let out = decompose_workload(Workload::Spmv(a), &cfg)
            .and_then(WorkloadOutcome::into_spmv)
            .map_err(|e| e.to_string())?;
        acc.tot += out.stats.scaled_total_volume();
        acc.max += out.stats.scaled_max_volume();
        acc.avg_msgs += out.stats.avg_messages_per_proc();
        acc.time_s += out.elapsed.as_secs_f64();
        acc.imbalance += out.stats.load_imbalance_percent();
    }
    let f = runs as f64;
    acc.tot /= f;
    acc.max /= f;
    acc.avg_msgs /= f;
    acc.time_s /= f;
    acc.imbalance /= f;
    Ok(acc)
}

/// The three models Table 2 compares, in its column order.
pub fn table2_models() -> [Model; 3] {
    [
        Model::Graph1D,
        Model::Hypergraph1DColNet,
        Model::FineGrain2D,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> impl Iterator<Item = String> + '_ {
        s.split_whitespace().map(String::from)
    }

    #[test]
    fn parse_defaults() {
        let cfg = ExperimentConfig::from_args(args("")).unwrap();
        assert_eq!(cfg.scale, 8);
        assert_eq!(cfg.ks, vec![16, 32, 64]);
    }

    #[test]
    fn parse_flags() {
        let cfg = ExperimentConfig::from_args(args(
            "--scale 4 --runs 5 --ks 8,16 --matrices sherman3,nl --seed 9",
        ))
        .unwrap();
        assert_eq!(cfg.scale, 4);
        assert_eq!(cfg.runs, 5);
        assert_eq!(cfg.ks, vec![8, 16]);
        assert_eq!(cfg.selected_entries().len(), 2);
        assert_eq!(cfg.seed, 9);
    }

    #[test]
    fn parse_full() {
        let cfg = ExperimentConfig::from_args(args("--full")).unwrap();
        assert_eq!(cfg.scale, 1);
        assert_eq!(cfg.runs, 50);
    }

    #[test]
    fn parse_rejects_bad_flags() {
        assert!(ExperimentConfig::from_args(args("--bogus")).is_err());
        assert!(ExperimentConfig::from_args(args("--scale")).is_err());
        assert!(ExperimentConfig::from_args(args("--scale zero")).is_err());
        assert!(ExperimentConfig::from_args(args("--scale 0")).is_err());
    }

    #[test]
    fn run_instance_averages() {
        let entry = fgh_sparse::catalog::by_name("sherman3").unwrap();
        let a = entry.generate_scaled(32, 1);
        let r = run_instance(&a, Model::FineGrain2D, 4, 2, 1).unwrap();
        assert!(r.tot > 0.0);
        assert!(r.time_s > 0.0);
        assert!(r.imbalance <= 3.5);
    }
}
