//! File format throughput: Matrix Market, `.hgr`, and METIS `.graph`
//! round trips through in-memory buffers.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fgh_core::models::{FineGrainModel, StandardGraphModel};
use std::hint::black_box;

fn bench_io(c: &mut Criterion) {
    let entry = fgh_sparse::catalog::by_name("bcspwr10").expect("catalog");
    let a = entry.generate_scaled(8, 1);

    let mut mm = Vec::new();
    fgh_sparse::io::write_matrix_market_to(&a, &mut mm).expect("write");
    let fg = FineGrainModel::build(&a).expect("square");
    let mut hgr = Vec::new();
    fgh_hypergraph::io::write_hgr_to(fg.hypergraph(), &mut hgr).expect("write");
    let gm = StandardGraphModel::build(&a).expect("square");
    let mut metis = Vec::new();
    fgh_graph::io::write_metis_to(gm.graph(), &mut metis).expect("write");

    let mut group = c.benchmark_group("io_read");
    group.throughput(Throughput::Bytes(mm.len() as u64));
    group.bench_function("matrix_market", |b| {
        b.iter(|| {
            black_box(
                fgh_sparse::io::read_matrix_market_from(black_box(mm.as_slice())).expect("parse"),
            )
        })
    });
    group.throughput(Throughput::Bytes(hgr.len() as u64));
    group.bench_function("hgr", |b| {
        b.iter(|| {
            black_box(fgh_hypergraph::io::read_hgr_from(black_box(hgr.as_slice())).expect("parse"))
        })
    });
    group.throughput(Throughput::Bytes(metis.len() as u64));
    group.bench_function("metis_graph", |b| {
        b.iter(|| {
            black_box(fgh_graph::io::read_metis_from(black_box(metis.as_slice())).expect("parse"))
        })
    });
    group.finish();

    let mut group = c.benchmark_group("io_write");
    group.bench_function("matrix_market", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(mm.len());
            fgh_sparse::io::write_matrix_market_to(black_box(&a), &mut buf).expect("write");
            black_box(buf)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_io);
criterion_main!(benches);
