//! Model-construction benchmarks: building the fine-grain hypergraph
//! (Z vertices, 2M nets, 2Z pins) vs the 1D hypergraph (M vertices, M
//! nets) vs the standard graph — the structural size ratios behind the
//! paper's runtime discussion in Section 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fgh_core::models::{ColumnNetModel, FineGrainModel, StandardGraphModel};
use std::hint::black_box;

fn bench_model_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_build");
    for name in ["sherman3", "cq9"] {
        let entry = fgh_sparse::catalog::by_name(name).expect("catalog name");
        let a = entry.generate_scaled(8, 1);
        group.bench_with_input(BenchmarkId::new("fine_grain", name), &a, |b, a| {
            b.iter(|| black_box(FineGrainModel::build(black_box(a)).expect("square")))
        });
        group.bench_with_input(BenchmarkId::new("colnet_1d", name), &a, |b, a| {
            b.iter(|| black_box(ColumnNetModel::build(black_box(a)).expect("square")))
        });
        group.bench_with_input(BenchmarkId::new("graph", name), &a, |b, a| {
            b.iter(|| black_box(StandardGraphModel::build(black_box(a)).expect("square")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_model_build);
criterion_main!(benches);
