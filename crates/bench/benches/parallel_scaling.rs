//! Parallel-scaling benchmark for the partitioning engine.
//!
//! Runs the paper's multi-seed protocol (8 independent seeds, K = 16) on a
//! ken-11-style catalog matrix under the fine-grain model, once per thread
//! count in {1, 2, 4, 8}, and reports wall-clock speedup over the serial
//! baseline. Because every recursion node derives its RNG from its own
//! identity, per-seed cutsizes must be bit-identical across thread counts —
//! the harness asserts this before trusting any timing.
//!
//! Results land in `BENCH_parallel.json` at the repository root:
//! per-thread wall times, speedups, the per-seed cutsizes proving
//! determinism, and a per-phase wall-clock breakdown (coarsen / initial /
//! fm-pass / …) from one traced sweep per thread count.
//!
//! Usage: `cargo bench --bench parallel_scaling [-- --quick]`
//! (`--quick` shrinks the matrix and repetitions for CI smoke runs).

use std::time::Instant;

use fgh_core::models::FineGrainModel;
use fgh_hypergraph::Hypergraph;
use fgh_partition::{
    partition_hypergraph_seeds, partition_hypergraph_seeds_traced, Parallelism, PartitionConfig,
};
use fgh_trace::Tracer;

const K: u32 = 16;
const SEEDS: usize = 8;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Protocol {
    scale: u32,
    reps: usize,
}

fn build_hypergraph(scale: u32) -> Hypergraph {
    let entry = fgh_sparse::catalog::by_name("ken-11").expect("catalog name");
    let a = entry.generate_scaled(scale, 1);
    let model = FineGrainModel::build(&a).expect("square catalog matrix");
    model.hypergraph().clone()
}

fn config_for(threads: usize) -> PartitionConfig {
    PartitionConfig {
        seed: 1,
        parallelism: if threads == 1 {
            Parallelism::Serial
        } else {
            Parallelism::Threads(threads)
        },
        ..Default::default()
    }
}

/// One traced (untimed) sweep: total nanoseconds per span name, summed
/// over the whole tree. Keyed by phase name (`coarsen`, `initial`,
/// `fm-pass`, `run`, …) for the `phase_ns` column of the JSON report.
fn phase_breakdown(hg: &Hypergraph, threads: usize) -> Vec<(&'static str, u64)> {
    let cfg = config_for(threads);
    let (tracer, sink) = Tracer::collecting();
    let root = tracer.span("sweep");
    let results = partition_hypergraph_seeds_traced(hg, K, &cfg, SEEDS, &root.handle());
    drop(root);
    for r in results {
        r.expect("traced partition run failed");
    }
    sink.build_trace().phase_totals()
}

/// Best-of-`reps` wall time for the 8-seed sweep, plus per-seed cutsizes.
fn run_sweep(hg: &Hypergraph, threads: usize, reps: usize) -> (f64, Vec<u64>) {
    let cfg = config_for(threads);
    let mut best = f64::INFINITY;
    let mut cutsizes = Vec::new();
    for _ in 0..reps {
        let start = Instant::now();
        let results = partition_hypergraph_seeds(hg, K, &cfg, SEEDS);
        let elapsed = start.elapsed().as_secs_f64();
        cutsizes = results
            .into_iter()
            .map(|r| r.expect("partition run failed").cutsize)
            .collect();
        best = best.min(elapsed);
    }
    (best, cutsizes)
}

/// Peak resident set size of this process in kilobytes, read from
/// `/proc/self/status` (`VmHWM`). 0 when unavailable (non-Linux hosts);
/// the JSON field is informational, never gated.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1)?.parse().ok())
        })
        .unwrap_or(0)
}

/// Commit the recorded numbers were measured at, so a stale committed
/// file is detectable (`baseline_sha` ≠ HEAD means regenerate).
fn git_head() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // `scale` divides the catalog dimensions, so quick runs use the
    // larger divisor (smaller matrix).
    let p = if quick {
        Protocol { scale: 16, reps: 1 }
    } else {
        Protocol { scale: 4, reps: 3 }
    };
    let hg = build_hypergraph(p.scale);
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "parallel_scaling: ken-11 scale {} ({} vertices, {} nets), K = {K}, {SEEDS} seeds, best of {}, {host_cpus} host cpus",
        p.scale,
        hg.num_vertices(),
        hg.num_nets(),
        p.reps
    );
    if host_cpus < 2 {
        println!("note: single-core host; expect speedup ~1.0 (determinism still checked)");
    }

    let mut times = Vec::new();
    let mut serial_cuts: Vec<u64> = Vec::new();
    for &threads in &THREAD_COUNTS {
        let (secs, cuts) = run_sweep(&hg, threads, p.reps);
        if threads == 1 {
            serial_cuts = cuts.clone();
        } else {
            assert_eq!(
                cuts, serial_cuts,
                "threads={threads}: per-seed cutsizes diverged from serial"
            );
        }
        let phases = phase_breakdown(&hg, threads);
        times.push((threads, secs, cuts, phases));
    }

    let serial_time = times[0].1;
    let mut rows = String::new();
    println!("threads  wall_s   speedup  per-seed cutsizes");
    for (i, (threads, secs, cuts, phases)) in times.iter().enumerate() {
        let speedup = serial_time / secs;
        println!("{threads:>7}  {secs:>7.3}  {speedup:>6.2}x  {cuts:?}");
        let cuts_json = cuts
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let phase_json = phases
            .iter()
            .map(|(name, ns)| format!("\"{name}\": {ns}"))
            .collect::<Vec<_>>()
            .join(", ");
        if i > 0 {
            rows.push(',');
        }
        rows.push_str(&format!(
            "\n    {{\"threads\": {threads}, \"wall_s\": {secs:.6}, \"speedup\": {speedup:.3}, \"cutsizes\": [{cuts_json}], \"phase_ns\": {{{phase_json}}}}}"
        ));
    }

    let peak_rss_kb = peak_rss_kb();
    println!("peak rss: {peak_rss_kb} kB");
    let json = format!(
        "{{\n  \"bench\": \"parallel_scaling\",\n  \"matrix\": \"ken-11\",\n  \"baseline_sha\": \"{}\",\n  \"scale\": {},\n  \"k\": {K},\n  \"seeds\": {SEEDS},\n  \"reps\": {},\n  \"quick\": {quick},\n  \"host_cpus\": {host_cpus},\n  \"peak_rss_kb\": {peak_rss_kb},\n  \"per_seed_cutsizes_identical\": true,\n  \"runs\": [{rows}\n  ]\n}}\n",
        git_head(),
        p.scale, p.reps
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    std::fs::write(out, &json).expect("write BENCH_parallel.json");
    println!("wrote {out}");
}
