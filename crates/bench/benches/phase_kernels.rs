//! Hot-loop kernel microbenchmarks: each phase's rewritten kernel is
//! timed against its pre-rewrite counterpart *in the same binary*, and
//! the result is recorded as a speedup ratio. Ratios are host-independent
//! (both sides run on the same machine in the same process), so the
//! committed `BENCH_phases.json` can gate CI on any runner: `--check`
//! fails when a current ratio regresses more than 25% below the recorded
//! one.
//!
//! Phases and their baselines:
//! - `refine`: hybrid inline/spill connectivity table ([`NetConnectivity`])
//!   vs the scan-based [`NaiveConnectivity`] oracle, replaying a k-way
//!   move-and-query stream.
//! - `coarsen`: the monomorphized pin-traversal scoring kernel
//!   (`for_each_scored_neighbor` into a pre-sized scratch array) vs the
//!   pre-rewrite form (dyn-dispatched visitor into per-vertex hash
//!   scratch).
//! - `initial`: geometric longest-axis seeding vs greedy hypergraph
//!   growing at a large coarsest level (FM passes zeroed so the timer
//!   isolates the seeding schemes; `initial_nanos` comes from
//!   [`EngineStats`]).
//!
//! Usage: `cargo bench --bench phase_kernels [-- --quick] [-- --check]`
//! With no flags, runs both the quick and full workloads and writes
//! `BENCH_phases.json` (sections `quick_phases` / `full_phases`) at the
//! repository root. `--quick` runs only the small workload; combined
//! with `--check` it gates against the committed `quick_phases` section
//! (quick alone prints without writing, so the full section is never
//! clobbered by a smoke run).

use std::collections::HashMap;
use std::hint::black_box;
use std::time::Instant;

use fgh_core::models::FineGrainModel;
use fgh_hypergraph::{Hypergraph, Partition};
use fgh_partition::connectivity::{NaiveConnectivity, NetConnectivity};
use fgh_partition::engine::Substrate;
use fgh_partition::{partition_hypergraph, InitialScheme, Parallelism, PartitionConfig};

const REFINE_K: u32 = 48;
const MAX_NET_SIZE: usize = 64;

fn build_hypergraph(scale: u32) -> (Hypergraph, Vec<(f32, f32)>) {
    let entry = fgh_sparse::catalog::by_name("ken-11").expect("catalog name");
    let a = entry.generate_scaled(scale, 1);
    let model = FineGrainModel::build(&a).expect("square catalog matrix");
    let hg = model.hypergraph().clone();
    let coords = (0..hg.num_vertices())
        .map(|v| {
            let (r, c) = model.coords(v);
            (r as f32, c as f32)
        })
        .collect();
    (hg, coords)
}

/// Best-of-`reps` wall time of `f`, in nanoseconds.
fn time_best(reps: usize, mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    best
}

/// The connectivity workload: a deterministic stream of pin moves and
/// table queries shaped like k-way FM (move a vertex's nets, then read
/// the λ and counts FM's gain formulas read).
fn connectivity_workload<T>(
    hg: &Hypergraph,
    parts: &mut [u32],
    table: &mut T,
    move_pin: impl Fn(&mut T, u32, u32, u32) -> bool,
    lambda: impl Fn(&T, u32) -> usize,
    count: impl Fn(&T, u32, u32) -> u64,
) -> u64 {
    let mut acc = 0u64;
    let nv = hg.num_vertices();
    let mut state = 0x243f6a8885a308d3u64;
    for round in 0..2u32 {
        for v in 0..nv {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(round as u64 + 1);
            let from = parts[v as usize];
            let to = (state >> 33) as u32 % REFINE_K;
            if from == to {
                continue;
            }
            for &n in hg.nets(v) {
                let ok = move_pin(table, n, from, to);
                debug_assert!(ok);
                // FM gain updates read λ plus the pin counts of both
                // endpoints of the move.
                acc += lambda(table, n) as u64;
                acc += count(table, n, to);
                acc += count(table, n, from);
            }
            parts[v as usize] = to;
        }
    }
    acc
}

fn bench_refine(hg: &Hypergraph, reps: usize) -> (u64, u64) {
    let nv = hg.num_vertices() as usize;
    let parts0: Vec<u32> = (0..nv as u32).map(|v| v % REFINE_K).collect();
    let partition = Partition::new(REFINE_K, parts0.clone()).unwrap();
    let new_ns = time_best(reps, || {
        let mut parts = parts0.clone();
        let mut t = NetConnectivity::build(hg, &partition);
        let acc = connectivity_workload(
            hg,
            &mut parts,
            &mut t,
            |t, n, f, to| t.move_pin(n, f, to).is_ok(),
            |t, n| t.lambda(n),
            |t, n, p| t.count(n, p),
        );
        black_box(acc);
    });
    let legacy_ns = time_best(reps, || {
        let mut parts = parts0.clone();
        let mut t = NaiveConnectivity::build(hg, &partition);
        let acc = connectivity_workload(
            hg,
            &mut parts,
            &mut t,
            |t, n, f, to| t.move_pin(n, f, to).is_ok(),
            |t, n| t.lambda(n),
            |t, n, p| t.count(n, p),
        );
        black_box(acc);
    });
    (new_ns, legacy_ns)
}

/// Pre-rewrite scoring shape: dyn-dispatched visitor writing into a
/// per-vertex hash map (the scratch the rewrite eliminated).
#[allow(clippy::type_complexity)] // the dyn-visitor type IS the legacy shape being measured
fn legacy_score_vertex(hg: &Hypergraph, u: u32, score: &mut HashMap<u32, u64>) {
    score.clear();
    let visit: &mut dyn FnMut(&mut HashMap<u32, u64>, u32, u64) =
        &mut |score, v, cost| *score.entry(v).or_insert(0) += cost;
    for &net in hg.nets(u) {
        if hg.net_size(net) > MAX_NET_SIZE {
            continue;
        }
        let cost = hg.net_cost(net) as u64;
        for &v in hg.pins(net) {
            if v != u {
                visit(score, v, cost);
            }
        }
    }
}

fn bench_coarsen(hg: &Hypergraph, reps: usize) -> (u64, u64) {
    let nv = hg.num_vertices();
    let new_ns = time_best(reps, || {
        // The engine's form: monomorphized traversal, pre-sized scratch,
        // touched-list reset (mirrors `coarsen_once_in`).
        let mut score = vec![0u64; nv as usize];
        let mut touched: Vec<u32> = Vec::new();
        let mut acc = 0u64;
        for u in 0..nv {
            for &t in &touched {
                score[t as usize] = 0;
            }
            touched.clear();
            Substrate::for_each_scored_neighbor(hg, u, MAX_NET_SIZE, |v, cost| {
                if score[v as usize] == 0 {
                    touched.push(v);
                }
                score[v as usize] += cost;
            });
            for &t in &touched {
                acc = acc.max(score[t as usize]);
            }
        }
        black_box(acc);
    });
    let legacy_ns = time_best(reps, || {
        let mut score: HashMap<u32, u64> = HashMap::new();
        let mut acc = 0u64;
        for u in 0..nv {
            legacy_score_vertex(hg, u, &mut score);
            for (_, &s) in score.iter() {
                acc = acc.max(s);
            }
        }
        black_box(acc);
    });
    (new_ns, legacy_ns)
}

fn bench_initial(hg: &Hypergraph, coords: &[(f32, f32)], reps: usize) -> (u64, u64) {
    // A large coarsest level and zero FM passes isolate the seeding
    // schemes inside `initial_nanos`; everything else is held equal.
    let base = PartitionConfig {
        coarsen_to: 2000,
        fm_passes: 0,
        kway_refine: false,
        parallelism: Parallelism::Serial,
        ..PartitionConfig::with_seed(1)
    };
    let geo_cfg = PartitionConfig {
        initial: InitialScheme::Geometric,
        coords: Some(std::sync::Arc::new(coords.to_vec())),
        ..base.clone()
    };
    let ghg_cfg = PartitionConfig {
        initial: InitialScheme::Ghg,
        ..base
    };
    let mut geo_ns = u64::MAX;
    let mut ghg_ns = u64::MAX;
    for _ in 0..reps {
        let r = partition_hypergraph(hg, 16, &geo_cfg).expect("geometric run");
        geo_ns = geo_ns.min(black_box(r.stats.initial_nanos));
        let r = partition_hypergraph(hg, 16, &ghg_cfg).expect("ghg run");
        ghg_ns = ghg_ns.min(black_box(r.stats.initial_nanos));
    }
    (geo_ns, ghg_ns)
}

fn git_head() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

/// Reads a phase's recorded speedup out of the committed JSON with a
/// dependency-free scan (the file is machine-written, shape-stable).
/// `section` scopes the lookup to the matching workload size.
fn recorded_speedup(json: &str, section: &str, phase: &str) -> Option<f64> {
    let at = json.find(&format!("\"{section}\""))?;
    let scoped = &json[at + section.len() + 2..];
    let scoped = match scoped.find("_phases\"") {
        // Stop before the next section header so a quick lookup never
        // reads a full-section ratio.
        Some(next) => &scoped[..next],
        None => scoped,
    };
    let pat = format!("\"{phase}\"");
    let tail = &scoped[scoped.find(&pat)?..];
    let sp = tail.find("\"speedup\":")?;
    let rest = tail[sp + 10..].trim_start();
    let end = rest.find(|c: char| c != '.' && !c.is_ascii_digit())?;
    rest[..end].parse().ok()
}

/// Runs the three phase benches at one workload size.
fn run_phases(quick: bool) -> (u32, [(&'static str, u64, u64); 3]) {
    let (scale, reps) = if quick { (16, 2) } else { (8, 3) };
    let (hg, coords) = build_hypergraph(scale);
    println!(
        "phase_kernels[{}]: ken-11 scale {scale} ({} vertices, {} nets), best of {reps}",
        if quick { "quick" } else { "full" },
        hg.num_vertices(),
        hg.num_nets()
    );
    let (refine_new, refine_old) = bench_refine(&hg, reps);
    let (coarsen_new, coarsen_old) = bench_coarsen(&hg, reps);
    let (initial_new, initial_old) = bench_initial(&hg, &coords, reps);
    let phases = [
        ("refine", refine_new, refine_old),
        ("coarsen", coarsen_new, coarsen_old),
        ("initial", initial_new, initial_old),
    ];
    println!("phase    new_ns       baseline_ns  speedup");
    for (name, new_ns, old_ns) in &phases {
        let speedup = *old_ns as f64 / (*new_ns).max(1) as f64;
        println!("{name:<8} {new_ns:>12} {old_ns:>12} {speedup:>6.2}x");
    }
    (scale, phases)
}

fn rows_json(phases: &[(&'static str, u64, u64); 3]) -> String {
    let mut rows = String::new();
    for (i, (name, new_ns, old_ns)) in phases.iter().enumerate() {
        let speedup = *old_ns as f64 / (*new_ns).max(1) as f64;
        if i > 0 {
            rows.push(',');
        }
        rows.push_str(&format!(
            "\n    \"{name}\": {{\"new_ns\": {new_ns}, \"baseline_ns\": {old_ns}, \"speedup\": {speedup:.3}}}"
        ));
    }
    rows
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let check = std::env::args().any(|a| a == "--check");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_phases.json");

    if check {
        let section = if quick { "quick_phases" } else { "full_phases" };
        let (_, phases) = run_phases(quick);
        let committed = std::fs::read_to_string(path).expect("read committed BENCH_phases.json");
        let mut failures = Vec::new();
        for (name, new_ns, old_ns) in &phases {
            let current = *old_ns as f64 / (*new_ns).max(1) as f64;
            let Some(recorded) = recorded_speedup(&committed, section, name) else {
                failures.push(format!("{name}: no recorded speedup in {section}"));
                continue;
            };
            // >25% regression vs the committed ratio fails the gate.
            if current < recorded * 0.75 {
                failures.push(format!(
                    "{name}: speedup {current:.2}x is below 75% of recorded {recorded:.2}x"
                ));
            } else {
                println!("check {name}: {current:.2}x vs recorded {recorded:.2}x — ok");
            }
        }
        if !failures.is_empty() {
            eprintln!("phase_kernels --check FAILED:\n{}", failures.join("\n"));
            std::process::exit(1);
        }
        println!("phase_kernels --check passed");
        return;
    }

    if quick {
        // Smoke run: print only; writing would clobber the full section.
        run_phases(true);
        return;
    }

    let (quick_scale, quick_phases) = run_phases(true);
    let (full_scale, full_phases) = run_phases(false);
    let json = format!(
        "{{\n  \"bench\": \"phase_kernels\",\n  \"matrix\": \"ken-11\",\n  \"baseline_sha\": \"{}\",\n  \"quick_scale\": {quick_scale},\n  \"full_scale\": {full_scale},\n  \"quick_phases\": {{{}\n  }},\n  \"full_phases\": {{{}\n  }}\n}}\n",
        git_head(),
        rows_json(&quick_phases),
        rows_json(&full_phases),
    );
    std::fs::write(path, &json).expect("write BENCH_phases.json");
    println!("wrote {path}");
}
