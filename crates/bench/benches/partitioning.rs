//! Partitioning-time benchmarks — the "time" columns of Table 2.
//!
//! Benchmarks each decomposition model's end-to-end partitioning on a
//! reduced catalog matrix. The paper's observation to reproduce: the 2D
//! fine-grain model is a constant factor slower than the 1D hypergraph
//! model (~2.4x) and the graph model (~7.3x) because its hypergraph has Z
//! vertices and 2x the nets/pins.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fgh_core::models::FineGrainModel;
use fgh_core::{decompose_workload, DecomposeConfig, Model, Workload, WorkloadOutcome};
use fgh_partition::{partition_hypergraph_with, LevelArena, MultilevelDriver, PartitionConfig};
use std::hint::black_box;

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioning");
    group.sample_size(10);
    for name in ["sherman3", "bcspwr10", "ken-11"] {
        let entry = fgh_sparse::catalog::by_name(name).expect("catalog name");
        let a = entry.generate_scaled(16, 1);
        for model in [
            Model::Graph1D,
            Model::Hypergraph1DColNet,
            Model::FineGrain2D,
        ] {
            group.bench_with_input(BenchmarkId::new(model.name(), name), &a, |b, a| {
                b.iter(|| {
                    let cfg = DecomposeConfig::new(model, 16);
                    black_box(
                        decompose_workload(Workload::Spmv(black_box(a)), &cfg)
                            .and_then(WorkloadOutcome::into_spmv)
                            .expect("decompose"),
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench_k_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fine_grain_k_scaling");
    group.sample_size(10);
    let entry = fgh_sparse::catalog::by_name("sherman3").expect("catalog name");
    let a = entry.generate_scaled(8, 1);
    for k in [4u32, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let cfg = DecomposeConfig::new(Model::FineGrain2D, k);
                black_box(
                    decompose_workload(Workload::Spmv(black_box(&a)), &cfg)
                        .and_then(WorkloadOutcome::into_spmv)
                        .expect("decompose"),
                )
            })
        });
    }
    group.finish();
}

/// The engine's LevelArena vs per-level allocation: the same K-way run on
/// the same driver, with buffer pooling on (default) and off (`disabled`).
/// Results are bit-identical either way; only the allocation count differs.
fn bench_arena(c: &mut Criterion) {
    let entry = fgh_sparse::catalog::by_name("ken-11").expect("catalog name");
    let a = entry.generate_scaled(16, 1);
    let m = FineGrainModel::build(&a).expect("square");
    let hg = m.hypergraph();

    let mut group = c.benchmark_group("arena");
    group.sample_size(10);
    group.bench_function("pooled", |b| {
        let mut driver = MultilevelDriver::new(PartitionConfig::with_seed(7));
        b.iter(|| {
            black_box(
                partition_hypergraph_with(&mut driver, black_box(hg), 16, None).expect("partition"),
            )
        })
    });
    group.bench_function("disabled", |b| {
        let mut driver =
            MultilevelDriver::with_arena(PartitionConfig::with_seed(7), LevelArena::disabled());
        b.iter(|| {
            black_box(
                partition_hypergraph_with(&mut driver, black_box(hg), 16, None).expect("partition"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_models, bench_k_scaling, bench_arena);
criterion_main!(benches);
