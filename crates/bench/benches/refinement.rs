//! Microbenchmarks of the partitioner's inner loops: coarsening,
//! FM refinement (full vs boundary), and K-way refinement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fgh_core::models::FineGrainModel;
use fgh_hypergraph::Partition;
use fgh_partition::coarsen::{coarsen_once, FREE};
use fgh_partition::kway::kway_refine;
use fgh_partition::refine::BisectionState;
use fgh_partition::CoarseningScheme;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn model() -> FineGrainModel {
    let entry = fgh_sparse::catalog::by_name("ken-11").expect("catalog");
    let a = entry.generate_scaled(16, 1);
    FineGrainModel::build(&a).expect("square")
}

fn bench_coarsening(c: &mut Criterion) {
    let m = model();
    let hg = m.hypergraph();
    let fixed = vec![FREE; hg.num_vertices() as usize];
    let mut group = c.benchmark_group("coarsening");
    for scheme in [
        CoarseningScheme::Hcm,
        CoarseningScheme::Hcc,
        CoarseningScheme::ScaledHcc,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{scheme:?}")),
            &scheme,
            |b, &scheme| {
                let mut rng = SmallRng::seed_from_u64(1);
                b.iter(|| {
                    black_box(coarsen_once(
                        black_box(hg),
                        &fixed,
                        scheme,
                        64,
                        hg.total_vertex_weight(),
                        &mut rng,
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_fm(c: &mut Criterion) {
    let m = model();
    let hg = m.hypergraph();
    let n = hg.num_vertices();
    let fixed = vec![FREE; n as usize];
    let sides: Vec<u8> = (0..n).map(|v| (v % 2) as u8).collect();
    let half = hg.total_vertex_weight() as f64 / 2.0;

    let mut group = c.benchmark_group("fm_pass");
    group.sample_size(10);
    group.bench_function("full", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| {
            let mut st = BisectionState::new(hg, sides.clone(), &fixed, [half, half], 0.03);
            black_box(st.fm_pass(&mut rng, 0))
        })
    });
    group.bench_function("boundary", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| {
            let mut st = BisectionState::new(hg, sides.clone(), &fixed, [half, half], 0.03);
            black_box(st.fm_pass_boundary(&mut rng, 0))
        })
    });
    group.finish();
}

fn bench_kway(c: &mut Criterion) {
    let m = model();
    let hg = m.hypergraph();
    let n = hg.num_vertices();
    let parts: Vec<u32> = (0..n).map(|v| v % 8).collect();
    let fixed = vec![u32::MAX; n as usize];
    c.bench_function("kway_refine_pass", |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| {
            let mut p = Partition::new(8, parts.clone()).expect("valid");
            black_box(kway_refine(hg, &mut p, &fixed, 0.05, 1, &mut rng))
        })
    });
}

criterion_group!(benches, bench_coarsening, bench_fm, bench_kway);
criterion_main!(benches);
