//! SpMV executor benchmarks: serial CSR kernel vs the distributed
//! simulator vs the threaded executor, under a fine-grain decomposition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fgh_core::{decompose_workload, DecomposeConfig, Model, Workload, WorkloadOutcome};
use fgh_spmv::parallel::parallel_spmv;
use fgh_spmv::DistributedSpmv;
use std::hint::black_box;

fn bench_spmv(c: &mut Criterion) {
    let entry = fgh_sparse::catalog::by_name("bcspwr10").expect("catalog name");
    let a = entry.generate_scaled(4, 1);
    let out = decompose_workload(
        Workload::Spmv(&a),
        &DecomposeConfig::new(Model::FineGrain2D, 4),
    )
    .and_then(WorkloadOutcome::into_spmv)
    .expect("decompose");
    let plan = DistributedSpmv::build(&a, &out.decomposition).expect("plan");
    let x: Vec<f64> = (0..a.ncols()).map(|j| j as f64 * 1e-3 + 1.0).collect();

    let mut group = c.benchmark_group("spmv");
    group.bench_with_input(BenchmarkId::new("serial", a.nnz()), &a, |b, a| {
        b.iter(|| black_box(a.spmv(black_box(&x)).expect("dims")))
    });
    group.bench_with_input(
        BenchmarkId::new("simulated_k4", a.nnz()),
        &plan,
        |b, plan| b.iter(|| black_box(plan.multiply(black_box(&x)).expect("dims"))),
    );
    group.bench_with_input(
        BenchmarkId::new("threaded_k4", a.nnz()),
        &plan,
        |b, plan| {
            b.iter(|| black_box(parallel_spmv(black_box(plan), black_box(&x)).expect("dims")))
        },
    );
    group.finish();
}

criterion_group!(benches, bench_spmv);
criterion_main!(benches);
