//! # fgh-traffic — storage-traffic simulator for partitioned SpGEMM
//!
//! Replays a partitioned `C = A · B` ([`fgh_core::models::SpgemmDecomposition`])
//! element-at-a-time and counts the storage traffic every matrix incurs,
//! in the per-matrix-counter shape of spada-sim's `OmegaTraffic` /
//! `CsrMatStorage` statistics:
//!
//! * **`A` / `B`** — `dram_reads` (the owner part streams the element out
//!   of its local storage the first time anyone needs it; later local
//!   uses hit the row buffer) and `remote_reads` (one word per *distinct
//!   non-owner part* with a multiply task reading the element — the
//!   expand traffic of the distributed algorithm).
//! * **`C`** — `remote_writes` (one partial-result word per distinct
//!   non-owner part producing into the element — the fold traffic) and
//!   `dram_writes` (the owner commits each final value exactly once).
//!
//! The point of the crate is the cross-check: for a decomposition decoded
//! from the fine-grain SpGEMM model, the simulator's **measured** remote
//! traffic equals the model's **predicted** communication volume — the
//! connectivity−1 cutsize — exactly, element class by element class
//! (`a.remote_reads + b.remote_reads` = expand volume, `c.remote_writes`
//! = fold volume). This mirrors the repo's cutsize == replayed-SpMV-volume
//! validation, one abstraction level lower: not "the model counts what
//! the statistics count" but "the model counts what a storage system
//! would actually move".
//!
//! [`verify_numeric`] closes the loop on correctness of the *computation*
//! itself: it executes the partitioned multiply numerically (per-part
//! partials folded to the owner) and compares against a serial Gustavson
//! reference row by row, with a relative tolerance because the two sum
//! the same products in different orders.

// Robustness contract: library (non-test) code must not panic; provably
// infallible sites carry a narrowly scoped `allow` with a justification.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::BTreeMap;

use fgh_core::models::{SpgemmDecomposition, SpgemmStructure};
use fgh_core::ModelError;
use fgh_sparse::{CsrMatrix, IndexType};
use fgh_trace::json::Value;

/// Errors from traffic simulation and numeric verification.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficError {
    /// Structure enumeration or decomposition validation failed.
    Model(ModelError),
    /// The partitioned numeric replay diverged from the Gustavson
    /// reference beyond the allowed relative tolerance.
    NumericMismatch {
        /// Row and column of the worst-offending `C` element.
        row: u64,
        col: u64,
        /// The partitioned replay's value.
        got: f64,
        /// The serial reference value.
        want: f64,
    },
}

impl std::fmt::Display for TrafficError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrafficError::Model(e) => write!(f, "{e}"),
            TrafficError::NumericMismatch {
                row,
                col,
                got,
                want,
            } => write!(
                f,
                "partitioned SpGEMM diverges from the serial reference at \
                 c[{row},{col}]: got {got}, want {want}"
            ),
        }
    }
}

impl std::error::Error for TrafficError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrafficError::Model(e) => Some(e),
            TrafficError::NumericMismatch { .. } => None,
        }
    }
}

impl From<ModelError> for TrafficError {
    fn from(e: ModelError) -> Self {
        TrafficError::Model(e)
    }
}

/// Read-side traffic of one operand matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadTraffic {
    /// Elements the owner part streamed out of its local storage
    /// (compulsory traffic: every used element is read exactly once).
    pub dram_reads: u64,
    /// Words served to non-owner parts — this matrix's share of the
    /// expand volume.
    pub remote_reads: u64,
}

/// Write-side traffic of the result matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteTraffic {
    /// Final values the owner committed (one per structural nonzero).
    pub dram_writes: u64,
    /// Partial-result words folded in from non-owner producers — the
    /// fold volume.
    pub remote_writes: u64,
}

/// Per-matrix storage-traffic counters of one partitioned SpGEMM replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficReport {
    /// Traffic of the `A` operand.
    pub a: ReadTraffic,
    /// Traffic of the `B` operand.
    pub b: ReadTraffic,
    /// Traffic of the `C` result.
    pub c: WriteTraffic,
}

impl TrafficReport {
    /// Total words crossing part boundaries — the quantity the model's
    /// connectivity−1 cutsize predicts exactly.
    pub fn total_remote(&self) -> u64 {
        self.a.remote_reads + self.b.remote_reads + self.c.remote_writes
    }

    /// Total local storage traffic (compulsory reads + final writes).
    pub fn total_dram(&self) -> u64 {
        self.a.dram_reads + self.b.dram_reads + self.c.dram_writes
    }

    /// The report as the `traffic` member of an `fgh-metrics/1` document
    /// (validated by [`fgh_core::validate_metrics_value`]).
    pub fn to_value(&self) -> Value {
        fn num(n: u64) -> Value {
            Value::Num(n as f64)
        }
        let mut a = BTreeMap::new();
        a.insert("dram_reads".into(), num(self.a.dram_reads));
        a.insert("remote_reads".into(), num(self.a.remote_reads));
        let mut b = BTreeMap::new();
        b.insert("dram_reads".into(), num(self.b.dram_reads));
        b.insert("remote_reads".into(), num(self.b.remote_reads));
        let mut c = BTreeMap::new();
        c.insert("dram_writes".into(), num(self.c.dram_writes));
        c.insert("remote_writes".into(), num(self.c.remote_writes));
        let mut t = BTreeMap::new();
        t.insert("a".into(), Value::Obj(a));
        t.insert("b".into(), Value::Obj(b));
        t.insert("c".into(), Value::Obj(c));
        t.insert("total_remote".into(), num(self.total_remote()));
        Value::Obj(t)
    }
}

/// Replays the partitioned product and returns its traffic counters.
/// Enumerates the canonical structure internally; use [`simulate_with`]
/// when the caller already has one.
pub fn simulate<I: IndexType>(
    a: &CsrMatrix<I>,
    b: &CsrMatrix<I>,
    d: &SpgemmDecomposition,
) -> Result<TrafficReport, TrafficError> {
    let s = SpgemmStructure::build(a, b)?;
    simulate_with(&s, d)
}

/// [`simulate`] against an already-built canonical structure.
pub fn simulate_with<I: IndexType>(
    s: &SpgemmStructure<I>,
    d: &SpgemmDecomposition,
) -> Result<TrafficReport, TrafficError> {
    d.validate_against(s)?;
    let k = d.k as usize;
    let mut report = TrafficReport::default();

    // A: consumers of element e are the owners of its contiguous tasks.
    // The owner's first touch streams the element from DRAM; every other
    // distinct part costs one remote word.
    let mut stamp = vec![usize::MAX; k];
    for (e, &owner) in d.a_owner.iter().enumerate() {
        if s.a_starts[e] == s.a_starts[e + 1] {
            continue; // defensively: used elements always have tasks
        }
        report.a.dram_reads += 1;
        stamp[owner as usize] = e;
        for t in s.a_starts[e]..s.a_starts[e + 1] {
            let p = d.task_owner[t] as usize;
            if stamp[p] != e {
                stamp[p] = e;
                report.a.remote_reads += 1;
            }
        }
    }

    // B consumers and C producers are scattered across the task order;
    // group tasks per element once, then replay element-at-a-time.
    let mut b_tasks: Vec<Vec<usize>> = vec![Vec::new(); s.b_elems.len()];
    let mut c_tasks: Vec<Vec<usize>> = vec![Vec::new(); s.c_elems.len()];
    for t in 0..s.tasks.len() {
        b_tasks[s.task_b[t]].push(t);
        c_tasks[s.task_c[t]].push(t);
    }

    let mut stamp = vec![usize::MAX; k];
    for (e, tasks) in b_tasks.iter().enumerate() {
        if tasks.is_empty() {
            continue;
        }
        report.b.dram_reads += 1;
        stamp[d.b_owner[e] as usize] = e;
        for &t in tasks {
            let p = d.task_owner[t] as usize;
            if stamp[p] != e {
                stamp[p] = e;
                report.b.remote_reads += 1;
            }
        }
    }

    let mut stamp = vec![usize::MAX; k];
    for (e, tasks) in c_tasks.iter().enumerate() {
        if tasks.is_empty() {
            continue;
        }
        report.c.dram_writes += 1;
        stamp[d.c_owner[e] as usize] = e;
        for &t in tasks {
            let p = d.task_owner[t] as usize;
            if stamp[p] != e {
                stamp[p] = e;
                report.c.remote_writes += 1;
            }
        }
    }

    Ok(report)
}

/// Executes the partitioned multiply numerically: each part accumulates
/// its tasks' products locally (canonical order within the part), then
/// the partials fold to the owner in ascending part order. Returns the
/// values of `C` in the canonical `c_elems` order (row-major, columns
/// ascending).
pub fn replay_numeric<I: IndexType>(
    a: &CsrMatrix<I>,
    b: &CsrMatrix<I>,
    d: &SpgemmDecomposition,
) -> Result<Vec<f64>, TrafficError> {
    let s = SpgemmStructure::build(a, b)?;
    d.validate_against(&s)?;
    let k = d.k as usize;

    // Per-part partials per C element, stamp-reset between elements.
    let mut partial = vec![0.0f64; k];
    let mut touched = vec![usize::MAX; k];

    // Products per task, canonical order: walk the same enumeration the
    // structure was built from so values line up with task ids.
    let mut products = Vec::with_capacity(s.tasks.len());
    let m = a.nrows().index();
    for iu in 0..m {
        let i = I::from_index(iu);
        let cols = a.row_cols(i);
        let vals = a.row_vals(i);
        for (pos, &ki) in cols.iter().enumerate() {
            if b.row_nnz(ki) == 0 {
                continue;
            }
            let av = vals[pos];
            for &bv in b.row_vals(ki) {
                products.push(av * bv);
            }
        }
    }
    debug_assert_eq!(products.len(), s.tasks.len());

    let mut c_tasks: Vec<Vec<usize>> = vec![Vec::new(); s.c_elems.len()];
    for t in 0..s.tasks.len() {
        c_tasks[s.task_c[t]].push(t);
    }
    let mut out = Vec::with_capacity(s.c_elems.len());
    for (e, tasks) in c_tasks.iter().enumerate() {
        for &t in tasks {
            let p = d.task_owner[t] as usize;
            if touched[p] != e {
                touched[p] = e;
                partial[p] = 0.0;
            }
            partial[p] += products[t];
        }
        let mut v = 0.0f64;
        for p in 0..k {
            if touched[p] == e {
                v += partial[p];
            }
        }
        out.push(v);
    }
    Ok(out)
}

/// Serial Gustavson `C = A · B`, values in the canonical `c_elems` order
/// — the reference [`verify_numeric`] compares the partitioned replay
/// against.
pub fn reference_product<I: IndexType>(
    a: &CsrMatrix<I>,
    b: &CsrMatrix<I>,
) -> Result<Vec<f64>, TrafficError> {
    if a.ncols() != b.nrows() {
        return Err(TrafficError::Model(ModelError::Invalid(format!(
            "SpGEMM inner dimensions disagree: A is {} x {}, B is {} x {}",
            a.nrows(),
            a.ncols(),
            b.nrows(),
            b.ncols()
        ))));
    }
    let n = b.ncols().index();
    let mut acc = vec![0.0f64; n];
    let mut seen = vec![usize::MAX; n];
    let mut out = Vec::new();
    let m = a.nrows().index();
    for iu in 0..m {
        let i = I::from_index(iu);
        let mut row_cols: Vec<usize> = Vec::new();
        let cols = a.row_cols(i);
        let vals = a.row_vals(i);
        for (pos, &ki) in cols.iter().enumerate() {
            let av = vals[pos];
            let bcols = b.row_cols(ki);
            let bvals = b.row_vals(ki);
            for (bpos, &j) in bcols.iter().enumerate() {
                let ju = j.index();
                if seen[ju] != iu {
                    seen[ju] = iu;
                    acc[ju] = 0.0;
                    row_cols.push(ju);
                }
                acc[ju] += av * bvals[bpos];
            }
        }
        row_cols.sort_unstable();
        for ju in row_cols {
            out.push(acc[ju]);
        }
    }
    Ok(out)
}

/// Runs the partitioned numeric replay and checks it against the serial
/// Gustavson reference with relative tolerance `rel_tol` (the two sum
/// identical products in different orders, so exact equality is not
/// guaranteed in floating point). Returns the worst mismatch as a typed
/// error.
pub fn verify_numeric<I: IndexType>(
    a: &CsrMatrix<I>,
    b: &CsrMatrix<I>,
    d: &SpgemmDecomposition,
    rel_tol: f64,
) -> Result<(), TrafficError> {
    let got = replay_numeric(a, b, d)?;
    let want = reference_product(a, b)?;
    if got.len() != want.len() {
        return Err(TrafficError::Model(ModelError::Invalid(format!(
            "replay produced {} C elements, reference {}",
            got.len(),
            want.len()
        ))));
    }
    let s = SpgemmStructure::build(a, b)?;
    for (e, (&g, &w)) in got.iter().zip(want.iter()).enumerate() {
        let scale = w.abs().max(g.abs()).max(1.0);
        if (g - w).abs() > rel_tol * scale {
            let (i, j) = s.c_elems[e];
            return Err(TrafficError::NumericMismatch {
                row: i.as_u64(),
                col: j.as_u64(),
                got: g,
                want: w,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgh_core::models::{SpgemmCommStats, SpgemmModel};
    use fgh_hypergraph::{cutsize_connectivity, Partition};
    use fgh_sparse::gen::{self, ValueMode};
    use fgh_sparse::CooMatrix;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn grid(seed: u64) -> CsrMatrix {
        gen::grid5(
            10,
            10,
            1.0,
            ValueMode::Laplacian,
            &mut SmallRng::seed_from_u64(seed),
        )
    }

    fn salted_decomposition(
        m: &SpgemmModel,
        k: u32,
        salt: u32,
    ) -> (Partition, SpgemmDecomposition) {
        let nv = m.hypergraph().num_vertices() as usize;
        let parts: Vec<u32> = (0..nv as u32)
            .map(|t| (t.wrapping_mul(13) + salt) % k)
            .collect();
        let p = Partition::new(k, parts).unwrap();
        let d = m.decode(&p).unwrap();
        (p, d)
    }

    #[test]
    fn measured_traffic_equals_predicted_volume() {
        // The tentpole cross-check: simulator-measured remote traffic ==
        // model cutsize == replayed communication volume, per phase.
        let a = grid(1);
        let m = SpgemmModel::build(&a, &a).unwrap();
        for k in [2u32, 3, 5] {
            for salt in 0..3 {
                let (p, d) = salted_decomposition(&m, k, salt);
                let report = simulate(&a, &a, &d).unwrap();
                let stats = SpgemmCommStats::compute(&a, &a, &d).unwrap();
                assert_eq!(
                    report.a.remote_reads + report.b.remote_reads,
                    stats.expand_volume(),
                    "k={k} salt={salt}: expand"
                );
                assert_eq!(
                    report.c.remote_writes, stats.fold_volume,
                    "k={k} salt={salt}: fold"
                );
                assert_eq!(
                    report.total_remote(),
                    cutsize_connectivity(m.hypergraph(), &p),
                    "k={k} salt={salt}: cutsize"
                );
            }
        }
    }

    #[test]
    fn compulsory_traffic_is_element_counts() {
        let a = grid(2);
        let m = SpgemmModel::build(&a, &a).unwrap();
        let (_, d) = salted_decomposition(&m, 4, 0);
        let s = m.structure();
        let report = simulate_with(s, &d).unwrap();
        assert_eq!(report.a.dram_reads, s.a_elems.len() as u64);
        assert_eq!(report.b.dram_reads, s.b_elems.len() as u64);
        assert_eq!(report.c.dram_writes, s.c_elems.len() as u64);
    }

    #[test]
    fn one_part_has_zero_remote_traffic() {
        let a = grid(3);
        let m = SpgemmModel::build(&a, &a).unwrap();
        let p = Partition::trivial(m.hypergraph().num_vertices());
        let d = m.decode(&p).unwrap();
        let report = simulate(&a, &a, &d).unwrap();
        assert_eq!(report.total_remote(), 0);
        assert!(report.total_dram() > 0, "compulsory traffic remains");
    }

    #[test]
    fn numeric_replay_matches_reference() {
        let a = grid(4);
        let m = SpgemmModel::build(&a, &a).unwrap();
        for k in [1u32, 2, 4] {
            let (_, d) = salted_decomposition(&m, k, 1);
            verify_numeric(&a, &a, &d, 1e-12).unwrap();
        }
    }

    #[test]
    fn reference_matches_dense_product_on_small_case() {
        let a: CsrMatrix = CsrMatrix::from_coo(
            CooMatrix::from_triplets(2, 3, vec![(0, 0, 2.0), (0, 2, 1.0), (1, 1, 3.0)]).unwrap(),
        );
        let b: CsrMatrix = CsrMatrix::from_coo(
            CooMatrix::from_triplets(
                3,
                2,
                vec![(0, 0, 1.0), (0, 1, 4.0), (1, 0, 2.0), (2, 1, 5.0)],
            )
            .unwrap(),
        );
        // C = [[2, 13], [6, 0]] structurally: (0,0)=2, (0,1)=8+5=13, (1,0)=6.
        assert_eq!(reference_product(&a, &b).unwrap(), vec![2.0, 13.0, 6.0]);
    }

    #[test]
    fn numeric_mismatch_is_reported_with_position() {
        // Force a mismatch by lying about the tolerance on a real replay:
        // impossible — instead corrupt the decomposition path by checking
        // the error type via an absurd negative tolerance.
        let a = grid(5);
        let m = SpgemmModel::build(&a, &a).unwrap();
        let (_, d) = salted_decomposition(&m, 3, 0);
        let r = verify_numeric(&a, &a, &d, -1.0);
        assert!(matches!(r, Err(TrafficError::NumericMismatch { .. })));
    }

    #[test]
    fn report_value_validates_in_metrics_documents() {
        use fgh_core::{decompose_workload, DecomposeConfig, Model, Workload};
        let a = grid(6);
        let cfg = DecomposeConfig::new(Model::SpgemmFineGrain, 4);
        let out = decompose_workload(Workload::Spgemm(&a, &a), &cfg)
            .unwrap()
            .into_spgemm()
            .unwrap();
        let report = simulate(&a, &a, &out.decomposition).unwrap();
        // The partitioned outcome's remote traffic equals its objective.
        assert_eq!(report.total_remote(), out.objective);
        let doc =
            fgh_core::report::spgemm_metrics_document(&a, &a, &cfg, &out, Some(&report.to_value()));
        fgh_core::validate_metrics_value(&doc).unwrap();
    }

    #[test]
    fn rejects_malformed_decompositions() {
        let a = grid(7);
        let m = SpgemmModel::build(&a, &a).unwrap();
        let (_, mut d) = salted_decomposition(&m, 2, 0);
        d.task_owner.pop();
        assert!(matches!(simulate(&a, &a, &d), Err(TrafficError::Model(_))));
    }
}
