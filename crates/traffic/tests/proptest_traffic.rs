//! Property-based cross-check over the matrix catalog: for arbitrary
//! catalog pairs and arbitrary (valid) task assignments, the
//! storage-traffic simulator's measured counters equal the fine-grain
//! SpGEMM model's predicted communication volume — expand and fold
//! phases separately, and in total the connectivity−1 cutsize — and the
//! partitioned numeric replay reproduces the serial Gustavson product.

use fgh_core::models::{spgemm_flops, SpgemmCommStats, SpgemmModel};
use fgh_hypergraph::{cutsize_connectivity, Partition};
use fgh_sparse::catalog::catalog;
use fgh_traffic::{simulate_with, verify_numeric};
use proptest::prelude::*;

proptest! {
    /// Measured remote traffic is exactly the model's predicted volume,
    /// per phase, for any part count and any assignment.
    #[test]
    fn traffic_equals_predicted_volume(
        entry in 0usize..catalog().len(),
        seed in 1u64..64,
        k in 2u32..8,
        salt in 0u32..1024,
    ) {
        // Scale 2 keeps generation cheap; the flops cap bounds the task
        // count so the densest catalog patterns don't dominate the sweep.
        let a = catalog()[entry].generate_scaled(2, seed);
        prop_assume!(spgemm_flops(&a, &a) < 100_000);
        let model = SpgemmModel::build(&a, &a).unwrap();
        let nv = model.hypergraph().num_vertices() as u32;
        prop_assume!(nv > 0);
        let parts: Vec<u32> = (0..nv)
            .map(|t| (t.wrapping_mul(2654435761).wrapping_add(salt)) % k)
            .collect();
        let p = Partition::new(k, parts).unwrap();
        let d = model.decode(&p).unwrap();

        let report = simulate_with(model.structure(), &d).unwrap();
        let stats = SpgemmCommStats::compute_with(model.structure(), &d).unwrap();
        prop_assert_eq!(
            report.a.remote_reads + report.b.remote_reads,
            stats.expand_volume()
        );
        prop_assert_eq!(report.c.remote_writes, stats.fold_volume);
        prop_assert_eq!(report.total_remote(), stats.total_volume());
        prop_assert_eq!(
            report.total_remote(),
            cutsize_connectivity(model.hypergraph(), &p)
        );

        // Compulsory traffic: one DRAM read per used element, one DRAM
        // write per structural result nonzero.
        let s = model.structure();
        prop_assert_eq!(report.a.dram_reads, s.a_elems.len() as u64);
        prop_assert_eq!(report.b.dram_reads, s.b_elems.len() as u64);
        prop_assert_eq!(report.c.dram_writes, s.c_elems.len() as u64);
    }

    /// The partitioned multiply computes the same product as the serial
    /// reference, whatever the assignment.
    #[test]
    fn partitioned_product_is_correct(
        entry in 0usize..catalog().len(),
        seed in 1u64..64,
        k in 1u32..6,
        salt in 0u32..1024,
    ) {
        let a = catalog()[entry].generate_scaled(2, seed);
        prop_assume!(spgemm_flops(&a, &a) < 100_000);
        let model = SpgemmModel::build(&a, &a).unwrap();
        let nv = model.hypergraph().num_vertices() as u32;
        prop_assume!(nv > 0);
        let parts: Vec<u32> = (0..nv)
            .map(|t| (t.wrapping_mul(2246822519).wrapping_add(salt)) % k)
            .collect();
        let p = Partition::new(k, parts).unwrap();
        let d = model.decode(&p).unwrap();
        verify_numeric(&a, &a, &d, 1e-9).unwrap();
    }
}
