//! Typed decomposition degradation: [`DecompositionStatus`] and the
//! stable [`DegradedReason`] enum.
//!
//! A degraded outcome is still a *valid* decomposition — every nonzero
//! and vector entry has an owner in `0..K` — but something kept the run
//! from fully meeting its request. Services and tools need to branch on
//! *which* thing, so the reason is an enum with a stable machine-readable
//! [`DegradedReason::code`] (carried on the wire by `fgh-serve` and in
//! the `fgh-metrics/1` document as `degraded_code`) alongside the
//! human-readable `Display` text.

/// Why a decomposition was degraded rather than full.
///
/// The variant set and each [`DegradedReason::code`] string are a
/// stability contract: downstream consumers (the serve protocol, metrics
/// dashboards) match on the codes, so variants may be added but existing
/// codes never change meaning.
#[derive(Debug, Clone, PartialEq)]
pub enum DegradedReason {
    /// The matrix has no nonzeros; a trivial decomposition was returned.
    EmptyMatrix,
    /// `K` exceeds the number of nonzeros, so some processors necessarily
    /// receive no work. When the configured model also failed outright on
    /// the degenerate input, `fallback` describes that failure and the
    /// outcome came from the round-robin fallback instead.
    DegenerateK {
        /// The requested processor count.
        k: u32,
        /// The matrix's nonzero count.
        nnz: u64,
        /// Set when the model failed and the round-robin fallback served
        /// the request: `"<model> failed on degenerate input: <error>"`.
        fallback: Option<String>,
    },
    /// A [`fgh_partition::Budget`] limit truncated the run; the best
    /// partition found so far was kept. The fields are the engine's
    /// truncation counters for the run.
    BudgetExhausted {
        /// Wall-clock checkpoint trips.
        wall: u64,
        /// `max_levels` checkpoint trips.
        levels: u64,
        /// `max_fm_passes` checkpoint trips.
        fm_passes: u64,
        /// `max_bytes` checkpoint trips.
        bytes: u64,
    },
    /// A [`fgh_partition::CancelToken`] was tripped mid-run; the outcome
    /// is a valid partial built from the best partition found before the
    /// engine observed the cancellation.
    Cancelled,
    /// The balance target ε could not be met; `achieved_percent` is the
    /// load imbalance the decomposition actually has.
    BalanceInfeasible {
        /// The requested tolerance.
        epsilon: f64,
        /// The achieved load imbalance, in percent.
        achieved_percent: f64,
    },
}

impl DegradedReason {
    /// Every code [`DegradedReason::code`] can return, for validators.
    pub const CODES: [&'static str; 5] = [
        "empty-matrix",
        "degenerate-k",
        "budget-exhausted",
        "cancelled",
        "balance-infeasible",
    ];

    /// Stable machine-readable code for this reason — what the serve
    /// protocol and the `fgh-metrics/1` `degraded_code` member carry.
    pub fn code(&self) -> &'static str {
        match self {
            DegradedReason::EmptyMatrix => "empty-matrix",
            DegradedReason::DegenerateK { .. } => "degenerate-k",
            DegradedReason::BudgetExhausted { .. } => "budget-exhausted",
            DegradedReason::Cancelled => "cancelled",
            DegradedReason::BalanceInfeasible { .. } => "balance-infeasible",
        }
    }
}

impl std::fmt::Display for DegradedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradedReason::EmptyMatrix => {
                write!(f, "matrix has no nonzeros; trivial decomposition")
            }
            DegradedReason::DegenerateK { k, nnz, fallback } => {
                write!(
                    f,
                    "K = {k} exceeds the {nnz} nonzeros; some processors receive no work"
                )?;
                if let Some(detail) = fallback {
                    write!(f, " ({detail})")?;
                }
                Ok(())
            }
            DegradedReason::BudgetExhausted {
                wall,
                levels,
                fm_passes,
                bytes,
            } => write!(
                f,
                "budget exhausted (wall: {wall}, levels: {levels}, fm passes: {fm_passes}, \
                 bytes: {bytes}); best partition found so far"
            ),
            DegradedReason::Cancelled => {
                write!(f, "cancelled by caller; best partition found so far")
            }
            DegradedReason::BalanceInfeasible {
                epsilon,
                achieved_percent,
            } => write!(
                f,
                "balance target ε = {epsilon:.3} infeasible: achieved \
                 {achieved_percent:.2}% load imbalance"
            ),
        }
    }
}

/// Whether a decomposition fully met its request or was degraded.
#[derive(Debug, Clone, PartialEq)]
pub enum DecompositionStatus {
    /// The decomposition meets the balance target and no budget tripped.
    Full,
    /// A best-effort decomposition: still valid (every nonzero and vector
    /// entry has an owner in `0..K`), but the balance target was
    /// infeasible, a budget limit or cancellation truncated the run, or
    /// the input was pathological. `reason` says which, with a stable
    /// machine-readable [`DegradedReason::code`].
    Degraded {
        /// The typed degradation reason.
        reason: DegradedReason,
    },
}

impl DecompositionStatus {
    /// `true` for [`DecompositionStatus::Degraded`].
    pub fn is_degraded(&self) -> bool {
        matches!(self, DecompositionStatus::Degraded { .. })
    }

    /// The typed degradation reason, when degraded.
    pub fn reason(&self) -> Option<&DegradedReason> {
        match self {
            DecompositionStatus::Full => None,
            DecompositionStatus::Degraded { reason } => Some(reason),
        }
    }

    /// The machine-readable degradation code, when degraded.
    pub fn code(&self) -> Option<&'static str> {
        self.reason().map(DegradedReason::code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_exhaustive() {
        let reasons = [
            DegradedReason::EmptyMatrix,
            DegradedReason::DegenerateK {
                k: 8,
                nnz: 3,
                fallback: None,
            },
            DegradedReason::BudgetExhausted {
                wall: 1,
                levels: 0,
                fm_passes: 0,
                bytes: 2,
            },
            DegradedReason::Cancelled,
            DegradedReason::BalanceInfeasible {
                epsilon: 0.03,
                achieved_percent: 12.5,
            },
        ];
        let codes: Vec<&str> = reasons.iter().map(DegradedReason::code).collect();
        assert_eq!(codes, DegradedReason::CODES);
    }

    #[test]
    fn display_text_names_the_condition() {
        assert!(DegradedReason::EmptyMatrix
            .to_string()
            .contains("no nonzeros"));
        let b = DegradedReason::BudgetExhausted {
            wall: 0,
            levels: 0,
            fm_passes: 0,
            bytes: 3,
        };
        assert!(b.to_string().contains("budget"));
        assert!(b.to_string().contains("bytes: 3"));
        assert!(DegradedReason::Cancelled.to_string().contains("cancelled"));
        let d = DegradedReason::DegenerateK {
            k: 9,
            nnz: 2,
            fallback: Some("fine-grain-2d failed on degenerate input: boom".into()),
        };
        let text = d.to_string();
        assert!(text.contains("K = 9"));
        assert!(text.contains("failed on degenerate input"));
    }

    #[test]
    fn status_accessors() {
        assert!(!DecompositionStatus::Full.is_degraded());
        assert_eq!(DecompositionStatus::Full.code(), None);
        let s = DecompositionStatus::Degraded {
            reason: DegradedReason::Cancelled,
        };
        assert!(s.is_degraded());
        assert_eq!(s.code(), Some("cancelled"));
        assert_eq!(s.reason(), Some(&DegradedReason::Cancelled));
    }
}
