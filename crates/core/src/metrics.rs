//! Exact communication statistics of one parallel SpMV under a
//! decomposition — the quantities Table 2 of the paper reports.
//!
//! Unlike a model's objective function (edge cut, cutsize), these are
//! computed directly from the decoded decomposition, so they are the same
//! ground truth for every model:
//!
//! * **expand** (pre-communication): for each `j`, the owner of `x_j`
//!   sends one word to every *other* processor owning a nonzero of column
//!   `j`;
//! * **fold** (post-communication): for each `i`, every processor owning a
//!   nonzero of row `i` other than the owner of `y_i` sends one partial
//!   result word to that owner.
//!
//! A *message* is a (sender, receiver, phase) triple — two processors
//! exchanging words for many columns in the expand phase still exchange
//! one message. The paper's per-processor message bound is `K − 1` for 1D
//! models (single phase) and `2(K − 1)` for the fine-grain model.

use fgh_sparse::{CsrMatrix, IndexType};

use crate::decomp::Decomposition;
use crate::Result;

/// Per-processor communication breakdown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Words this processor sends (expand + fold).
    pub sent_words: u64,
    /// Words this processor receives.
    pub recv_words: u64,
    /// Messages this processor sends.
    pub sent_messages: u64,
    /// Messages this processor receives.
    pub recv_messages: u64,
    /// Scalar multiplies (nonzeros) assigned to this processor.
    pub load: u64,
}

/// Exact communication requirements of one `y = Ax` under a decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct CommStats {
    /// Number of processors.
    pub k: u32,
    /// Matrix order (used for the paper's volume scaling; widened so
    /// `u64`-indexed matrices fit).
    pub n: u64,
    /// Total words moved in the expand (pre-communication) phase.
    pub expand_volume: u64,
    /// Total words moved in the fold (post-communication) phase.
    pub fold_volume: u64,
    /// Total messages in the expand phase.
    pub expand_messages: u64,
    /// Total messages in the fold phase.
    pub fold_messages: u64,
    /// Per-processor breakdown.
    pub per_proc: Vec<ProcStats>,
}

impl CommStats {
    /// Computes the exact statistics for decomposition `d` of matrix `a`.
    pub fn compute<I: IndexType>(a: &CsrMatrix<I>, d: &Decomposition) -> Result<Self> {
        d.validate(a)?;
        let k = d.k as usize;
        let n = a.nrows().index();

        let mut per_proc = vec![ProcStats::default(); k];
        for &p in &d.nonzero_owner {
            per_proc[p as usize].load += 1;
        }

        // Owners of nonzeros per column (CSR iteration is row-major, so
        // bucket by column) and per row (directly from CSR layout).
        let mut col_parts: Vec<Vec<u32>> = vec![Vec::new(); n];
        {
            let mut e = 0usize;
            for i in 0..n {
                for &j in a.row_cols(I::from_index(i)) {
                    col_parts[j.index()].push(d.nonzero_owner[e]);
                    e += 1;
                }
            }
        }

        // Message existence matrices, one per phase.
        let mut expand_msg = vec![false; k * k];
        let mut fold_msg = vec![false; k * k];
        let mut stamp = vec![u64::MAX; k];

        let mut expand_volume = 0u64;
        // Expand: owner(x_j) -> each distinct part with a nonzero in col j.
        for (j, cols) in col_parts.iter().enumerate().take(n) {
            let owner = d.vec_owner[j] as usize;
            let tick = j as u64;
            for &p in cols {
                let p = p as usize;
                if stamp[p] == tick || p == owner {
                    stamp[p] = tick;
                    continue;
                }
                stamp[p] = tick;
                expand_volume += 1;
                per_proc[owner].sent_words += 1;
                per_proc[p].recv_words += 1;
                expand_msg[owner * k + p] = true;
            }
        }
        drop(col_parts);

        let mut fold_volume = 0u64;
        let mut stamp = vec![u64::MAX; k];
        {
            let mut e = 0usize;
            for i in 0..n {
                let receiver = d.vec_owner[i] as usize;
                let tick = i as u64;
                for _ in a.row_cols(I::from_index(i)) {
                    let p = d.nonzero_owner[e] as usize;
                    e += 1;
                    if stamp[p] == tick || p == receiver {
                        stamp[p] = tick;
                        continue;
                    }
                    stamp[p] = tick;
                    fold_volume += 1;
                    per_proc[p].sent_words += 1;
                    per_proc[receiver].recv_words += 1;
                    fold_msg[p * k + receiver] = true;
                }
            }
        }

        let mut expand_messages = 0u64;
        let mut fold_messages = 0u64;
        for s in 0..k {
            for r in 0..k {
                if expand_msg[s * k + r] {
                    expand_messages += 1;
                    per_proc[s].sent_messages += 1;
                    per_proc[r].recv_messages += 1;
                }
                if fold_msg[s * k + r] {
                    fold_messages += 1;
                    per_proc[s].sent_messages += 1;
                    per_proc[r].recv_messages += 1;
                }
            }
        }

        Ok(CommStats {
            k: d.k,
            n: d.n,
            expand_volume,
            fold_volume,
            expand_messages,
            fold_messages,
            per_proc,
        })
    }

    /// Total communication volume in words (expand + fold) — the paper's
    /// primary metric ("tot", scaled by the matrix order when printed).
    pub fn total_volume(&self) -> u64 {
        self.expand_volume + self.fold_volume
    }

    /// Maximum words *sent* by a single processor — the paper's "max"
    /// column.
    pub fn max_sent_words(&self) -> u64 {
        self.per_proc
            .iter()
            .map(|p| p.sent_words)
            .max()
            .unwrap_or(0)
    }

    /// Maximum words sent + received by a single processor (extended
    /// metric, not in the paper's table).
    pub fn max_sent_recv_words(&self) -> u64 {
        self.per_proc
            .iter()
            .map(|p| p.sent_words + p.recv_words)
            .max()
            .unwrap_or(0)
    }

    /// Total messages across both phases.
    pub fn total_messages(&self) -> u64 {
        self.expand_messages + self.fold_messages
    }

    /// Average number of messages *sent* per processor — the paper's
    /// "avg #msgs" column (bounded by `K−1` for 1D models, `2(K−1)` for
    /// the fine-grain model).
    pub fn avg_messages_per_proc(&self) -> f64 {
        self.total_messages() as f64 / self.k as f64
    }

    /// Maximum messages sent by a single processor.
    pub fn max_messages_per_proc(&self) -> u64 {
        self.per_proc
            .iter()
            .map(|p| p.sent_messages)
            .max()
            .unwrap_or(0)
    }

    /// Total volume scaled by the matrix order, as printed in Table 2.
    pub fn scaled_total_volume(&self) -> f64 {
        self.total_volume() as f64 / self.n as f64
    }

    /// Max per-processor sent words scaled by the matrix order.
    pub fn scaled_max_volume(&self) -> f64 {
        self.max_sent_words() as f64 / self.n as f64
    }

    /// Percent computational imbalance (same formula as the paper).
    pub fn load_imbalance_percent(&self) -> f64 {
        let total: u64 = self.per_proc.iter().map(|p| p.load).sum();
        if total == 0 {
            return 0.0;
        }
        let avg = total as f64 / self.k as f64;
        let max = self.per_proc.iter().map(|p| p.load).max().unwrap_or(0) as f64;
        100.0 * (max - avg) / avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgh_sparse::CooMatrix;

    /// 4x4 matrix, full diagonal plus (1,0), (3,1), (1,2).
    fn sample() -> CsrMatrix {
        CsrMatrix::from_coo(
            CooMatrix::from_triplets(
                4,
                4,
                vec![
                    (0, 0, 1.0),
                    (1, 1, 1.0),
                    (2, 2, 1.0),
                    (3, 3, 1.0),
                    (1, 0, 1.0),
                    (3, 1, 1.0),
                    (1, 2, 1.0),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn no_communication_for_k1() {
        let a = sample();
        let d = Decomposition::rowwise(&a, 1, vec![0; 4]).unwrap();
        let s = CommStats::compute(&a, &d).unwrap();
        assert_eq!(s.total_volume(), 0);
        assert_eq!(s.total_messages(), 0);
    }

    #[test]
    fn rowwise_has_no_fold() {
        let a = sample();
        let d = Decomposition::rowwise(&a, 2, vec![0, 1, 0, 1]).unwrap();
        let s = CommStats::compute(&a, &d).unwrap();
        assert_eq!(s.fold_volume, 0, "row-wise SpMV folds nothing");
        // Expand: col 0 owned by P0, needed by P1 (row 1) -> 1 word.
        //         col 1 owned by P1, needed by P1 (rows 1,3) only -> 0.
        //         col 2 owned by P0, needed by P1 (row 1) -> 1 word.
        //         col 3 owned by P1, needed by P1 -> 0.
        assert_eq!(s.expand_volume, 2);
        assert_eq!(s.total_volume(), 2);
        // Both words travel P0 -> P1: one expand message.
        assert_eq!(s.expand_messages, 1);
        assert_eq!(s.max_sent_words(), 2);
    }

    #[test]
    fn columnwise_has_no_expand() {
        let a = sample();
        let d = Decomposition::columnwise(&a, 2, vec![0, 1, 0, 1]).unwrap();
        let s = CommStats::compute(&a, &d).unwrap();
        assert_eq!(s.expand_volume, 0, "column-wise SpMV expands nothing");
        // Fold: row 1 has nonzeros in cols 0(P0),1(P1),2(P0); y_1 on P1:
        //   P0 sends one partial word -> 1.
        // Row 3: cols 1(P1),3(P1); y_3 on P1 -> 0.
        assert_eq!(s.fold_volume, 1);
        assert_eq!(s.fold_messages, 1);
    }

    #[test]
    fn fine_grain_counts_both_phases() {
        let a = sample();
        // Nonzeros in CSR order: (0,0),(1,0),(1,1),(1,2),(2,2),(3,1),(3,3).
        // Put (1,0) and (1,2) on P1, everything else on P0; vectors on P0.
        let d = Decomposition::general(&a, 2, vec![0, 1, 0, 1, 0, 0, 0], vec![0, 0, 0, 0]).unwrap();
        let s = CommStats::compute(&a, &d).unwrap();
        // Expand: col 0 needed by P0,P1; owner P0 -> 1 word.
        //         col 2 needed by P0 (a_22), P1 (a_12); owner P0 -> 1 word.
        assert_eq!(s.expand_volume, 2);
        // Fold: row 1 computed on P0 (a_11) and P1; y_1 on P0 -> 1 word.
        assert_eq!(s.fold_volume, 1);
        assert_eq!(s.total_volume(), 3);
        // Messages: expand P0->P1 (one message), fold P1->P0 (one message).
        assert_eq!(s.total_messages(), 2);
        assert_eq!(s.avg_messages_per_proc(), 1.0);
        assert_eq!(s.per_proc[0].sent_words, 2);
        assert_eq!(s.per_proc[1].sent_words, 1);
        assert_eq!(s.max_sent_recv_words(), 3);
    }

    #[test]
    fn owner_without_local_nonzero_still_sends_to_all() {
        // x_0 owned by P2 which owns no nonzero of column 0: it must send
        // to every part in Λ.
        let a: CsrMatrix = CsrMatrix::from_coo(
            CooMatrix::from_triplets(
                3,
                3,
                vec![(0, 0, 1.0), (1, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)],
            )
            .unwrap(),
        );
        let d = Decomposition::general(&a, 3, vec![0, 1, 1, 2], vec![2, 1, 2]).unwrap();
        let s = CommStats::compute(&a, &d).unwrap();
        // Column 0 nonzeros on P0 and P1; owner P2 sends 2 words.
        assert_eq!(s.expand_volume, 2);
        assert!(s.per_proc[2].sent_words >= 2);
    }

    #[test]
    fn loads_match_decomposition() {
        let a = sample();
        let d = Decomposition::rowwise(&a, 2, vec![0, 1, 0, 1]).unwrap();
        let s = CommStats::compute(&a, &d).unwrap();
        let loads: Vec<u64> = s.per_proc.iter().map(|p| p.load).collect();
        assert_eq!(loads, d.loads());
        assert_eq!(s.load_imbalance_percent(), d.load_imbalance_percent());
    }

    #[test]
    fn wide_stats_match_narrow() {
        let a = sample();
        let a64: fgh_sparse::CsrMatrix<u64> = a.convert_width().unwrap();
        let d = Decomposition::rowwise(&a, 2, vec![0, 1, 0, 1]).unwrap();
        let s32 = CommStats::compute(&a, &d).unwrap();
        let s64 = CommStats::compute(&a64, &d).unwrap();
        assert_eq!(s32, s64, "ground-truth stats must be width-independent");
    }

    #[test]
    fn scaled_metrics() {
        let a = sample();
        let d = Decomposition::rowwise(&a, 2, vec![0, 1, 0, 1]).unwrap();
        let s = CommStats::compute(&a, &d).unwrap();
        assert!((s.scaled_total_volume() - 2.0 / 4.0).abs() < 1e-12);
        assert!((s.scaled_max_volume() - 2.0 / 4.0).abs() < 1e-12);
    }
}
