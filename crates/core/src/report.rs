//! Machine-readable metrics reports: the **`fgh-metrics/1`** JSON
//! document.
//!
//! One decomposition run → one self-describing JSON object carrying the
//! request, the exact communication statistics, the engine counters, and
//! (when tracing was on) the full span tree. The CLI's `--metrics-json`
//! flag writes exactly this document; [`validate_metrics_value`] is the
//! schema checker the golden tests and downstream tooling share.
//!
//! # Schema `fgh-metrics/1`
//!
//! ```json
//! {
//!   "schema": "fgh-metrics/1",
//!   "model": "fine-grain-2d",
//!   "k": 4, "epsilon": 0.03, "seed": 1, "runs": 1,
//!   "matrix": {"nrows": 256, "ncols": 256, "nnz": 1216, "index_bits": 32},
//!   "status": "full",
//!   "degraded_reason": null,
//!   "degraded_code": null,
//!   "objective": 104,
//!   "elapsed_ns": 5123456,
//!   "comm": {
//!     "total_volume": 104, "expand_volume": 60, "fold_volume": 44,
//!     "expand_messages": 9, "fold_messages": 7, "total_messages": 16,
//!     "max_messages_per_proc": 5, "max_sent_recv_words": 61,
//!     "load_imbalance_percent": 1.97
//!   },
//!   "engine": {
//!     "bisections": 3, "levels": 9, "contracted_incidences": 3120,
//!     "fm_passes": 40, "fm_moves": 512, "fm_rollbacks": 80,
//!     "wall_truncations": 0, "level_truncations": 0,
//!     "fm_truncations": 0, "byte_truncations": 0,
//!     "cancel_truncations": 0, "parallel_forks": 0,
//!     "phase_ns": {"coarsen": 2100345, "initial": 400123, "refine": 1800456}
//!   },
//!   "trace": [ …fgh-trace/1 span objects… ]
//! }
//! ```
//!
//! Every member above is required. `degraded_reason` (human-readable
//! text) and `degraded_code` (one of the stable
//! [`crate::status::DegradedReason::CODES`]) are strings when `status`
//! is `"degraded"` and `null` otherwise; `trace` is either `null` or a
//! span forest in the `fgh-trace/1` format
//! ([`fgh_trace::Trace::to_json`], validated by
//! [`fgh_trace::validate_trace_value`]). All integer members are
//! non-negative and f64-exact. `engine.phase_ns` breaks the partitioner
//! wall time down by multilevel phase; fgh-core builds fgh-partition
//! with its `stats` feature so the three counters are populated (they
//! are `0` only when a phase genuinely did not run).
//!
//! # Workload members
//!
//! Since the workload-generic API, every document also carries:
//!
//! * `workload` — `"spmv"` or `"spgemm"`.
//! * `matrix_b` — the second operand of a SpGEMM workload (same member
//!   set as `matrix`); `null` for SpMV documents.
//! * `flops` — multiply-task count of the SpGEMM product; `null` for
//!   SpMV documents.
//! * `traffic` — simulated storage-traffic counters from `fgh-traffic`
//!   when the caller ran the simulator, else `null`:
//!   `{"a": {"dram_reads", "remote_reads"}, "b": {...},
//!   "c": {"dram_writes", "remote_writes"}, "total_remote"}`.
//!
//! For SpGEMM documents, `comm.expand_volume` is the A- plus B-expand
//! volume and `comm.fold_volume` the C-fold volume, so the shared member
//! set keeps meaning across workloads.

use std::collections::BTreeMap;

use fgh_partition::EngineStats;
use fgh_sparse::{CsrMatrix, IndexType, IndexWidth};
use fgh_trace::json::{parse, Value};
use fgh_trace::validate_trace_value;

use crate::api::{DecomposeConfig, DecompositionOutcome};
use crate::status::DecompositionStatus;
use crate::workload::SpgemmOutcome;

/// The schema identifier stamped into every document.
pub const METRICS_SCHEMA: &str = "fgh-metrics/1";

fn num(n: u64) -> Value {
    // Counters are far below 2^53, so u64→f64 is exact there and merely
    // rounds beyond (the read side validates with `as_u64`).
    Value::Num(n as f64)
}

fn matrix_obj(nrows: u64, ncols: u64, nnz: u64, width: IndexWidth) -> Value {
    let mut matrix = BTreeMap::new();
    matrix.insert("nrows".into(), num(nrows));
    matrix.insert("ncols".into(), num(ncols));
    matrix.insert("nnz".into(), num(nnz));
    matrix.insert("index_bits".into(), num(width.bits() as u64));
    Value::Obj(matrix)
}

fn engine_obj(e: &EngineStats) -> Value {
    let mut engine = BTreeMap::new();
    engine.insert("bisections".into(), num(e.bisections));
    engine.insert("levels".into(), num(e.levels));
    engine.insert("contracted_incidences".into(), num(e.contracted_incidences));
    engine.insert("fm_passes".into(), num(e.fm_passes));
    engine.insert("fm_moves".into(), num(e.fm_moves));
    engine.insert("fm_rollbacks".into(), num(e.fm_rollbacks));
    engine.insert("wall_truncations".into(), num(e.wall_truncations));
    engine.insert("level_truncations".into(), num(e.level_truncations));
    engine.insert("fm_truncations".into(), num(e.fm_truncations));
    engine.insert("byte_truncations".into(), num(e.byte_truncations));
    engine.insert("cancel_truncations".into(), num(e.cancel_truncations));
    engine.insert("parallel_forks".into(), num(e.parallel_forks));
    let mut phase_ns = BTreeMap::new();
    phase_ns.insert("coarsen".into(), num(e.coarsen_nanos));
    phase_ns.insert("initial".into(), num(e.initial_nanos));
    phase_ns.insert("refine".into(), num(e.refine_nanos));
    engine.insert("phase_ns".into(), Value::Obj(phase_ns));
    Value::Obj(engine)
}

fn trace_obj(trace: Option<&fgh_trace::Trace>) -> Value {
    match trace {
        // The span tree already has a tested serializer; round-tripping
        // through it keeps exactly one source of truth for that format.
        Some(t) => parse(&t.to_json()).unwrap_or(Value::Null),
        None => Value::Null,
    }
}

#[allow(clippy::too_many_arguments)] // one assembly point for both workloads
fn assemble_document(
    cfg: &DecomposeConfig,
    workload: &str,
    matrix: Value,
    matrix_b: Value,
    flops: Value,
    traffic: Value,
    status: &DecompositionStatus,
    objective: u64,
    elapsed: std::time::Duration,
    comm: Value,
    engine: Value,
    trace: Value,
) -> Value {
    let mut doc = BTreeMap::new();
    doc.insert("schema".into(), Value::Str(METRICS_SCHEMA.into()));
    doc.insert("model".into(), Value::Str(cfg.model.name().into()));
    doc.insert("workload".into(), Value::Str(workload.into()));
    doc.insert("k".into(), num(cfg.k as u64));
    doc.insert("epsilon".into(), Value::Num(cfg.epsilon));
    doc.insert("seed".into(), num(cfg.seed));
    doc.insert("runs".into(), num(cfg.runs as u64));
    doc.insert("matrix".into(), matrix);
    doc.insert("matrix_b".into(), matrix_b);
    doc.insert("flops".into(), flops);
    doc.insert(
        "status".into(),
        Value::Str(
            if status.is_degraded() {
                "degraded"
            } else {
                "full"
            }
            .into(),
        ),
    );
    doc.insert(
        "degraded_reason".into(),
        match status.reason() {
            Some(r) => Value::Str(r.to_string()),
            None => Value::Null,
        },
    );
    doc.insert(
        "degraded_code".into(),
        match status.code() {
            Some(c) => Value::Str(c.into()),
            None => Value::Null,
        },
    );
    doc.insert("objective".into(), num(objective));
    let elapsed_ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
    doc.insert("elapsed_ns".into(), num(elapsed_ns));
    doc.insert("comm".into(), comm);
    doc.insert("traffic".into(), traffic);
    doc.insert("engine".into(), engine);
    doc.insert("trace".into(), trace);
    Value::Obj(doc)
}

/// Assembles the `fgh-metrics/1` document for one SpMV decomposition
/// run. `a` must be the matrix the outcome was computed from.
pub fn metrics_document<I: IndexType>(
    a: &CsrMatrix<I>,
    cfg: &DecomposeConfig,
    out: &DecompositionOutcome,
) -> Value {
    let s = &out.stats;
    let mut comm = BTreeMap::new();
    comm.insert("total_volume".into(), num(s.total_volume()));
    comm.insert("expand_volume".into(), num(s.expand_volume));
    comm.insert("fold_volume".into(), num(s.fold_volume));
    comm.insert("expand_messages".into(), num(s.expand_messages));
    comm.insert("fold_messages".into(), num(s.fold_messages));
    comm.insert("total_messages".into(), num(s.total_messages()));
    comm.insert(
        "max_messages_per_proc".into(),
        num(s.max_messages_per_proc()),
    );
    comm.insert("max_sent_recv_words".into(), num(s.max_sent_recv_words()));
    comm.insert(
        "load_imbalance_percent".into(),
        Value::Num(s.load_imbalance_percent()),
    );

    assemble_document(
        cfg,
        "spmv",
        matrix_obj(
            a.nrows().as_u64(),
            a.ncols().as_u64(),
            out.decomposition.nonzero_owner.len() as u64,
            out.width,
        ),
        Value::Null,
        Value::Null,
        Value::Null,
        &out.status,
        out.objective,
        out.elapsed,
        Value::Obj(comm),
        engine_obj(&out.engine),
        trace_obj(out.trace.as_ref()),
    )
}

/// [`metrics_document`] serialized to a compact JSON string (what the
/// CLI writes for `--metrics-json`).
pub fn metrics_json<I: IndexType>(
    a: &CsrMatrix<I>,
    cfg: &DecomposeConfig,
    out: &DecompositionOutcome,
) -> String {
    metrics_document(a, cfg, out).to_json()
}

/// Assembles the `fgh-metrics/1` document for one SpGEMM decomposition
/// run. `a`/`b` must be the operands the outcome was computed from;
/// `traffic` is the simulator's counter object (see the module docs for
/// its member set) when the caller ran `fgh-traffic`, else `None`.
pub fn spgemm_metrics_document<I: IndexType>(
    a: &CsrMatrix<I>,
    b: &CsrMatrix<I>,
    cfg: &DecomposeConfig,
    out: &SpgemmOutcome,
    traffic: Option<&Value>,
) -> Value {
    let s = &out.stats;
    let mut comm = BTreeMap::new();
    comm.insert("total_volume".into(), num(s.total_volume()));
    comm.insert("expand_volume".into(), num(s.expand_volume()));
    comm.insert("fold_volume".into(), num(s.fold_volume));
    comm.insert("expand_messages".into(), num(s.expand_messages()));
    comm.insert("fold_messages".into(), num(s.fold_messages));
    comm.insert("total_messages".into(), num(s.total_messages()));
    comm.insert(
        "max_messages_per_proc".into(),
        num(s.max_messages_per_proc()),
    );
    comm.insert("max_sent_recv_words".into(), num(s.max_sent_recv_words()));
    comm.insert(
        "load_imbalance_percent".into(),
        Value::Num(s.load_imbalance_percent()),
    );

    assemble_document(
        cfg,
        "spgemm",
        matrix_obj(
            a.nrows().as_u64(),
            a.ncols().as_u64(),
            a.nnz() as u64,
            out.width,
        ),
        matrix_obj(
            b.nrows().as_u64(),
            b.ncols().as_u64(),
            b.nnz() as u64,
            out.width,
        ),
        num(out.flops),
        traffic.cloned().unwrap_or(Value::Null),
        &out.status,
        out.objective,
        out.elapsed,
        Value::Obj(comm),
        engine_obj(&out.engine),
        trace_obj(out.trace.as_ref()),
    )
}

/// [`spgemm_metrics_document`] serialized to a compact JSON string.
pub fn spgemm_metrics_json<I: IndexType>(
    a: &CsrMatrix<I>,
    b: &CsrMatrix<I>,
    cfg: &DecomposeConfig,
    out: &SpgemmOutcome,
    traffic: Option<&Value>,
) -> String {
    spgemm_metrics_document(a, b, cfg, out, traffic).to_json()
}

const TOP_MEMBERS: [&str; 18] = [
    "schema",
    "model",
    "workload",
    "k",
    "epsilon",
    "seed",
    "runs",
    "matrix",
    "matrix_b",
    "flops",
    "status",
    "degraded_reason",
    "degraded_code",
    "objective",
    "elapsed_ns",
    "comm",
    "traffic",
    "engine",
];

const MATRIX_MEMBERS: [&str; 4] = ["nrows", "ncols", "nnz", "index_bits"];

const COMM_MEMBERS: [&str; 9] = [
    "total_volume",
    "expand_volume",
    "fold_volume",
    "expand_messages",
    "fold_messages",
    "total_messages",
    "max_messages_per_proc",
    "max_sent_recv_words",
    "load_imbalance_percent",
];

const ENGINE_MEMBERS: [&str; 12] = [
    "bisections",
    "levels",
    "contracted_incidences",
    "fm_passes",
    "fm_moves",
    "fm_rollbacks",
    "wall_truncations",
    "level_truncations",
    "fm_truncations",
    "byte_truncations",
    "cancel_truncations",
    "parallel_forks",
];

const ENGINE_PHASE_MEMBERS: [&str; 3] = ["coarsen", "initial", "refine"];

const TRAFFIC_READ_MEMBERS: [&str; 2] = ["dram_reads", "remote_reads"];
const TRAFFIC_WRITE_MEMBERS: [&str; 2] = ["dram_writes", "remote_writes"];
const TRAFFIC_TOTAL_MEMBERS: [&str; 1] = ["total_remote"];

fn require_counters(
    v: &Value,
    members: &[&str],
    path: &str,
    float_ok: &[&str],
    nested: &[(&str, &[&str])],
) -> Result<(), String> {
    let obj = v.as_obj().ok_or(format!("{path}: expected an object"))?;
    for key in obj.keys() {
        if !members.contains(&key.as_str()) && !nested.iter().any(|(n, _)| n == key) {
            return Err(format!("{path}: unknown member {key:?}"));
        }
    }
    for m in members {
        let val = obj.get(*m).ok_or(format!("{path}.{m}: missing"))?;
        if float_ok.contains(m) {
            val.as_f64()
                .ok_or(format!("{path}.{m}: expected a number"))?;
        } else {
            val.as_u64()
                .ok_or(format!("{path}.{m}: expected a non-negative integer"))?;
        }
    }
    for (m, sub) in nested {
        let val = obj.get(*m).ok_or(format!("{path}.{m}: missing"))?;
        require_counters(val, sub, &format!("{path}.{m}"), &[], &[])?;
    }
    Ok(())
}

/// Validates a parsed JSON value against the `fgh-metrics/1` schema.
/// Checks the exact member sets of the top-level object and its `matrix`
/// / `comm` / `engine` sub-objects, the type of every member, the
/// `status` / `degraded_reason` coupling, and — when `trace` is not null
/// — the embedded `fgh-trace/1` span forest. Returns the first violation
/// as a `path: problem` message.
pub fn validate_metrics_value(v: &Value) -> Result<(), String> {
    let obj = v
        .as_obj()
        .ok_or("metrics: expected an object".to_string())?;
    for key in obj.keys() {
        if !TOP_MEMBERS.contains(&key.as_str()) && key != "trace" {
            return Err(format!("metrics: unknown member {key:?}"));
        }
    }
    match v.get("schema").and_then(|s| s.as_str()) {
        Some(s) if s == METRICS_SCHEMA => {}
        Some(s) => return Err(format!("metrics.schema: unknown schema {s:?}")),
        None => return Err("metrics.schema: missing".to_string()),
    }
    v.get("model")
        .and_then(|m| m.as_str())
        .ok_or("metrics.model: expected a string")?;
    for m in ["k", "seed", "runs", "objective", "elapsed_ns"] {
        v.get(m)
            .and_then(|n| n.as_u64())
            .ok_or(format!("metrics.{m}: expected a non-negative integer"))?;
    }
    v.get("epsilon")
        .and_then(|n| n.as_f64())
        .ok_or("metrics.epsilon: expected a number")?;
    require_counters(
        v.get("matrix").unwrap_or(&Value::Null),
        &MATRIX_MEMBERS,
        "metrics.matrix",
        &[],
        &[],
    )?;
    let workload = v
        .get("workload")
        .and_then(|w| w.as_str())
        .ok_or("metrics.workload: expected a string")?;
    let matrix_b = v.get("matrix_b").ok_or("metrics.matrix_b: missing")?;
    let flops = v.get("flops").ok_or("metrics.flops: missing")?;
    match workload {
        "spmv" => {
            if !matrix_b.is_null() {
                return Err("metrics.matrix_b: must be null for an spmv workload".to_string());
            }
            if !flops.is_null() {
                return Err("metrics.flops: must be null for an spmv workload".to_string());
            }
        }
        "spgemm" => {
            require_counters(matrix_b, &MATRIX_MEMBERS, "metrics.matrix_b", &[], &[])?;
            flops
                .as_u64()
                .ok_or("metrics.flops: expected a non-negative integer")?;
        }
        other => return Err(format!("metrics.workload: unknown workload {other:?}")),
    }
    match v.get("traffic") {
        Some(t) if t.is_null() => {}
        Some(t) => {
            if workload != "spgemm" {
                return Err("metrics.traffic: only spgemm workloads carry traffic".to_string());
            }
            require_counters(
                t,
                &TRAFFIC_TOTAL_MEMBERS,
                "metrics.traffic",
                &[],
                &[
                    ("a", &TRAFFIC_READ_MEMBERS),
                    ("b", &TRAFFIC_READ_MEMBERS),
                    ("c", &TRAFFIC_WRITE_MEMBERS),
                ],
            )?;
        }
        None => return Err("metrics.traffic: missing".to_string()),
    }
    require_counters(
        v.get("comm").unwrap_or(&Value::Null),
        &COMM_MEMBERS,
        "metrics.comm",
        &["load_imbalance_percent"],
        &[],
    )?;
    require_counters(
        v.get("engine").unwrap_or(&Value::Null),
        &ENGINE_MEMBERS,
        "metrics.engine",
        &[],
        &[("phase_ns", &ENGINE_PHASE_MEMBERS)],
    )?;
    let status = v
        .get("status")
        .and_then(|s| s.as_str())
        .ok_or("metrics.status: expected a string")?;
    let reason = v
        .get("degraded_reason")
        .ok_or("metrics.degraded_reason: missing")?;
    let code = v
        .get("degraded_code")
        .ok_or("metrics.degraded_code: missing")?;
    match status {
        "full" if reason.is_null() => {}
        "full" => return Err("metrics.degraded_reason: must be null when full".to_string()),
        "degraded" if reason.as_str().is_some() => {}
        "degraded" => {
            return Err("metrics.degraded_reason: must be a string when degraded".to_string())
        }
        other => return Err(format!("metrics.status: unknown status {other:?}")),
    }
    match (status, code.as_str()) {
        ("full", _) if code.is_null() => {}
        ("full", _) => return Err("metrics.degraded_code: must be null when full".to_string()),
        ("degraded", Some(c)) if crate::status::DegradedReason::CODES.contains(&c) => {}
        ("degraded", Some(c)) => return Err(format!("metrics.degraded_code: unknown code {c:?}")),
        ("degraded", None) => {
            return Err("metrics.degraded_code: must be a string when degraded".to_string())
        }
        _ => {}
    }
    match v.get("trace") {
        Some(t) if t.is_null() => Ok(()),
        Some(t) => validate_trace_value(t),
        None => Err("metrics.trace: missing".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{DecomposeIndex, Model};
    use crate::workload::{decompose_workload, Workload, WorkloadOutcome};
    use fgh_sparse::gen::{self, ValueMode};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn decompose<I: DecomposeIndex>(
        a: &CsrMatrix<I>,
        cfg: &DecomposeConfig,
    ) -> std::result::Result<crate::api::DecompositionOutcome, crate::FghError> {
        decompose_workload(Workload::Spmv(a), cfg).and_then(WorkloadOutcome::into_spmv)
    }

    fn matrix() -> CsrMatrix {
        gen::grid5(
            12,
            12,
            1.0,
            ValueMode::Ones,
            &mut SmallRng::seed_from_u64(3),
        )
    }

    #[test]
    fn document_round_trips_and_validates() {
        let a = matrix();
        let cfg = DecomposeConfig::new(Model::FineGrain2D, 4).with_trace(true);
        let out = decompose(&a, &cfg).unwrap();
        let text = metrics_json(&a, &cfg, &out);
        let v = parse(&text).unwrap();
        validate_metrics_value(&v).unwrap();
        assert_eq!(v.get("model").unwrap().as_str(), Some("fine-grain-2d"));
        assert_eq!(v.get("k").unwrap().as_u64(), Some(4));
        assert_eq!(
            v.get("comm").unwrap().get("total_volume").unwrap().as_u64(),
            Some(out.stats.total_volume())
        );
        assert!(!v.get("trace").unwrap().is_null(), "trace was requested");
        // fgh-core compiles the partitioner with `stats`, so the phase
        // breakdown must be populated, not all-zero.
        let phase = v.get("engine").unwrap().get("phase_ns").unwrap();
        let total: u64 = ["coarsen", "initial", "refine"]
            .iter()
            .map(|p| phase.get(p).unwrap().as_u64().unwrap())
            .sum();
        assert!(total > 0, "phase_ns all zero despite stats feature");
    }

    #[test]
    fn untraced_document_has_null_trace() {
        let a = matrix();
        let cfg = DecomposeConfig::new(Model::Graph1D, 2);
        let out = decompose(&a, &cfg).unwrap();
        let v = parse(&metrics_json(&a, &cfg, &out)).unwrap();
        validate_metrics_value(&v).unwrap();
        assert!(v.get("trace").unwrap().is_null());
    }

    #[test]
    fn validator_rejects_mutations() {
        let a = matrix();
        let cfg = DecomposeConfig::new(Model::FineGrain2D, 2).with_trace(true);
        let out = decompose(&a, &cfg).unwrap();
        let good = metrics_json(&a, &cfg, &out);
        for (needle, replacement, why) in [
            (
                r#""schema":"fgh-metrics/1""#,
                r#""schema":"bogus/9""#,
                "schema",
            ),
            (r#""status":"full""#, r#""status":"great""#, "status"),
            (r#""k":2"#, r#""k":-2"#, "negative k"),
            (r#""fm_moves""#, r#""fm_movez""#, "engine member"),
            (r#""phase_ns""#, r#""phase_nz""#, "phase_ns member"),
            (r#""coarsen""#, r#""coarsed""#, "phase name"),
            (r#""workload":"spmv""#, r#""workload":"sgemv""#, "workload"),
            (
                r#""matrix_b":null"#,
                r#""matrix_b":7"#,
                "spmv matrix_b coupling",
            ),
            (r#""flops":null"#, r#""flops":3"#, "spmv flops coupling"),
            (
                r#""traffic":null"#,
                r#""traffic":{}"#,
                "spmv traffic coupling",
            ),
        ] {
            let bad = good.replace(needle, replacement);
            assert_ne!(good, bad, "mutation {why} did not apply");
            let v = parse(&bad).unwrap();
            assert!(validate_metrics_value(&v).is_err(), "accepted bad {why}");
        }
    }

    fn traffic_fixture() -> Value {
        let side = |r: u64, w: u64, reads: bool| {
            let mut m = BTreeMap::new();
            if reads {
                m.insert("dram_reads".into(), super::num(r));
                m.insert("remote_reads".into(), super::num(w));
            } else {
                m.insert("dram_writes".into(), super::num(r));
                m.insert("remote_writes".into(), super::num(w));
            }
            Value::Obj(m)
        };
        let mut t = BTreeMap::new();
        t.insert("a".into(), side(10, 3, true));
        t.insert("b".into(), side(8, 2, true));
        t.insert("c".into(), side(12, 4, false));
        t.insert("total_remote".into(), super::num(9));
        Value::Obj(t)
    }

    #[test]
    fn spgemm_document_round_trips_and_validates() {
        let a = matrix();
        let cfg = DecomposeConfig::new(Model::SpgemmFineGrain, 4).with_trace(true);
        let out = decompose_workload(Workload::Spgemm(&a, &a), &cfg)
            .unwrap()
            .into_spgemm()
            .unwrap();
        let traffic = traffic_fixture();
        let text = spgemm_metrics_json(&a, &a, &cfg, &out, Some(&traffic));
        let v = parse(&text).unwrap();
        validate_metrics_value(&v).unwrap();
        assert_eq!(v.get("workload").unwrap().as_str(), Some("spgemm"));
        assert_eq!(v.get("model").unwrap().as_str(), Some("spgemm-fine-grain"));
        assert_eq!(v.get("flops").unwrap().as_u64(), Some(out.flops));
        assert_eq!(
            v.get("matrix_b").unwrap().get("nnz").unwrap().as_u64(),
            Some(a.nnz() as u64)
        );
        assert_eq!(
            v.get("comm").unwrap().get("total_volume").unwrap().as_u64(),
            Some(out.stats.total_volume())
        );
        assert_eq!(
            v.get("traffic")
                .unwrap()
                .get("total_remote")
                .unwrap()
                .as_u64(),
            Some(9)
        );
        assert!(!v.get("trace").unwrap().is_null());

        // Without the simulator the member is null and still validates.
        let v = parse(&spgemm_metrics_json(&a, &a, &cfg, &out, None)).unwrap();
        validate_metrics_value(&v).unwrap();
        assert!(v.get("traffic").unwrap().is_null());
    }

    #[test]
    fn spgemm_validator_rejects_traffic_mutations() {
        let a = matrix();
        let cfg = DecomposeConfig::new(Model::SpgemmFineGrain, 2);
        let out = decompose_workload(Workload::Spgemm(&a, &a), &cfg)
            .unwrap()
            .into_spgemm()
            .unwrap();
        let traffic = traffic_fixture();
        let good = spgemm_metrics_json(&a, &a, &cfg, &out, Some(&traffic));
        parse(&good)
            .ok()
            .map(|v| validate_metrics_value(&v).unwrap())
            .unwrap();
        for (needle, replacement, why) in [
            (r#""total_remote""#, r#""total_remorse""#, "traffic member"),
            (r#""dram_reads""#, r#""dram_reeds""#, "traffic a/b member"),
            (r#""dram_writes""#, r#""dram_rites""#, "traffic c member"),
            (
                r#""workload":"spgemm""#,
                r#""workload":"spmv""#,
                "workload/matrix_b coupling",
            ),
        ] {
            let bad = good.replace(needle, replacement);
            assert_ne!(good, bad, "mutation {why} did not apply");
            let v = parse(&bad).unwrap();
            assert!(validate_metrics_value(&v).is_err(), "accepted bad {why}");
        }
    }
}
