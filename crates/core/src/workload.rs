//! The workload-generic decomposition API: one entry point for every
//! workload the models decompose.
//!
//! [`Workload`] names *what* runs in parallel — an SpMV `y = Ax` over one
//! square matrix, or an SpGEMM `C = A · B` over a conformable pair — and
//! [`decompose_workload`] dispatches it to the matching pipeline under
//! one [`DecomposeConfig`]. The config's [`Model`] is coupled to the
//! workload family via [`Model::workload`]: an SpMV model on a SpGEMM
//! workload (or vice versa) is a typed [`FghError::InvalidInput`], never
//! a silent reinterpretation.
//!
//! The four historical entry points (`decompose`, `decompose_in`,
//! `decompose_any`, `decompose_any_in`) survive as thin deprecated shims
//! over this module — same semantics, parity-tested bit-for-bit — and
//! will be removed one release after the workload API shipped.
//!
//! Like the SpMV API, everything comes width-generic ([`Workload`] over
//! `u32`/`u64` indices) and width-erased ([`WorkloadAny`], which
//! auto-upgrades a `u32` carrier when the task hypergraph would overflow
//! 32-bit ids — for SpGEMM that is driven by the *flop count*, which
//! overflows long before either matrix's own indices do).

use std::sync::Arc;
use std::time::{Duration, Instant};

use fgh_partition::{
    partition_hypergraph_best_traced_in, ArenaPool, EngineStats, InitialScheme, Parallelism,
};
use fgh_sparse::{AnyCsrMatrix, CsrMatrix, IndexWidth};
use fgh_trace::{Trace, Tracer};

use crate::api::{
    degradation_status, spmv_pipeline_any_in, spmv_pipeline_in, DecomposeConfig, DecomposeIndex,
    DecompositionOutcome, WorkloadKind,
};
use crate::models::spgemm::{spgemm_flops, SpgemmCommStats, SpgemmDecomposition, SpgemmModel};
use crate::status::{DecompositionStatus, DegradedReason};
use crate::FghError;

/// A decomposition workload at a fixed index width: the matrices whose
/// computation is being distributed across `K` processors.
#[derive(Debug, Clone, Copy)]
pub enum Workload<'a, I: DecomposeIndex> {
    /// Sparse matrix-vector multiply `y = A x` (the paper's workload).
    /// `A` must be square.
    Spmv(&'a CsrMatrix<I>),
    /// Sparse matrix-matrix multiply `C = A · B`. Rectangular matrices
    /// are fine; only the inner dimensions must agree.
    Spgemm(&'a CsrMatrix<I>, &'a CsrMatrix<I>),
}

impl<I: DecomposeIndex> Workload<'_, I> {
    /// Which workload family this is.
    pub fn kind(&self) -> WorkloadKind {
        match self {
            Workload::Spmv(_) => WorkloadKind::Spmv,
            Workload::Spgemm(..) => WorkloadKind::Spgemm,
        }
    }
}

/// A [`Workload`] over width-erased carriers (as produced by streaming
/// Matrix Market input) — the input to [`decompose_workload_any`].
#[derive(Debug, Clone, Copy)]
pub enum WorkloadAny<'a> {
    /// Sparse matrix-vector multiply `y = A x`.
    Spmv(&'a AnyCsrMatrix),
    /// Sparse matrix-matrix multiply `C = A · B`.
    Spgemm(&'a AnyCsrMatrix, &'a AnyCsrMatrix),
}

impl WorkloadAny<'_> {
    /// Which workload family this is.
    pub fn kind(&self) -> WorkloadKind {
        match self {
            WorkloadAny::Spmv(_) => WorkloadKind::Spmv,
            WorkloadAny::Spgemm(..) => WorkloadKind::Spgemm,
        }
    }
}

/// The result of [`decompose_workload`]: one variant per workload family.
/// A [`Workload::Spmv`] input always produces the `Spmv` variant and a
/// [`Workload::Spgemm`] input the `Spgemm` variant — the accessors exist
/// so callers that know their workload can unwrap without a panic path.
#[derive(Debug, Clone)]
pub enum WorkloadOutcome {
    /// Outcome of an SpMV decomposition.
    Spmv(DecompositionOutcome),
    /// Outcome of a SpGEMM decomposition.
    Spgemm(SpgemmOutcome),
}

impl WorkloadOutcome {
    /// Which workload family produced this outcome.
    pub fn kind(&self) -> WorkloadKind {
        match self {
            WorkloadOutcome::Spmv(_) => WorkloadKind::Spmv,
            WorkloadOutcome::Spgemm(_) => WorkloadKind::Spgemm,
        }
    }

    /// Full or degraded, for either family.
    pub fn status(&self) -> &DecompositionStatus {
        match self {
            WorkloadOutcome::Spmv(o) => &o.status,
            WorkloadOutcome::Spgemm(o) => &o.status,
        }
    }

    /// The SpMV outcome, if this is one.
    pub fn as_spmv(&self) -> Option<&DecompositionOutcome> {
        match self {
            WorkloadOutcome::Spmv(o) => Some(o),
            WorkloadOutcome::Spgemm(_) => None,
        }
    }

    /// The SpGEMM outcome, if this is one.
    pub fn as_spgemm(&self) -> Option<&SpgemmOutcome> {
        match self {
            WorkloadOutcome::Spgemm(o) => Some(o),
            WorkloadOutcome::Spmv(_) => None,
        }
    }

    /// Unwraps the SpMV outcome; a typed error (never a panic) when the
    /// outcome belongs to another family.
    pub fn into_spmv(self) -> std::result::Result<DecompositionOutcome, FghError> {
        match self {
            WorkloadOutcome::Spmv(o) => Ok(o),
            other => Err(FghError::InvalidInput(format!(
                "expected an SpMV outcome, got {}",
                other.kind()
            ))),
        }
    }

    /// Unwraps the SpGEMM outcome; a typed error (never a panic) when
    /// the outcome belongs to another family.
    pub fn into_spgemm(self) -> std::result::Result<SpgemmOutcome, FghError> {
        match self {
            WorkloadOutcome::Spgemm(o) => Ok(o),
            other => Err(FghError::InvalidInput(format!(
                "expected a SpGEMM outcome, got {}",
                other.kind()
            ))),
        }
    }

    /// Strict-mode check for either family — see
    /// [`DecompositionOutcome::into_strict`].
    pub fn into_strict(self) -> std::result::Result<Self, FghError> {
        match self {
            WorkloadOutcome::Spmv(o) => o.into_strict().map(WorkloadOutcome::Spmv),
            WorkloadOutcome::Spgemm(o) => o.into_strict().map(WorkloadOutcome::Spgemm),
        }
    }
}

/// The result of a SpGEMM decomposition — the SpGEMM face of
/// [`DecompositionOutcome`], with the same status / engine / trace
/// contract.
#[derive(Debug, Clone)]
pub struct SpgemmOutcome {
    /// The decoded decomposition (task, A, B, and C owners).
    pub decomposition: SpgemmDecomposition,
    /// Exact communication statistics, replayed from the decomposition —
    /// ground truth independent of the model's objective.
    pub stats: SpgemmCommStats,
    /// The connectivity−1 cutsize the partitioner minimized. Equals
    /// `stats.total_volume()` for decoded outcomes (the model's exactness
    /// property, cross-checked by the `fgh-traffic` simulator).
    pub objective: u64,
    /// Multiply-task count (= flops of the numeric product).
    pub flops: u64,
    /// Wall-clock time (model build + partitioning + decode).
    pub elapsed: Duration,
    /// Full or degraded, with the reason when degraded.
    pub status: DecompositionStatus,
    /// The index width the decomposition ran at.
    pub width: IndexWidth,
    /// Multilevel engine statistics (budget-truncation counters
    /// included).
    pub engine: EngineStats,
    /// Structured execution trace when [`DecomposeConfig::trace`] was
    /// set; `None` otherwise.
    pub trace: Option<Trace>,
}

impl SpgemmOutcome {
    /// Strict-mode check — same contract as
    /// [`DecompositionOutcome::into_strict`].
    pub fn into_strict(self) -> std::result::Result<Self, FghError> {
        match &self.status {
            DecompositionStatus::Full => Ok(self),
            DecompositionStatus::Degraded { reason } => match reason {
                DegradedReason::BudgetExhausted { .. } => {
                    Err(FghError::BudgetExhausted(reason.to_string()))
                }
                DegradedReason::Cancelled => Err(FghError::Cancelled(reason.to_string())),
                _ => Err(FghError::Infeasible(reason.to_string())),
            },
        }
    }
}

/// Decomposes a workload for `cfg.k` processors with the configured
/// model — **the** generic entry point the legacy `decompose*` quartet
/// collapsed into.
///
/// Dispatch is total: a [`Workload::Spmv`] input runs the SpMV pipeline
/// (identical to the deprecated [`crate::decompose`]) and returns
/// [`WorkloadOutcome::Spmv`]; a [`Workload::Spgemm`] input builds the
/// fine-grain SpGEMM task hypergraph, partitions it with the same
/// multilevel engine, and returns [`WorkloadOutcome::Spgemm`]. The
/// failure semantics of [`crate::decompose`] carry over unchanged, plus
/// one new rule: `cfg.model.workload()` must match the workload family
/// or the request is rejected as [`FghError::InvalidInput`].
pub fn decompose_workload<I: DecomposeIndex>(
    workload: Workload<'_, I>,
    cfg: &DecomposeConfig,
) -> std::result::Result<WorkloadOutcome, FghError> {
    decompose_workload_in(workload, cfg, &Arc::new(ArenaPool::new()))
}

/// [`decompose_workload`] drawing all partitioner scratch arenas from a
/// caller-supplied [`ArenaPool`] — the session-reuse entry point behind
/// [`crate::session::EngineSession`].
pub fn decompose_workload_in<I: DecomposeIndex>(
    workload: Workload<'_, I>,
    cfg: &DecomposeConfig,
    pool: &Arc<ArenaPool>,
) -> std::result::Result<WorkloadOutcome, FghError> {
    match workload {
        Workload::Spmv(a) => spmv_pipeline_in(a, cfg, pool).map(WorkloadOutcome::Spmv),
        Workload::Spgemm(a, b) => spgemm_pipeline_in(a, b, cfg, pool).map(WorkloadOutcome::Spgemm),
    }
}

/// [`decompose_workload`] over width-erased carriers, choosing the index
/// width automatically (see [`crate::decompose_any`] for the SpMV rules;
/// a SpGEMM workload additionally upgrades when the flop count — the
/// task-hypergraph vertex count — would overflow `u32` ids).
pub fn decompose_workload_any(
    workload: WorkloadAny<'_>,
    cfg: &DecomposeConfig,
) -> std::result::Result<WorkloadOutcome, FghError> {
    decompose_workload_any_in(workload, cfg, &Arc::new(ArenaPool::new()))
}

/// [`decompose_workload_any`] drawing partitioner scratch from a
/// caller-supplied [`ArenaPool`].
pub fn decompose_workload_any_in(
    workload: WorkloadAny<'_>,
    cfg: &DecomposeConfig,
    pool: &Arc<ArenaPool>,
) -> std::result::Result<WorkloadOutcome, FghError> {
    match workload {
        WorkloadAny::Spmv(a) => spmv_pipeline_any_in(a, cfg, pool).map(WorkloadOutcome::Spmv),
        WorkloadAny::Spgemm(a, b) => {
            spgemm_pipeline_any_in(a, b, cfg, pool).map(WorkloadOutcome::Spgemm)
        }
    }
}

/// Width choice for a SpGEMM pair: wide when either carrier is already
/// wide, when either matrix's own shape demands it, when the flop count
/// (task-hypergraph vertices) or the net-count upper bound (used A +
/// used B + nnz(C) ≤ nnz(A) + nnz(B) + flops) would overflow `u32` ids,
/// or when the `force-u64` build routes everything wide.
fn spgemm_width(a: &AnyCsrMatrix, b: &AnyCsrMatrix) -> IndexWidth {
    if cfg!(feature = "force-u64")
        || matches!(a, AnyCsrMatrix::U64(_))
        || matches!(b, AnyCsrMatrix::U64(_))
        || IndexWidth::select(a.nrows(), a.ncols(), a.nnz() as u64) == IndexWidth::U64
        || IndexWidth::select(b.nrows(), b.ncols(), b.nnz() as u64) == IndexWidth::U64
    {
        return IndexWidth::U64;
    }
    let flops = match (a, b) {
        (AnyCsrMatrix::U32(a32), AnyCsrMatrix::U32(b32)) => spgemm_flops(a32, b32),
        // Unreachable (wide carriers returned above), but total.
        _ => u64::MAX,
    };
    let nets_bound = flops
        .saturating_add(a.nnz() as u64)
        .saturating_add(b.nnz() as u64);
    if nets_bound >= u32::MAX as u64 {
        IndexWidth::U64
    } else {
        IndexWidth::U32
    }
}

fn spgemm_pipeline_any_in(
    a: &AnyCsrMatrix,
    b: &AnyCsrMatrix,
    cfg: &DecomposeConfig,
    pool: &Arc<ArenaPool>,
) -> std::result::Result<SpgemmOutcome, FghError> {
    match spgemm_width(a, b) {
        IndexWidth::U32 => match (a, b) {
            (AnyCsrMatrix::U32(a32), AnyCsrMatrix::U32(b32)) => {
                spgemm_pipeline_in(a32, b32, cfg, pool)
            }
            // spgemm_width only answers U32 for a pair of U32 carriers.
            _ => Err(FghError::InvalidInput(
                "width selection chose u32 for a wide carrier".into(),
            )),
        },
        IndexWidth::U64 => {
            let wide_a;
            let a64: &CsrMatrix<u64> = match a {
                AnyCsrMatrix::U64(m) => m,
                AnyCsrMatrix::U32(m) => {
                    wide_a = m.convert_width()?;
                    &wide_a
                }
            };
            let wide_b;
            let b64: &CsrMatrix<u64> = match b {
                AnyCsrMatrix::U64(m) => m,
                AnyCsrMatrix::U32(m) => {
                    wide_b = m.convert_width()?;
                    &wide_b
                }
            };
            spgemm_pipeline_in(a64, b64, cfg, pool)
        }
    }
}

/// The SpGEMM pipeline: model build → multilevel partition → first-pin
/// decode → exact replayed statistics, with the same degenerate-input
/// and budget-degradation semantics as the SpMV pipeline.
fn spgemm_pipeline_in<I: DecomposeIndex>(
    a: &CsrMatrix<I>,
    b: &CsrMatrix<I>,
    cfg: &DecomposeConfig,
    pool: &Arc<ArenaPool>,
) -> std::result::Result<SpgemmOutcome, FghError> {
    if cfg.model.workload() != WorkloadKind::Spgemm {
        return Err(FghError::InvalidInput(format!(
            "model {} decomposes a {} workload, not SpGEMM",
            cfg.model.name(),
            cfg.model.workload()
        )));
    }
    if cfg.k == 0 {
        return Err(FghError::InvalidInput("K must be >= 1".into()));
    }
    if !cfg.epsilon.is_finite() || cfg.epsilon < 0.0 {
        return Err(FghError::InvalidInput(format!(
            "epsilon must be finite and >= 0, got {}",
            cfg.epsilon
        )));
    }
    let (tracer, sink) = if cfg.trace {
        let (t, s) = Tracer::collecting();
        (t, Some(s))
    } else {
        (Tracer::disabled(), None)
    };
    let start = Instant::now();
    let root = tracer.span("decompose");

    let model = {
        let _mb = root.handle().child("model-build");
        SpgemmModel::build(a, b)?
    };
    let flops = model.structure().num_tasks() as u64;

    // Degenerate product (no multiply task at all): a trivial empty
    // decomposition, tagged like the empty-matrix SpMV case.
    if flops == 0 {
        let decomposition = SpgemmDecomposition {
            k: cfg.k,
            task_owner: Vec::new(),
            a_owner: Vec::new(),
            b_owner: Vec::new(),
            c_owner: Vec::new(),
        };
        let stats = SpgemmCommStats::compute_with(model.structure(), &decomposition)?;
        let elapsed = start.elapsed();
        drop(root);
        return Ok(SpgemmOutcome {
            decomposition,
            stats,
            objective: 0,
            flops: 0,
            elapsed,
            status: DecompositionStatus::Degraded {
                reason: DegradedReason::EmptyMatrix,
            },
            width: I::WIDTH,
            engine: EngineStats::default(),
            trace: sink.map(|s| s.build_trace()),
        });
    }

    let mut forced_reason: Option<DegradedReason> = None;
    if cfg.k as u64 > flops {
        forced_reason = Some(DegradedReason::DegenerateK {
            k: cfg.k,
            nnz: flops,
            fallback: None,
        });
    }

    let attempt = (|| -> std::result::Result<(SpgemmDecomposition, u64, EngineStats), FghError> {
        let mut pcfg = cfg.partition_config();
        if matches!(cfg.initial, InitialScheme::Geometric | InitialScheme::Auto) {
            // Tasks have natural (row, col) positions in the product.
            let coords: Vec<(f32, f32)> = (0..model.structure().num_tasks())
                .map(|t| {
                    let (r, c) = model.coords(t);
                    // lint: checked-cast — ids as geometric positions; f32 rounding above 2^24 only nudges the sweep order, never indexes
                    (r.index() as f32, c.index() as f32)
                })
                .collect();
            pcfg.coords = Some(Arc::new(coords));
        }
        let ps = root.handle().child("partition");
        let r = partition_hypergraph_best_traced_in(
            model.hypergraph(),
            cfg.k,
            &pcfg,
            cfg.runs,
            pool,
            &ps.handle(),
        )?;
        drop(ps);
        let ds = root.handle().child("decode");
        let d = model.decode(&r.partition)?;
        drop(ds);
        Ok((d, r.cutsize, r.stats))
    })();

    let (decomposition, objective, engine) = match attempt {
        Ok(t) => t,
        Err(e) if forced_reason.is_some() => {
            // The engine choked on the degenerate K; round-robin the
            // tasks instead of failing, keeping the reason visible. The
            // first-pin decode keeps the exact-volume property.
            forced_reason = Some(DegradedReason::DegenerateK {
                k: cfg.k,
                nnz: flops,
                fallback: Some(format!(
                    "{} failed on degenerate input: {e}",
                    cfg.model.name()
                )),
            });
            let parts: Vec<u32> = (0..model.structure().num_tasks())
                .map(|t| (t % cfg.k as usize) as u32) // lint: checked-cast — value < k, a u32
                .collect();
            let p = fgh_hypergraph::Partition::new(cfg.k, parts)
                .map_err(fgh_partition::PartitionError::from)?;
            let d = model.decode(&p)?;
            let vol = SpgemmCommStats::compute_with(model.structure(), &d)?.total_volume();
            (d, vol, EngineStats::default())
        }
        Err(e) => return Err(e),
    };
    let elapsed = start.elapsed();
    drop(root);
    let trace = sink.map(|s| s.build_trace());
    let stats = SpgemmCommStats::compute_with(model.structure(), &decomposition)?;

    let status = degradation_status(
        forced_reason,
        &engine,
        cfg,
        stats.load_imbalance_percent(),
        flops,
    );
    Ok(SpgemmOutcome {
        decomposition,
        stats,
        objective,
        flops,
        elapsed,
        status,
        width: I::WIDTH,
        engine,
        trace,
    })
}

// Serial-vs-parallel determinism and session reuse are inherited from the
// engine; the Parallelism re-export keeps the doc link above resolvable
// without a direct use in code.
const _: fn() -> Parallelism = || Parallelism::Auto;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Model;
    use fgh_sparse::gen::{self, ValueMode};
    use fgh_sparse::CooMatrix;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn test_matrix() -> CsrMatrix {
        gen::grid5(
            12,
            12,
            1.0,
            ValueMode::Ones,
            &mut SmallRng::seed_from_u64(5),
        )
    }

    fn spgemm_cfg(k: u32) -> DecomposeConfig {
        DecomposeConfig::new(Model::SpgemmFineGrain, k)
    }

    #[test]
    fn spgemm_outcome_is_exact_and_valid() {
        let a = test_matrix();
        let out = decompose_workload(Workload::Spgemm(&a, &a), &spgemm_cfg(4))
            .unwrap()
            .into_spgemm()
            .unwrap();
        out.decomposition.validate(&a, &a).unwrap();
        assert_eq!(out.stats.k, 4);
        assert_eq!(
            out.objective,
            out.stats.total_volume(),
            "cutsize != replayed SpGEMM volume"
        );
        assert!(out.flops > 0);
        assert_eq!(out.decomposition.task_owner.len() as u64, out.flops);
        assert!(out.engine.bisections > 0, "engine-backed model");
    }

    #[test]
    fn spgemm_rectangular_pair_works() {
        // A: 6x4, B: 4x5 — only the inner dimension must agree.
        let a: CsrMatrix = CsrMatrix::from_coo(
            CooMatrix::from_triplets(
                6,
                4,
                vec![
                    (0, 0, 1.0),
                    (1, 1, 2.0),
                    (2, 2, 1.0),
                    (3, 3, 1.0),
                    (4, 0, 1.0),
                    (5, 2, 3.0),
                    (0, 3, 1.0),
                ],
            )
            .unwrap(),
        );
        let b: CsrMatrix = CsrMatrix::from_coo(
            CooMatrix::from_triplets(
                4,
                5,
                vec![
                    (0, 0, 1.0),
                    (0, 4, 1.0),
                    (1, 2, 1.0),
                    (2, 1, 1.0),
                    (3, 3, 1.0),
                ],
            )
            .unwrap(),
        );
        let out = decompose_workload(Workload::Spgemm(&a, &b), &spgemm_cfg(2))
            .unwrap()
            .into_spgemm()
            .unwrap();
        out.decomposition.validate(&a, &b).unwrap();
        assert_eq!(out.objective, out.stats.total_volume());
    }

    #[test]
    fn model_workload_mismatch_is_typed() {
        let a = test_matrix();
        // SpGEMM model on an SpMV workload.
        let r = decompose_workload(
            Workload::Spmv(&a),
            &DecomposeConfig::new(Model::SpgemmFineGrain, 2),
        );
        assert!(matches!(r, Err(FghError::InvalidInput(_))), "{r:?}");
        // SpMV model on a SpGEMM workload.
        let r = decompose_workload(
            Workload::Spgemm(&a, &a),
            &DecomposeConfig::new(Model::FineGrain2D, 2),
        );
        assert!(matches!(r, Err(FghError::InvalidInput(_))), "{r:?}");
    }

    #[test]
    fn spgemm_rejects_bad_requests() {
        let a = test_matrix();
        assert!(decompose_workload(Workload::Spgemm(&a, &a), &spgemm_cfg(0)).is_err());
        let bad_eps = spgemm_cfg(2).with_epsilon(f64::NAN);
        assert!(decompose_workload(Workload::Spgemm(&a, &a), &bad_eps).is_err());
    }

    #[test]
    fn spgemm_empty_product_degrades() {
        // Disjoint support: A uses only column 0, B's row 0 is empty.
        let a: CsrMatrix =
            CsrMatrix::from_coo(CooMatrix::from_triplets(2, 2, vec![(0, 0, 1.0)]).unwrap());
        let b: CsrMatrix =
            CsrMatrix::from_coo(CooMatrix::from_triplets(2, 2, vec![(1, 1, 1.0)]).unwrap());
        let out = decompose_workload(Workload::Spgemm(&a, &b), &spgemm_cfg(2))
            .unwrap()
            .into_spgemm()
            .unwrap();
        assert_eq!(out.flops, 0);
        assert_eq!(out.status.code(), Some("empty-matrix"));
        assert_eq!(out.stats.total_volume(), 0);
    }

    #[test]
    fn spgemm_degenerate_k_round_robins() {
        // K far above the flop count must degrade, not fail.
        let a: CsrMatrix = CsrMatrix::from_coo(
            CooMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (1, 1, 1.0)]).unwrap(),
        );
        let out = decompose_workload(Workload::Spgemm(&a, &a), &spgemm_cfg(64))
            .unwrap()
            .into_spgemm()
            .unwrap();
        assert_eq!(out.status.code(), Some("degenerate-k"));
        out.decomposition.validate(&a, &a).unwrap();
        assert_eq!(out.objective, out.stats.total_volume());
    }

    #[test]
    fn spgemm_k1_costs_nothing() {
        let a = test_matrix();
        let out = decompose_workload(Workload::Spgemm(&a, &a), &spgemm_cfg(1))
            .unwrap()
            .into_spgemm()
            .unwrap();
        assert_eq!(out.objective, 0);
        assert_eq!(out.stats.total_volume(), 0);
    }

    #[test]
    fn spgemm_wide_path_matches_fast_path() {
        let a = test_matrix();
        let a64: CsrMatrix<u64> = a.convert_width().unwrap();
        let cfg = spgemm_cfg(4);
        let narrow = decompose_workload(Workload::Spgemm(&a, &a), &cfg)
            .unwrap()
            .into_spgemm()
            .unwrap();
        let wide = decompose_workload(Workload::Spgemm(&a64, &a64), &cfg)
            .unwrap()
            .into_spgemm()
            .unwrap();
        assert_eq!(wide.width, IndexWidth::U64);
        assert_eq!(narrow.decomposition, wide.decomposition);
        assert_eq!(narrow.objective, wide.objective);
    }

    #[test]
    fn workload_any_dispatches_spgemm() {
        let a = test_matrix();
        let cfg = spgemm_cfg(4);
        let typed = decompose_workload(Workload::Spgemm(&a, &a), &cfg)
            .unwrap()
            .into_spgemm()
            .unwrap();
        let any = AnyCsrMatrix::from(a.clone());
        let erased = decompose_workload_any(WorkloadAny::Spgemm(&any, &any), &cfg)
            .unwrap()
            .into_spgemm()
            .unwrap();
        if cfg!(feature = "force-u64") {
            assert_eq!(erased.width, IndexWidth::U64);
        } else {
            assert_eq!(erased.width, IndexWidth::U32);
        }
        assert_eq!(typed.decomposition, erased.decomposition);

        // A mixed-width pair runs wide.
        let wide = any.convert_width(IndexWidth::U64).unwrap();
        let mixed = decompose_workload_any(WorkloadAny::Spgemm(&any, &wide), &cfg)
            .unwrap()
            .into_spgemm()
            .unwrap();
        assert_eq!(mixed.width, IndexWidth::U64);
        assert_eq!(typed.decomposition, mixed.decomposition);
    }

    #[test]
    fn spgemm_trace_and_strict_contract() {
        let a = test_matrix();
        let out = decompose_workload(Workload::Spgemm(&a, &a), &spgemm_cfg(4).with_trace(true))
            .unwrap()
            .into_spgemm()
            .unwrap();
        let trace = out.trace.as_ref().expect("trace requested");
        let json = trace.to_json();
        assert!(json.contains("decompose") && json.contains("model-build"));
        assert!(out.clone().into_strict().is_ok());

        // Strict rejection of a budget-truncated run.
        let tight = spgemm_cfg(4).with_budget(crate::Budget::bytes(1));
        let out = decompose_workload(Workload::Spgemm(&a, &a), &tight)
            .unwrap()
            .into_spgemm()
            .unwrap();
        assert!(out.status.is_degraded());
        assert!(matches!(
            out.into_strict(),
            Err(FghError::BudgetExhausted(_))
        ));
    }

    #[test]
    fn spmv_workload_matches_legacy_shims_bitwise() {
        // Shim-parity: the deprecated quartet must be byte-identical to
        // the workload path (they delegate, so this guards the contract).
        let a = test_matrix();
        for model in [Model::Graph1D, Model::FineGrain2D, Model::Mondriaan2D] {
            let cfg = DecomposeConfig::new(model, 4).with_seed(7);
            let via_workload = decompose_workload(Workload::Spmv(&a), &cfg)
                .unwrap()
                .into_spmv()
                .unwrap();
            #[allow(deprecated)]
            let via_shim = crate::api::decompose(&a, &cfg).unwrap();
            assert_eq!(via_shim.decomposition, via_workload.decomposition);
            assert_eq!(via_shim.objective, via_workload.objective);
            assert_eq!(via_shim.stats, via_workload.stats);
            assert_eq!(via_shim.status, via_workload.status);
            // Engine counters are deterministic; wall-clock nanos are not.
            let detimed = |mut e: EngineStats| {
                e.coarsen_nanos = 0;
                e.initial_nanos = 0;
                e.refine_nanos = 0;
                e
            };
            assert_eq!(detimed(via_shim.engine), detimed(via_workload.engine));
        }
        // And the width-erased pair.
        let any = AnyCsrMatrix::from(a.clone());
        let cfg = DecomposeConfig::new(Model::FineGrain2D, 4);
        let via_workload = decompose_workload_any(WorkloadAny::Spmv(&any), &cfg)
            .unwrap()
            .into_spmv()
            .unwrap();
        #[allow(deprecated)]
        let via_shim = crate::api::decompose_any(&any, &cfg).unwrap();
        assert_eq!(via_shim.decomposition, via_workload.decomposition);
        assert_eq!(via_shim.width, via_workload.width);

        let pool = Arc::new(ArenaPool::new());
        let via_workload_in = decompose_workload_in(Workload::Spmv(&a), &cfg, &pool)
            .unwrap()
            .into_spmv()
            .unwrap();
        #[allow(deprecated)]
        let via_shim_in = crate::api::decompose_in(&a, &cfg, &pool).unwrap();
        assert_eq!(via_shim_in.decomposition, via_workload_in.decomposition);
        #[allow(deprecated)]
        let via_shim_any_in = crate::api::decompose_any_in(&any, &cfg, &pool).unwrap();
        assert_eq!(via_shim_any_in.decomposition, via_workload_in.decomposition);
    }

    #[test]
    fn outcome_accessors_are_total() {
        let a = test_matrix();
        let spmv = decompose_workload(Workload::Spmv(&a), &DecomposeConfig::new(Model::Graph1D, 2))
            .unwrap();
        assert_eq!(spmv.kind(), WorkloadKind::Spmv);
        assert!(spmv.as_spmv().is_some());
        assert!(spmv.as_spgemm().is_none());
        assert!(matches!(
            spmv.clone().into_spgemm(),
            Err(FghError::InvalidInput(_))
        ));
        assert!(spmv.into_strict().is_ok());

        let spgemm = decompose_workload(Workload::Spgemm(&a, &a), &spgemm_cfg(2)).unwrap();
        assert_eq!(spgemm.kind(), WorkloadKind::Spgemm);
        assert!(spgemm.as_spgemm().is_some());
        assert!(matches!(spgemm.into_spmv(), Err(FghError::InvalidInput(_))));
    }

    #[test]
    fn spgemm_balance_targets_flops() {
        // With default epsilon the task loads must be near-balanced.
        let a = test_matrix();
        let out = decompose_workload(Workload::Spgemm(&a, &a), &spgemm_cfg(4))
            .unwrap()
            .into_spgemm()
            .unwrap();
        let loads = out.decomposition.loads();
        let total: u64 = loads.iter().sum();
        assert_eq!(total, out.flops);
        assert!(
            out.stats.load_imbalance_percent() <= 15.0,
            "imbalance {}%",
            out.stats.load_imbalance_percent()
        );
    }
}
