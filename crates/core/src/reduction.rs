//! Generic reduction-problem decomposition (the paper's §1 and §3
//! remarks): SpMV is one instance of a *reduction* — atomic tasks consume
//! input elements and contribute to output elements. The fine-grain model
//! applies unchanged: one vertex per task, one net per input (expand), one
//! net per output (fold).
//!
//! Without the symmetric-partitioning requirement no consistency condition
//! is needed; free inputs/outputs are assigned to any connected part at
//! zero extra cost. Pre-assigned inputs/outputs are supported through
//! zero-weight **part vertices** fixed to their processor and pinned to
//! the corresponding nets, exactly as the paper prescribes.

use fgh_hypergraph::{connectivity_sets, HypergraphBuilder};
use fgh_partition::recursive::partition_hypergraph_fixed;
use fgh_partition::PartitionConfig;

use crate::{ModelError, Result};

/// One atomic task of a reduction: it reads some inputs and accumulates
/// into some outputs. (For SpMV: task `(i,j)` reads `x_j`, accumulates
/// `y_i`.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    /// Input element ids this task reads.
    pub inputs: Vec<u32>,
    /// Output element ids this task accumulates into.
    pub outputs: Vec<u32>,
    /// Computational weight.
    pub weight: u32,
}

/// A reduction problem: tasks over `num_inputs` inputs and `num_outputs`
/// outputs, with optional pre-assigned element placements.
#[derive(Debug, Clone)]
pub struct ReductionProblem {
    /// Number of input elements.
    pub num_inputs: u32,
    /// Number of output elements.
    pub num_outputs: u32,
    /// The atomic tasks.
    pub tasks: Vec<Task>,
    /// `input_owner[i] != u32::MAX` pre-assigns input `i` to a processor.
    pub input_owner: Vec<u32>,
    /// `output_owner[o] != u32::MAX` pre-assigns output `o`.
    pub output_owner: Vec<u32>,
}

/// Free (not pre-assigned) marker.
pub const UNASSIGNED: u32 = u32::MAX;

/// Result of decomposing a reduction problem.
#[derive(Debug, Clone)]
pub struct ReductionDecomposition {
    /// Processor of each task.
    pub task_owner: Vec<u32>,
    /// Processor of each input element (pre-assignments preserved).
    pub input_owner: Vec<u32>,
    /// Processor of each output element.
    pub output_owner: Vec<u32>,
    /// Words sent distributing inputs (expand).
    pub expand_volume: u64,
    /// Words sent accumulating outputs (fold).
    pub fold_volume: u64,
    /// Percent task-weight imbalance.
    pub imbalance_percent: f64,
}

impl ReductionProblem {
    /// A problem with no pre-assignments.
    pub fn new(num_inputs: u32, num_outputs: u32, tasks: Vec<Task>) -> Self {
        ReductionProblem {
            num_inputs,
            num_outputs,
            tasks,
            input_owner: vec![UNASSIGNED; num_inputs as usize],
            output_owner: vec![UNASSIGNED; num_outputs as usize],
        }
    }

    /// Validates element ids.
    pub fn validate(&self) -> Result<()> {
        for (t, task) in self.tasks.iter().enumerate() {
            if let Some(&i) = task.inputs.iter().find(|&&i| i >= self.num_inputs) {
                return Err(ModelError::Invalid(format!(
                    "task {t}: input {i} out of range"
                )));
            }
            if let Some(&o) = task.outputs.iter().find(|&&o| o >= self.num_outputs) {
                return Err(ModelError::Invalid(format!(
                    "task {t}: output {o} out of range"
                )));
            }
        }
        Ok(())
    }

    /// Decomposes the reduction over `k` processors with the fine-grain
    /// model. Pre-assigned elements become fixed part vertices.
    pub fn decompose(&self, k: u32, cfg: &PartitionConfig) -> Result<ReductionDecomposition> {
        self.validate()?;
        if k == 0 {
            return Err(ModelError::Invalid("K must be >= 1".into()));
        }
        let nt = self.tasks.len() as u32; // lint: checked-cast — task count <= nnz, u32-bounded

        let mut builder = HypergraphBuilder::new();
        for task in &self.tasks {
            builder.add_vertex(task.weight);
        }
        // Part vertices (zero weight) for processors referenced by
        // pre-assignments; fixed to their part during partitioning.
        let has_preassign = self
            .input_owner
            .iter()
            .chain(&self.output_owner)
            .any(|&p| p != UNASSIGNED);
        let mut part_vertex = vec![u32::MAX; k as usize];
        let mut fixed: Vec<u32> = vec![UNASSIGNED; nt as usize];
        if has_preassign {
            for p in 0..k {
                let v = builder.add_vertex(0);
                part_vertex[p as usize] = v;
                fixed.push(p);
            }
        }

        // Input nets then output nets.
        let mut input_pins: Vec<Vec<u32>> = vec![Vec::new(); self.num_inputs as usize];
        let mut output_pins: Vec<Vec<u32>> = vec![Vec::new(); self.num_outputs as usize];
        for (t, task) in self.tasks.iter().enumerate() {
            for &i in &task.inputs {
                input_pins[i as usize].push(t as u32); // lint: checked-cast — t < task count, u32-bounded
            }
            for &o in &task.outputs {
                output_pins[o as usize].push(t as u32); // lint: checked-cast — t < task count, u32-bounded
            }
        }
        for (i, mut pins) in input_pins.into_iter().enumerate() {
            let owner = self.input_owner[i];
            if owner != UNASSIGNED {
                pins.push(part_vertex[owner as usize]);
            }
            builder.add_net(pins);
        }
        for (o, mut pins) in output_pins.into_iter().enumerate() {
            let owner = self.output_owner[o];
            if owner != UNASSIGNED {
                pins.push(part_vertex[owner as usize]);
            }
            builder.add_net(pins);
        }

        let hg = builder.build()?;
        let result = partition_hypergraph_fixed(
            &hg,
            k,
            if has_preassign { Some(&fixed) } else { None },
            cfg,
        )?;
        let partition = &result.partition;

        let task_owner: Vec<u32> = (0..nt).map(|t| partition.part(t)).collect();

        // Element placement: pre-assignment wins; free elements go to any
        // connected part (first of Λ; cost λ−1 either way), defaulting to
        // part 0 for untouched elements.
        let sets = connectivity_sets(&hg, partition);
        let ni = self.num_inputs as usize;
        let mut input_owner = Vec::with_capacity(ni);
        let mut expand_volume = 0u64;
        for (i, set) in sets.iter().enumerate().take(ni) {
            let owner = if self.input_owner[i] != UNASSIGNED {
                self.input_owner[i]
            } else {
                set.first().copied().unwrap_or(0)
            };
            let lambda = set.len() as u64;
            expand_volume += if set.contains(&owner) {
                lambda - 1
            } else {
                lambda
            };
            input_owner.push(owner);
        }
        let mut output_owner = Vec::with_capacity(self.num_outputs as usize);
        let mut fold_volume = 0u64;
        for o in 0..self.num_outputs as usize {
            let set = &sets[ni + o];
            let owner = if self.output_owner[o] != UNASSIGNED {
                self.output_owner[o]
            } else {
                set.first().copied().unwrap_or(0)
            };
            let lambda = set.len() as u64;
            fold_volume += if set.contains(&owner) {
                lambda - 1
            } else {
                lambda
            };
            output_owner.push(owner);
        }

        Ok(ReductionDecomposition {
            task_owner,
            input_owner,
            output_owner,
            expand_volume,
            fold_volume,
            imbalance_percent: result.imbalance_percent,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two groups of tasks sharing inputs within each group, one shared
    /// input across groups.
    fn sample() -> ReductionProblem {
        let mut tasks = Vec::new();
        for t in 0..8u32 {
            let group = t / 4;
            tasks.push(Task {
                inputs: vec![group * 2, group * 2 + 1, 4], // input 4 shared
                outputs: vec![t / 2],
                weight: 1,
            });
        }
        ReductionProblem::new(5, 4, tasks)
    }

    #[test]
    fn validate_catches_bad_ids() {
        let mut p = sample();
        p.tasks[0].inputs.push(99);
        assert!(p.validate().is_err());
    }

    #[test]
    fn decompose_balances_tasks() {
        let p = sample();
        let d = p.decompose(2, &PartitionConfig::with_seed(1)).unwrap();
        let c0 = d.task_owner.iter().filter(|&&o| o == 0).count();
        assert_eq!(c0, 4, "8 unit tasks over 2 parts");
        assert!(d.imbalance_percent <= 1e-9);
        // The shared input 4 must be expanded to the other part: >= 1 word.
        assert!(d.expand_volume >= 1);
    }

    #[test]
    fn preassigned_inputs_fix_owner() {
        let mut p = sample();
        p.input_owner[0] = 1;
        p.output_owner[3] = 0;
        let d = p.decompose(2, &PartitionConfig::with_seed(2)).unwrap();
        assert_eq!(d.input_owner[0], 1);
        assert_eq!(d.output_owner[3], 0);
    }

    #[test]
    fn k1_no_communication() {
        let p = sample();
        let d = p.decompose(1, &PartitionConfig::default()).unwrap();
        assert_eq!(d.expand_volume, 0);
        assert_eq!(d.fold_volume, 0);
    }

    #[test]
    fn free_elements_land_on_connected_parts() {
        let p = sample();
        let d = p.decompose(2, &PartitionConfig::with_seed(3)).unwrap();
        // Input 0 is used only by group-0 tasks; its owner must be the
        // part holding those tasks.
        let group0_part = d.task_owner[0];
        assert!(d.task_owner[..4].iter().all(|&o| o == group0_part));
        assert_eq!(d.input_owner[0], group0_part);
    }

    #[test]
    fn spmv_as_reduction_matches_fine_grain_semantics() {
        // y = Ax for a 2x2 dense matrix: 4 tasks, input j, output i.
        let tasks = vec![
            Task {
                inputs: vec![0],
                outputs: vec![0],
                weight: 1,
            },
            Task {
                inputs: vec![1],
                outputs: vec![0],
                weight: 1,
            },
            Task {
                inputs: vec![0],
                outputs: vec![1],
                weight: 1,
            },
            Task {
                inputs: vec![1],
                outputs: vec![1],
                weight: 1,
            },
        ];
        let p = ReductionProblem::new(2, 2, tasks);
        let d = p.decompose(2, &PartitionConfig::with_seed(4)).unwrap();
        // Perfect balance; total comm = expand + fold must be exactly the
        // connectivity-1 cutsize of the 4-vertex model, which is 2 for any
        // balanced split of a dense 2x2 (each cut net costs 1).
        assert_eq!(d.task_owner.iter().filter(|&&o| o == 0).count(), 2);
        assert!(d.expand_volume + d.fold_volume >= 2);
    }
}
