//! One-call decomposition API: pick a model, get a decomposition plus its
//! exact communication statistics and timing — the loop body of the
//! paper's Table-2 experiment.
//!
//! The entry points come in two flavors:
//!
//! * [`decompose`] — width-generic: callers holding a `CsrMatrix<u32>`
//!   (the fast path, every catalog matrix) or a `CsrMatrix<u64>` (the big
//!   path) call it directly and monomorphize to that width.
//! * [`decompose_any`] — width-erased: consumes an [`AnyCsrMatrix`] (as
//!   produced by streaming Matrix Market input), auto-upgrading a `u32`
//!   carrier to `u64` when the fine-grain hypergraph would overflow
//!   32-bit ids. The CLI uses this and never names an index width.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fgh_graph::partition_graph_best_traced_in;
use fgh_partition::{
    partition_hypergraph_best_traced_in, ArenaIndex, ArenaPool, Budget, CancelToken, EngineStats,
    InitialScheme, Parallelism, PartitionConfig,
};
use fgh_sparse::{AnyCsrMatrix, CsrMatrix, IndexType, IndexWidth};
use fgh_trace::{SpanHandle, Trace, Tracer};

use crate::decomp::Decomposition;
use crate::metrics::CommStats;
use crate::models::{
    CheckerboardHgModel, CheckerboardModel, ColumnNetModel, FineGrainModel, JaggedModel,
    MondriaanModel, RowNetModel, StandardGraphModel,
};
use crate::status::{DecompositionStatus, DegradedReason};
use crate::{FghError, ModelError};

/// The index widths [`decompose`] runs at. Sealed by construction: it
/// extends [`ArenaIndex`] (itself sealed), and only `u32` / `u64`
/// implement it.
///
/// The one width-dependent capability lives here: the composite 2D models
/// ([`Model::Checkerboard2D`], [`Model::Mondriaan2D`], [`Model::Jagged2D`],
/// [`Model::CheckerboardHg2D`]) are `u32`-only, and
/// [`DecomposeIndex::as_u32_matrix`] is the zero-cost evidence check —
/// `Some` (the identity) on the fast path, `None` (→
/// [`FghError::UnsupportedWidth`]) on the big path. No conversion is ever
/// performed behind the caller's back.
pub trait DecomposeIndex: ArenaIndex {
    /// Runtime tag for this width, stamped into
    /// [`DecompositionOutcome::width`].
    const WIDTH: IndexWidth;

    /// `Some(a)` iff `Self` is `u32` (a zero-cost identity), `None` on
    /// the big-index path.
    fn as_u32_matrix(a: &CsrMatrix<Self>) -> Option<&CsrMatrix<u32>>;
}

impl DecomposeIndex for u32 {
    const WIDTH: IndexWidth = IndexWidth::U32;

    fn as_u32_matrix(a: &CsrMatrix<u32>) -> Option<&CsrMatrix<u32>> {
        Some(a)
    }
}

impl DecomposeIndex for u64 {
    const WIDTH: IndexWidth = IndexWidth::U64;

    fn as_u32_matrix(_a: &CsrMatrix<u64>) -> Option<&CsrMatrix<u32>> {
        None
    }
}

/// Which decomposition model to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// 1D row-wise decomposition via the standard graph model (MeTiS-style
    /// baseline).
    Graph1D,
    /// 1D row-wise decomposition via the column-net hypergraph model
    /// (TPDS'99 baseline).
    Hypergraph1DColNet,
    /// 1D column-wise decomposition via the row-net hypergraph model.
    Hypergraph1DRowNet,
    /// 2D decomposition via the fine-grain hypergraph model (the paper's
    /// contribution).
    FineGrain2D,
    /// 2D block-checkerboard decomposition on a near-square processor
    /// grid — the pre-existing 2D scheme of §1, with structured
    /// communication but no volume minimization. Included as an ablation
    /// baseline.
    Checkerboard2D,
    /// Mondriaan-style recursive matrix bisection with per-step direction
    /// choice (row vs column 1D model) — the paper's best-known follow-on,
    /// included as a forward-looking comparison point.
    Mondriaan2D,
    /// Jagged 2D decomposition: volume-minimized row stripes, then
    /// independent per-stripe column groupings — the intermediate point of
    /// the jagged/checkerboard/fine-grain 2D taxonomy.
    Jagged2D,
    /// Coarse-grain checkerboard *hypergraph* decomposition (the
    /// companion IPDPS 2001 paper): volume-minimized row stripes, then a
    /// single multi-constraint column grouping shared by all stripes.
    CheckerboardHg2D,
    /// Fine-grain SpGEMM decomposition (`C = A · B`): one vertex per
    /// multiply task `a_ik · b_kj`, nets modeling A-row reuse, B-column
    /// reuse, and the C fold. The only model for
    /// [`crate::Workload::Spgemm`] inputs — SpMV entry points reject it.
    SpgemmFineGrain,
}

/// The workload family a [`Model`] decomposes — the coupling between a
/// config's model and the [`crate::Workload`] variant it accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// `y = A x`: one square matrix.
    Spmv,
    /// `C = A · B`: a conformable matrix pair.
    Spgemm,
}

impl WorkloadKind {
    /// Stable lowercase name (used by the metrics document and the serve
    /// protocol).
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::Spmv => "spmv",
            WorkloadKind::Spgemm => "spgemm",
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl Model {
    /// Every model, in the canonical presentation order of the paper's
    /// tables (1D baselines first, then the 2D schemes, then the SpGEMM
    /// extension). The single source of truth for "all models" sweeps —
    /// the CLI's `compare` command and the metrics tests iterate this
    /// array (filtering by [`Model::workload`] where only one workload
    /// family applies).
    pub const ALL: [Model; 9] = [
        Model::Graph1D,
        Model::Hypergraph1DColNet,
        Model::Hypergraph1DRowNet,
        Model::FineGrain2D,
        Model::Checkerboard2D,
        Model::Mondriaan2D,
        Model::Jagged2D,
        Model::CheckerboardHg2D,
        Model::SpgemmFineGrain,
    ];

    /// Short display name as used in the paper's tables. Each name parses
    /// back via [`Model::from_str`].
    pub fn name(&self) -> &'static str {
        match self {
            Model::Graph1D => "graph-1d",
            Model::Hypergraph1DColNet => "hypergraph-1d-colnet",
            Model::Hypergraph1DRowNet => "hypergraph-1d-rownet",
            Model::FineGrain2D => "fine-grain-2d",
            Model::Checkerboard2D => "checkerboard-2d",
            Model::Mondriaan2D => "mondriaan-2d",
            Model::Jagged2D => "jagged-2d",
            Model::CheckerboardHg2D => "checkerboard-hg-2d",
            Model::SpgemmFineGrain => "spgemm-fine-grain",
        }
    }

    /// The workload family this model decomposes. Every SpMV model
    /// rejects a SpGEMM workload and vice versa — the check lives in the
    /// workload entry points, typed as [`crate::FghError::InvalidInput`].
    pub fn workload(&self) -> WorkloadKind {
        match self {
            Model::SpgemmFineGrain => WorkloadKind::Spgemm,
            _ => WorkloadKind::Spmv,
        }
    }

    /// `true` for the models that run at either index width (the
    /// engine-backed single-partition models). The composite 2D models are
    /// `u32`-only.
    pub fn supports_wide_indices(&self) -> bool {
        matches!(
            self,
            Model::Graph1D
                | Model::Hypergraph1DColNet
                | Model::Hypergraph1DRowNet
                | Model::FineGrain2D
                | Model::SpgemmFineGrain
        )
    }
}

impl std::fmt::Display for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Model {
    type Err = String;

    /// Parses a model from its canonical [`Model::name`], accepting the
    /// historical CLI aliases (`graph`, `colnet`, `rownet`, `finegrain`,
    /// `fine-grain`, `checkerboard`, `mondriaan`, `jagged`,
    /// `checkerboard-hg`, `spgemm`) case-insensitively.
    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        let m = match lower.as_str() {
            "graph" | "graph-1d" => Model::Graph1D,
            "colnet" | "hypergraph-1d-colnet" => Model::Hypergraph1DColNet,
            "rownet" | "hypergraph-1d-rownet" => Model::Hypergraph1DRowNet,
            "finegrain" | "fine-grain" | "fine-grain-2d" => Model::FineGrain2D,
            "checkerboard" | "checkerboard-2d" => Model::Checkerboard2D,
            "mondriaan" | "mondriaan-2d" => Model::Mondriaan2D,
            "jagged" | "jagged-2d" => Model::Jagged2D,
            "checkerboard-hg" | "checkerboard-hg-2d" => Model::CheckerboardHg2D,
            "spgemm" | "spgemm-fine-grain" => Model::SpgemmFineGrain,
            _ => {
                return Err(format!(
                    "unknown model '{s}' (expected one of: {})",
                    Model::ALL.map(|m| m.name()).join(", ")
                ))
            }
        };
        Ok(m)
    }
}

/// Configuration for [`decompose`].
#[derive(Debug, Clone)]
pub struct DecomposeConfig {
    /// The decomposition model.
    pub model: Model,
    /// Number of processors K.
    pub k: u32,
    /// Maximum load imbalance ε (the paper uses 3%).
    pub epsilon: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Independent partitioner runs; the best balanced result is kept
    /// (the paper averages over 50 runs; see the bench harness for the
    /// averaging protocol).
    pub runs: usize,
    /// Resource budget for the partitioner. When a limit trips, the best
    /// partition found so far is returned, the truncation is recorded in
    /// [`DecompositionOutcome::engine`], and the outcome is tagged
    /// [`DecompositionStatus::Degraded`].
    pub budget: Budget,
    /// Thread fan-out for the partitioner. [`Parallelism::Serial`] and
    /// multi-threaded modes produce bit-identical decompositions; threads
    /// change wall-clock time only.
    pub parallelism: Parallelism,
    /// Record a structured execution trace: per-phase spans (model build,
    /// coarsening levels, initial partitioning, FM passes, decode) with
    /// monotonic timings and engine counters, surfaced as
    /// [`DecompositionOutcome::trace`]. Off by default; tracing never
    /// changes the decomposition, only observes it.
    pub trace: bool,
    /// Cooperative cancellation: when a token is attached and tripped,
    /// the partitioner stops at its next multilevel checkpoint, the best
    /// partition found so far is decoded, and the outcome is tagged
    /// [`DecompositionStatus::Degraded`] with
    /// [`DegradedReason::Cancelled`]. `None` (the default) disables
    /// polling.
    pub cancel: Option<CancelToken>,
    /// Initial-partitioning scheme at the coarsest level. The default is
    /// [`InitialScheme::Ghg`] (greedy hypergraph growing, the paper's
    /// scheme). [`InitialScheme::Geometric`] / [`InitialScheme::Auto`]
    /// seed each bisection with a longest-axis cut through the nonzero
    /// coordinates of the fine-grain model; models without natural
    /// vertex coordinates fall back to GHG.
    pub initial: InitialScheme,
}

impl DecomposeConfig {
    /// A config for the given model and K with paper defaults.
    pub fn new(model: Model, k: u32) -> Self {
        DecomposeConfig {
            model,
            k,
            epsilon: 0.03,
            seed: 1,
            runs: 1,
            budget: Budget::UNLIMITED,
            parallelism: Parallelism::Auto,
            trace: false,
            cancel: None,
            initial: InitialScheme::Ghg,
        }
    }

    /// The same config with a resource budget attached.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The same config with a thread fan-out policy attached. Results are
    /// bit-identical across policies; only wall-clock time changes.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The same config with a different base RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The same config running `runs` independent partitioner seeds,
    /// keeping the best balanced result.
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// The same config with a different balance tolerance ε.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// The same config with trace recording switched on or off (see
    /// [`DecomposeConfig::trace`]).
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// The same config with a cancellation token attached (see
    /// [`DecomposeConfig::cancel`]).
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// The same config with a different initial-partitioning scheme (see
    /// [`DecomposeConfig::initial`]).
    pub fn with_initial(mut self, initial: InitialScheme) -> Self {
        self.initial = initial;
        self
    }

    /// The [`PartitionConfig`] every engine-backed model runs under: the
    /// request's ε, seed, budget, parallelism, and cancel token carry
    /// over, everything else keeps the partitioner's defaults. The single
    /// source of truth for the config translation (each model arm used to
    /// spell out this struct by hand).
    pub fn partition_config(&self) -> PartitionConfig {
        PartitionConfig {
            epsilon: self.epsilon,
            seed: self.seed,
            budget: self.budget,
            parallelism: self.parallelism,
            cancel: self.cancel.clone(),
            initial: self.initial,
            ..Default::default()
        }
    }
}

/// The result of a decomposition: the mapping, its exact communication
/// statistics, the model's internal objective value, and wall-clock time.
#[derive(Debug, Clone)]
pub struct DecompositionOutcome {
    /// The decoded decomposition.
    pub decomposition: Decomposition,
    /// Exact communication statistics (ground truth for every model).
    pub stats: CommStats,
    /// The objective the partitioner minimized: edge cut for
    /// [`Model::Graph1D`], connectivity−1 cutsize for hypergraph models.
    pub objective: u64,
    /// Partitioning wall-clock time (model build + partitioning + decode).
    pub elapsed: Duration,
    /// Full or degraded, with the reason when degraded.
    pub status: DecompositionStatus,
    /// The index width the decomposition ran at: `U32` for the fast path,
    /// `U64` for the big path (via [`decompose_any`]'s auto-upgrade or a
    /// caller's own wide matrix).
    pub width: IndexWidth,
    /// Multilevel engine statistics, including budget-truncation counters.
    /// For the single-partition models this is the winning run's stats;
    /// for the composite models ([`Model::Mondriaan2D`],
    /// [`Model::Jagged2D`], [`Model::CheckerboardHg2D`]) it is the
    /// **aggregate** over every internal engine run (merged counters —
    /// [`Model::CheckerboardHg2D`]'s phase-2 multi-constraint partitioner
    /// reports its placement and refinement work in the same vocabulary,
    /// with coarsening counters untouched). Zeroed
    /// only for [`Model::Checkerboard2D`], which builds its decomposition
    /// directly without any partitioner.
    pub engine: EngineStats,
    /// Structured execution trace, recorded when
    /// [`DecomposeConfig::trace`] was set: a tree of per-phase spans
    /// (monotonic start + duration, engine counters) rooted at
    /// `decompose`. `None` when tracing was off.
    pub trace: Option<Trace>,
}

impl DecompositionOutcome {
    /// Strict-mode check: returns the outcome unchanged when
    /// [`DecompositionStatus::Full`], otherwise converts the degradation
    /// into a typed error — [`FghError::BudgetExhausted`] when a budget
    /// limit truncated the run, [`FghError::Cancelled`] when a cancel
    /// token stopped it, [`FghError::Infeasible`] otherwise.
    pub fn into_strict(self) -> std::result::Result<Self, FghError> {
        match &self.status {
            DecompositionStatus::Full => Ok(self),
            DecompositionStatus::Degraded { reason } => match reason {
                DegradedReason::BudgetExhausted { .. } => {
                    Err(FghError::BudgetExhausted(reason.to_string()))
                }
                DegradedReason::Cancelled => Err(FghError::Cancelled(reason.to_string())),
                _ => Err(FghError::Infeasible(reason.to_string())),
            },
        }
    }
}

/// Best-effort fallback for degenerate inputs the models cannot handle
/// (e.g. `K` larger than the number of partitionable units): round-robin
/// nonzeros across processors, vector entries following the first nonzero
/// of their column where one exists. Valid by construction, never balanced
/// cleverly — callers tag the outcome [`DecompositionStatus::Degraded`].
fn best_effort_round_robin<I: IndexType>(
    a: &CsrMatrix<I>,
    k: u32,
) -> std::result::Result<Decomposition, FghError> {
    let n = a.nrows().index();
    let mut vec_owner: Vec<u32> = (0..n)
        .map(|j| (j % k as usize) as u32) // lint: checked-cast — value < k, a u32
        .collect();
    let mut nonzero_owner = Vec::with_capacity(a.nnz());
    let mut col_seen = vec![false; n];
    for (e, (_, j, _)) in a.iter().enumerate() {
        let owner = (e % k as usize) as u32; // lint: checked-cast — value < k, a u32
        nonzero_owner.push(owner);
        let ju = j.index();
        if !col_seen[ju] {
            col_seen[ju] = true;
            vec_owner[ju] = owner;
        }
    }
    Ok(Decomposition::general(a, k, nonzero_owner, vec_owner)?)
}

/// Status attribution shared by the SpMV and SpGEMM pipelines: a forced
/// reason (degenerate input) wins, then cancellation, then budget
/// truncation, then a missed balance target. The balance tolerance adds
/// one work unit of slack (`100·K / work_units` percent) on top of ε —
/// integer loads cannot hit a fractional average exactly, and that
/// granularity is not a degradation. Cancellation wins the attribution
/// over budget truncation: a cancelled run is reported as cancelled, not
/// a budget accident.
pub(crate) fn degradation_status(
    forced_reason: Option<DegradedReason>,
    engine: &EngineStats,
    cfg: &DecomposeConfig,
    imbalance: f64,
    work_units: u64,
) -> DecompositionStatus {
    let allowed = cfg.epsilon * 100.0 + 100.0 * cfg.k as f64 / work_units.max(1) as f64 + 1e-9;
    if let Some(reason) = forced_reason {
        DecompositionStatus::Degraded { reason }
    } else if engine.cancelled() {
        DecompositionStatus::Degraded {
            reason: DegradedReason::Cancelled,
        }
    } else if engine.truncated() {
        DecompositionStatus::Degraded {
            reason: DegradedReason::BudgetExhausted {
                wall: engine.wall_truncations,
                levels: engine.level_truncations,
                fm_passes: engine.fm_truncations,
                bytes: engine.byte_truncations,
            },
        }
    } else if imbalance > allowed {
        DecompositionStatus::Degraded {
            reason: DegradedReason::BalanceInfeasible {
                epsilon: cfg.epsilon,
                achieved_percent: imbalance,
            },
        }
    } else {
        DecompositionStatus::Full
    }
}

/// Downcast evidence for the `u32`-only composite models: `Some` on the
/// fast path, a typed [`FghError::UnsupportedWidth`] on the big path.
fn require_u32<I: DecomposeIndex>(
    a: &CsrMatrix<I>,
    model: Model,
) -> std::result::Result<&CsrMatrix<u32>, FghError> {
    I::as_u32_matrix(a).ok_or(FghError::UnsupportedWidth {
        model: model.name(),
        width: I::WIDTH,
    })
}

/// Decomposes `a` for parallel SpMV on `cfg.k` processors with the chosen
/// model and returns the decomposition plus its statistics.
///
/// Generic over the index width: `CsrMatrix<u32>` (the default, every
/// catalog matrix) monomorphizes to the fast path; `CsrMatrix<u64>` runs
/// the same engine-backed models at 64-bit ids. Width-erased callers use
/// [`decompose_any`].
///
/// # Failure semantics
///
/// * Malformed requests (`K = 0`, non-finite or negative ε, a
///   non-square matrix) return a typed [`FghError`] — never a panic.
/// * The composite 2D models on a `u64` matrix return
///   [`FghError::UnsupportedWidth`] (see [`Model::supports_wide_indices`]).
/// * Pathological-but-valid inputs (empty matrix, `K > nnz`) return a
///   best-effort decomposition tagged [`DecompositionStatus::Degraded`].
/// * When [`DecomposeConfig::budget`] trips (wall clock, level, FM-pass,
///   or byte caps), the best partition found so far is returned, the
///   truncation is visible in [`DecompositionOutcome::engine`], and the
///   outcome is `Degraded` — never an OOM abort. Strict callers reject
///   these via [`DecompositionOutcome::into_strict`].
#[deprecated(note = "use decompose_workload with Workload::Spmv")]
pub fn decompose<I: DecomposeIndex>(
    a: &CsrMatrix<I>,
    cfg: &DecomposeConfig,
) -> std::result::Result<DecompositionOutcome, FghError> {
    crate::workload::decompose_workload(crate::workload::Workload::Spmv(a), cfg)
        .and_then(crate::workload::WorkloadOutcome::into_spmv)
}

/// [`decompose`] drawing all partitioner scratch arenas from a
/// caller-supplied [`ArenaPool`] — the session-reuse entry point behind
/// [`crate::session::EngineSession`]. A long-lived caller passes the same
/// pool to every request so warm buffers survive across whole
/// decompositions; the engine-backed models benefit, the composite 2D
/// models keep run-internal pools.
///
/// Deprecated shim: delegates to [`crate::decompose_workload_in`] with a
/// [`crate::Workload::Spmv`] workload (parity-tested bit-for-bit).
#[deprecated(note = "use decompose_workload_in with Workload::Spmv")]
pub fn decompose_in<I: DecomposeIndex>(
    a: &CsrMatrix<I>,
    cfg: &DecomposeConfig,
    pool: &Arc<ArenaPool>,
) -> std::result::Result<DecompositionOutcome, FghError> {
    crate::workload::decompose_workload_in(crate::workload::Workload::Spmv(a), cfg, pool)
        .and_then(crate::workload::WorkloadOutcome::into_spmv)
}

/// The SpMV pipeline — the body behind [`crate::Workload::Spmv`] (and,
/// through it, the deprecated [`decompose`] / [`decompose_in`] shims).
pub(crate) fn spmv_pipeline_in<I: DecomposeIndex>(
    a: &CsrMatrix<I>,
    cfg: &DecomposeConfig,
    pool: &Arc<ArenaPool>,
) -> std::result::Result<DecompositionOutcome, FghError> {
    if cfg.model.workload() != WorkloadKind::Spmv {
        return Err(FghError::InvalidInput(format!(
            "model {} decomposes a {} workload, not SpMV",
            cfg.model.name(),
            cfg.model.workload()
        )));
    }
    if cfg.k == 0 {
        return Err(FghError::InvalidInput("K must be >= 1".into()));
    }
    if !cfg.epsilon.is_finite() || cfg.epsilon < 0.0 {
        return Err(FghError::InvalidInput(format!(
            "epsilon must be finite and >= 0, got {}",
            cfg.epsilon
        )));
    }
    if !a.is_square() {
        return Err(FghError::Model(ModelError::NotSquare {
            nrows: a.nrows().as_u64(),
            ncols: a.ncols().as_u64(),
        }));
    }
    // Tracing observes the same window `elapsed` measures: the root
    // `decompose` span opens at `start` and closes right after the model
    // finishes (statistics computation is outside both).
    let (tracer, sink) = if cfg.trace {
        let (t, s) = Tracer::collecting();
        (t, Some(s))
    } else {
        (Tracer::disabled(), None)
    };
    let start = Instant::now();
    let root = tracer.span("decompose");

    // Degenerate inputs are served a trivial decomposition up front rather
    // than fed to partitioners that assume at least one unit of work.
    if a.nnz() == 0 {
        let decomposition = Decomposition::rowwise(a, cfg.k, vec![0; a.nrows().index()])?;
        let elapsed = start.elapsed();
        drop(root);
        let stats = CommStats::compute(a, &decomposition)?;
        return Ok(DecompositionOutcome {
            decomposition,
            stats,
            objective: 0,
            elapsed,
            status: DecompositionStatus::Degraded {
                reason: DegradedReason::EmptyMatrix,
            },
            width: I::WIDTH,
            engine: EngineStats::default(),
            trace: sink.map(|s| s.build_trace()),
        });
    }
    let mut forced_reason: Option<DegradedReason> = None;
    if cfg.k as u64 > a.nnz() as u64 {
        forced_reason = Some(DegradedReason::DegenerateK {
            k: cfg.k,
            nnz: a.nnz() as u64,
            fallback: None,
        });
    }

    let attempt = decompose_with_model(a, cfg, pool, &root.handle());
    let (decomposition, objective, engine) = match attempt {
        Ok(t) => t,
        Err(e) if forced_reason.is_some() => {
            // The model choked on the degenerate K; fall back instead of
            // failing, keeping the reason visible.
            forced_reason = Some(DegradedReason::DegenerateK {
                k: cfg.k,
                nnz: a.nnz() as u64,
                fallback: Some(format!(
                    "{} failed on degenerate input: {e}",
                    cfg.model.name()
                )),
            });
            let d = best_effort_round_robin(a, cfg.k)?;
            let vol = CommStats::compute(a, &d)?.total_volume();
            (d, vol, EngineStats::default())
        }
        Err(e) => return Err(e),
    };
    let elapsed = start.elapsed();
    drop(root);
    let trace = sink.map(|s| s.build_trace());
    let stats = CommStats::compute(a, &decomposition)?;

    let status = degradation_status(
        forced_reason,
        &engine,
        cfg,
        stats.load_imbalance_percent(),
        a.nnz() as u64,
    );
    Ok(DecompositionOutcome {
        decomposition,
        stats,
        objective,
        elapsed,
        status,
        width: I::WIDTH,
        engine,
        trace,
    })
}

/// [`decompose`] over a width-erased carrier, choosing the index width
/// automatically:
///
/// * a `u64` carrier runs the big path directly;
/// * a `u32` carrier normally runs the fast path, but is upgraded to
///   `u64` first when [`IndexWidth::select`] says the fine-grain
///   hypergraph (nnz + dummies vertices, `2M` nets) would overflow
///   32-bit ids — the matrix itself fitting `u32` is not sufficient;
/// * building with the `force-u64` cargo feature upgrades every carrier,
///   which CI uses to route the whole test suite through the big path.
///
/// [`DecompositionOutcome::width`] records which path actually ran.
#[deprecated(note = "use decompose_workload_any with WorkloadAny::Spmv")]
pub fn decompose_any(
    a: &AnyCsrMatrix,
    cfg: &DecomposeConfig,
) -> std::result::Result<DecompositionOutcome, FghError> {
    crate::workload::decompose_workload_any(crate::workload::WorkloadAny::Spmv(a), cfg)
        .and_then(crate::workload::WorkloadOutcome::into_spmv)
}

/// [`decompose_any`] drawing partitioner scratch from a caller-supplied
/// [`ArenaPool`] — see [`decompose_in`].
///
/// Deprecated shim: delegates to [`crate::decompose_workload_any_in`]
/// with a [`crate::WorkloadAny::Spmv`] workload.
#[deprecated(note = "use decompose_workload_any_in with WorkloadAny::Spmv")]
pub fn decompose_any_in(
    a: &AnyCsrMatrix,
    cfg: &DecomposeConfig,
    pool: &Arc<ArenaPool>,
) -> std::result::Result<DecompositionOutcome, FghError> {
    crate::workload::decompose_workload_any_in(crate::workload::WorkloadAny::Spmv(a), cfg, pool)
        .and_then(crate::workload::WorkloadOutcome::into_spmv)
}

/// The width-erased SpMV pipeline: [`IndexWidth::select`]-driven
/// auto-upgrade in front of [`spmv_pipeline_in`].
pub(crate) fn spmv_pipeline_any_in(
    a: &AnyCsrMatrix,
    cfg: &DecomposeConfig,
    pool: &Arc<ArenaPool>,
) -> std::result::Result<DecompositionOutcome, FghError> {
    let needed = IndexWidth::select(a.nrows(), a.ncols(), a.nnz() as u64);
    let force_wide = cfg!(feature = "force-u64");
    match a {
        AnyCsrMatrix::U64(m) => spmv_pipeline_in(m, cfg, pool),
        AnyCsrMatrix::U32(m) => {
            if needed == IndexWidth::U64 || force_wide {
                let wide: CsrMatrix<u64> = m.convert_width()?;
                spmv_pipeline_in(&wide, cfg, pool)
            } else {
                spmv_pipeline_in(m, cfg, pool)
            }
        }
    }
}

/// Runs the configured model, returning the decoded decomposition, the
/// model's objective value, and the engine statistics where available.
/// Under an enabled `scope`, the phases record as `model-build` /
/// `partition` / `decode` child spans (plus `objective` for the models
/// whose reported objective is a separate exact-volume computation).
fn decompose_with_model<I: DecomposeIndex>(
    a: &CsrMatrix<I>,
    cfg: &DecomposeConfig,
    pool: &Arc<ArenaPool>,
    scope: &SpanHandle,
) -> std::result::Result<(Decomposition, u64, EngineStats), FghError> {
    let mut pcfg = cfg.partition_config();
    let out = match cfg.model {
        Model::Graph1D => {
            let mb = scope.child("model-build");
            let model = StandardGraphModel::build(a)?;
            drop(mb);
            let ps = scope.child("partition");
            let r = partition_graph_best_traced_in(
                model.graph(),
                cfg.k,
                &pcfg,
                cfg.runs,
                pool,
                &ps.handle(),
            )?;
            drop(ps);
            let ds = scope.child("decode");
            let d = model.decode(a, cfg.k, &r.parts)?;
            drop(ds);
            (d, r.edge_cut, r.stats)
        }
        Model::Hypergraph1DColNet => {
            let model = build_spanned(scope, || ColumnNetModel::build(a))?;
            hypergraph_arm(cfg, &pcfg, pool, scope, model.hypergraph(), |r| {
                model.decode(a, &r.partition)
            })?
        }
        Model::Hypergraph1DRowNet => {
            let model = build_spanned(scope, || RowNetModel::build(a))?;
            hypergraph_arm(cfg, &pcfg, pool, scope, model.hypergraph(), |r| {
                model.decode(a, &r.partition)
            })?
        }
        Model::FineGrain2D => {
            let model = build_spanned(scope, || FineGrainModel::build(a))?;
            // Fine-grain vertices have natural (row, col) positions; hand
            // them to the partitioner only when the geometric / auto
            // scheme asks — the default GHG path stays allocation-free.
            if matches!(cfg.initial, InitialScheme::Geometric | InitialScheme::Auto) {
                let n = model.hypergraph().num_vertices().index();
                let coords: Vec<(f32, f32)> = (0..n)
                    .map(|v| {
                        let (r, c) = model.coords(I::from_index(v));
                        // lint: checked-cast — row/col ids as geometric positions; f32 rounding above 2^24 only nudges the sweep order, never indexes
                        (r.index() as f32, c.index() as f32)
                    })
                    .collect();
                pcfg.coords = Some(Arc::new(coords));
            }
            hypergraph_arm(cfg, &pcfg, pool, scope, model.hypergraph(), |r| {
                model.decode(a, &r.partition)
            })?
        }
        Model::Checkerboard2D => {
            // Direct construction — no partitioner and no communication
            // objective; its "objective" is reported as its true volume.
            let a32 = require_u32(a, cfg.model)?;
            let model = build_spanned(scope, || CheckerboardModel::build(a32, cfg.k))?;
            let ds = scope.child("decode");
            let d = model.decode(a32)?;
            drop(ds);
            let vol = objective_volume(a32, &d, scope)?;
            (d, vol, EngineStats::default())
        }
        Model::Mondriaan2D => {
            // The internal per-level cuts approximate volume (no
            // consistency pins in the directional hypergraphs), so the
            // reported objective is the exact decoded volume.
            let a32 = require_u32(a, cfg.model)?;
            let model = MondriaanModel::new(cfg.k, cfg.epsilon);
            let ps = scope.child("partition");
            let (d, stats) = model.decompose_traced(a32, &pcfg, &ps.handle())?;
            drop(ps);
            let vol = objective_volume(a32, &d, scope)?;
            (d, vol, stats)
        }
        Model::Jagged2D => {
            let a32 = require_u32(a, cfg.model)?;
            let model = JaggedModel::new(cfg.k, cfg.epsilon)?;
            let ps = scope.child("partition");
            let (d, stats) = model.decompose_traced(a32, &pcfg, &ps.handle())?;
            drop(ps);
            let vol = objective_volume(a32, &d, scope)?;
            (d, vol, stats)
        }
        Model::CheckerboardHg2D => {
            let a32 = require_u32(a, cfg.model)?;
            let model = CheckerboardHgModel::new(cfg.k, cfg.epsilon)?;
            let ps = scope.child("partition");
            let (d, stats) = model.decompose_traced(a32, &pcfg, &ps.handle())?;
            drop(ps);
            let vol = objective_volume(a32, &d, scope)?;
            (d, vol, stats)
        }
        // Unreachable: spmv_pipeline_in rejects SpGEMM-workload models
        // before dispatch; kept total rather than panicking.
        Model::SpgemmFineGrain => {
            return Err(FghError::InvalidInput(format!(
                "model {} decomposes a {} workload, not SpMV",
                cfg.model.name(),
                cfg.model.workload()
            )))
        }
    };
    Ok(out)
}

/// Runs a model-construction closure under a `model-build` span.
fn build_spanned<T, E>(
    scope: &SpanHandle,
    build: impl FnOnce() -> std::result::Result<T, E>,
) -> std::result::Result<T, E> {
    let _span = scope.child("model-build");
    build()
}

/// The shared partition + decode tail of the three 1D/2D hypergraph-model
/// arms: multi-seed partitioning under a `partition` span, decoding under
/// a `decode` span.
fn hypergraph_arm<I, D>(
    cfg: &DecomposeConfig,
    pcfg: &PartitionConfig,
    pool: &Arc<ArenaPool>,
    scope: &SpanHandle,
    hg: &fgh_hypergraph::Hypergraph<I>,
    decode: D,
) -> std::result::Result<(Decomposition, u64, EngineStats), FghError>
where
    I: ArenaIndex,
    D: FnOnce(&fgh_partition::PartitionResult) -> crate::Result<Decomposition>,
{
    let ps = scope.child("partition");
    let r = partition_hypergraph_best_traced_in(hg, cfg.k, pcfg, cfg.runs, pool, &ps.handle())?;
    drop(ps);
    let ds = scope.child("decode");
    let d = decode(&r)?;
    drop(ds);
    Ok((d, r.cutsize, r.stats))
}

/// Computes the exact decoded volume under an `objective` span — the
/// reported objective for the models whose internal cuts only
/// approximate communication volume.
fn objective_volume<I: IndexType>(
    a: &CsrMatrix<I>,
    d: &Decomposition,
    scope: &SpanHandle,
) -> std::result::Result<u64, FghError> {
    let _span = scope.child("objective");
    Ok(CommStats::compute(a, d)?.total_volume())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgh_sparse::gen::{self, ValueMode};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn test_matrix() -> CsrMatrix {
        gen::grid5(
            16,
            16,
            1.0,
            ValueMode::Ones,
            &mut SmallRng::seed_from_u64(1),
        )
    }

    // Shadow the deprecated quartet with the workload path (shim parity
    // itself is covered in `workload::tests`).
    fn decompose<I: DecomposeIndex>(
        a: &CsrMatrix<I>,
        cfg: &DecomposeConfig,
    ) -> std::result::Result<DecompositionOutcome, FghError> {
        crate::workload::decompose_workload(crate::workload::Workload::Spmv(a), cfg)
            .and_then(crate::workload::WorkloadOutcome::into_spmv)
    }

    fn decompose_any(
        a: &AnyCsrMatrix,
        cfg: &DecomposeConfig,
    ) -> std::result::Result<DecompositionOutcome, FghError> {
        crate::workload::decompose_workload_any(crate::workload::WorkloadAny::Spmv(a), cfg)
            .and_then(crate::workload::WorkloadOutcome::into_spmv)
    }

    #[test]
    fn all_models_produce_valid_decompositions() {
        let a = test_matrix();
        for model in [
            Model::Graph1D,
            Model::Hypergraph1DColNet,
            Model::Hypergraph1DRowNet,
            Model::FineGrain2D,
        ] {
            let out = decompose(&a, &DecomposeConfig::new(model, 4)).unwrap();
            out.decomposition.validate(&a).unwrap();
            assert_eq!(out.stats.k, 4);
            assert_eq!(out.width, IndexWidth::U32);
            assert!(
                out.stats.load_imbalance_percent() <= 10.0,
                "{}: imbalance {}%",
                model.name(),
                out.stats.load_imbalance_percent()
            );
        }
    }

    #[test]
    fn hypergraph_objective_equals_true_volume() {
        // The paper's central claim: for the consistent hypergraph models,
        // the connectivity−1 cutsize is exactly the communication volume.
        let a = test_matrix();
        for model in [
            Model::Hypergraph1DColNet,
            Model::Hypergraph1DRowNet,
            Model::FineGrain2D,
        ] {
            let out = decompose(&a, &DecomposeConfig::new(model, 4)).unwrap();
            assert_eq!(
                out.objective,
                out.stats.total_volume(),
                "{}: cutsize != decoded volume",
                model.name()
            );
        }
    }

    #[test]
    fn graph_edge_cut_overestimates_or_mismatches_volume() {
        // The graph model's objective is generally NOT the true volume
        // (that is the point of the paper). We only check it is an upper
        // bound here: each cut edge costs >= the words its x-values incur.
        let a = test_matrix();
        let out = decompose(&a, &DecomposeConfig::new(Model::Graph1D, 4)).unwrap();
        assert!(
            out.objective >= out.stats.total_volume(),
            "edge cut {} should bound volume {}",
            out.objective,
            out.stats.total_volume()
        );
    }

    #[test]
    fn rowwise_models_have_zero_fold() {
        let a = test_matrix();
        for model in [Model::Graph1D, Model::Hypergraph1DColNet] {
            let out = decompose(&a, &DecomposeConfig::new(model, 4)).unwrap();
            assert_eq!(out.stats.fold_volume, 0, "{}", model.name());
        }
        let out = decompose(&a, &DecomposeConfig::new(Model::Hypergraph1DRowNet, 4)).unwrap();
        assert_eq!(out.stats.expand_volume, 0);
    }

    #[test]
    fn fine_grain_beats_1d_on_average_matrix() {
        // Not guaranteed instance-wise, but on a stencil matrix with K=8
        // the 2D model should not be worse than the graph baseline.
        let a = test_matrix();
        let g = decompose(&a, &DecomposeConfig::new(Model::Graph1D, 8)).unwrap();
        let f = decompose(&a, &DecomposeConfig::new(Model::FineGrain2D, 8)).unwrap();
        assert!(
            f.stats.total_volume() <= g.stats.total_volume() * 2,
            "fine-grain volume {} wildly exceeds graph volume {}",
            f.stats.total_volume(),
            g.stats.total_volume()
        );
    }

    #[test]
    fn checkerboard_works_and_loses_to_fine_grain() {
        // The checkerboard baseline is valid but (being volume-oblivious)
        // should not beat the fine-grain model.
        let a = test_matrix();
        let cb = decompose(&a, &DecomposeConfig::new(Model::Checkerboard2D, 4)).unwrap();
        cb.decomposition.validate(&a).unwrap();
        assert_eq!(cb.objective, cb.stats.total_volume());
        let fg = decompose(&a, &DecomposeConfig::new(Model::FineGrain2D, 4)).unwrap();
        assert!(
            fg.stats.total_volume() <= cb.stats.total_volume(),
            "fine-grain {} vs checkerboard {}",
            fg.stats.total_volume(),
            cb.stats.total_volume()
        );
    }

    #[test]
    fn k0_rejected() {
        let a = test_matrix();
        assert!(decompose(&a, &DecomposeConfig::new(Model::FineGrain2D, 0)).is_err());
    }

    #[test]
    fn k1_trivial() {
        let a = test_matrix();
        let out = decompose(&a, &DecomposeConfig::new(Model::FineGrain2D, 1)).unwrap();
        assert_eq!(out.stats.total_volume(), 0);
        assert_eq!(out.objective, 0);
    }

    #[test]
    fn wide_path_matches_fast_path_for_engine_models() {
        // Golden width parity: the same matrix forced through u64 indices
        // must produce the identical decomposition as the u32 fast path
        // for every engine-backed model.
        let a = test_matrix();
        let a64: CsrMatrix<u64> = a.convert_width().unwrap();
        for model in [
            Model::Graph1D,
            Model::Hypergraph1DColNet,
            Model::Hypergraph1DRowNet,
            Model::FineGrain2D,
        ] {
            let cfg = DecomposeConfig::new(model, 4);
            let narrow = decompose(&a, &cfg).unwrap();
            let wide = decompose(&a64, &cfg).unwrap();
            assert_eq!(wide.width, IndexWidth::U64);
            assert_eq!(
                narrow.decomposition,
                wide.decomposition,
                "{}: widths disagree",
                model.name()
            );
            assert_eq!(narrow.objective, wide.objective, "{}", model.name());
        }
    }

    #[test]
    fn composite_models_reject_wide_indices() {
        let a64: CsrMatrix<u64> = test_matrix().convert_width().unwrap();
        for model in Model::ALL {
            let r = decompose(&a64, &DecomposeConfig::new(model, 4));
            if model.workload() != WorkloadKind::Spmv {
                // Not an SpMV model at all: the SpMV pipeline rejects it
                // before width even matters.
                assert!(matches!(r, Err(FghError::InvalidInput(_))), "{r:?}");
                continue;
            }
            if model.supports_wide_indices() {
                assert!(r.is_ok(), "{} must run wide", model.name());
            } else {
                match r {
                    Err(FghError::UnsupportedWidth { model: m, width }) => {
                        assert_eq!(m, model.name());
                        assert_eq!(width, IndexWidth::U64);
                    }
                    other => panic!("{}: expected UnsupportedWidth, got {other:?}", model.name()),
                }
            }
        }
    }

    #[test]
    fn decompose_any_dispatches_and_matches_typed_path() {
        let a = test_matrix();
        let cfg = DecomposeConfig::new(Model::FineGrain2D, 4);
        let typed = decompose(&a, &cfg).unwrap();
        let any = AnyCsrMatrix::from(a.clone());
        let erased = decompose_any(&any, &cfg).unwrap();
        // Small matrices stay on the fast path (unless CI forces u64, in
        // which case the decomposition must still be identical).
        if cfg!(feature = "force-u64") {
            assert_eq!(erased.width, IndexWidth::U64);
        } else {
            assert_eq!(erased.width, IndexWidth::U32);
        }
        assert_eq!(typed.decomposition, erased.decomposition);

        // A wide carrier runs the big path directly.
        let wide_any = any.convert_width(IndexWidth::U64).unwrap();
        let wide = decompose_any(&wide_any, &cfg).unwrap();
        assert_eq!(wide.width, IndexWidth::U64);
        assert_eq!(typed.decomposition, wide.decomposition);
    }

    #[test]
    fn byte_budget_degrades_instead_of_aborting() {
        // A byte cap far below the model's footprint must still return a
        // valid partition, tagged Degraded with the byte counter visible.
        let a = test_matrix();
        let cfg = DecomposeConfig::new(Model::FineGrain2D, 4).with_budget(Budget::bytes(1));
        let out = decompose(&a, &cfg).unwrap();
        out.decomposition.validate(&a).unwrap();
        assert!(out.engine.byte_truncations > 0, "cap must be recorded");
        assert!(out.status.is_degraded());
        let reason = out.status.reason().unwrap();
        assert_eq!(out.status.code(), Some("budget-exhausted"));
        assert!(
            reason.to_string().contains("bytes"),
            "reason must name bytes: {reason}"
        );
    }
}
