//! Reusable decomposition engine handle: [`EngineSession`] holds the
//! state worth keeping *across* requests (the scratch-arena pool, the
//! thread policy, a budget ceiling), while [`JobParams`] carries what
//! varies *per* request (model, K, ε, seed, runs, budget, trace, cancel
//! token). `fgh serve` builds one session at startup and runs every
//! accepted job through it; embedders batch-processing many matrices get
//! the same warm-arena reuse without a server.
//!
//! The split is the session/request factoring of [`DecomposeConfig`]: a
//! `JobParams` composes with the session into a plain `DecomposeConfig`
//! (see [`JobParams::into_config`]), so the one-shot API and the session
//! API cannot drift apart.

use std::sync::Arc;

use fgh_partition::{ArenaPool, Budget, CancelToken, InitialScheme, Parallelism};
use fgh_sparse::{AnyCsrMatrix, CsrMatrix};

use crate::api::{DecomposeConfig, DecomposeIndex, DecompositionOutcome, Model};
use crate::workload::{
    decompose_workload_any_in, decompose_workload_in, Workload, WorkloadAny, WorkloadOutcome,
};
use crate::FghError;

/// Per-request decomposition parameters — everything about *one* job.
///
/// Defaults mirror [`DecomposeConfig::new`]: ε = 3%, seed 1, one run,
/// unlimited budget, no trace, no cancel token.
#[derive(Debug, Clone)]
pub struct JobParams {
    /// The decomposition model.
    pub model: Model,
    /// Number of processors K.
    pub k: u32,
    /// Maximum load imbalance ε.
    pub epsilon: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Independent partitioner runs; best balanced result kept.
    pub runs: usize,
    /// Per-request resource budget. The effective budget is this
    /// intersected with the session's ceiling (see
    /// [`EngineSession::with_budget_ceiling`]) — a request can tighten
    /// but never loosen the session limit.
    pub budget: Budget,
    /// Record a structured execution trace for this job.
    pub trace: bool,
    /// Cooperative cancellation token for this job.
    pub cancel: Option<CancelToken>,
    /// Initial-partitioning scheme (see [`DecomposeConfig::initial`]).
    pub initial: InitialScheme,
}

impl JobParams {
    /// Parameters for the given model and K with paper defaults.
    pub fn new(model: Model, k: u32) -> Self {
        JobParams {
            model,
            k,
            epsilon: 0.03,
            seed: 1,
            runs: 1,
            budget: Budget::UNLIMITED,
            trace: false,
            cancel: None,
            initial: InitialScheme::Ghg,
        }
    }

    /// The same parameters with a different balance tolerance ε.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// The same parameters with a different base RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The same parameters running `runs` independent partitioner seeds.
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// The same parameters with a per-request budget attached.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The same parameters with trace recording switched on or off.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// The same parameters with a cancellation token attached.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// The same parameters with a different initial-partitioning scheme.
    pub fn with_initial(mut self, initial: InitialScheme) -> Self {
        self.initial = initial;
        self
    }

    /// Composes these parameters with a session's policy into the
    /// [`DecomposeConfig`] the one-shot API understands. The budget is
    /// the intersection of the request's and the session ceiling.
    pub fn into_config(self, session: &EngineSession) -> DecomposeConfig {
        DecomposeConfig {
            model: self.model,
            k: self.k,
            epsilon: self.epsilon,
            seed: self.seed,
            runs: self.runs,
            budget: session.budget_ceiling.intersect(&self.budget),
            parallelism: session.parallelism,
            trace: self.trace,
            cancel: self.cancel,
            initial: self.initial,
        }
    }
}

/// A long-lived decomposition engine handle.
///
/// Owns the [`ArenaPool`] every request draws scratch from (warm buffers
/// survive across whole decompositions), the thread fan-out policy, and
/// an optional budget ceiling that clamps every request. `Clone` is
/// cheap and shares the pool, so one session serves many worker threads
/// concurrently — the pool hands each concurrency domain its own arena.
#[derive(Debug, Clone)]
pub struct EngineSession {
    pool: Arc<ArenaPool>,
    parallelism: Parallelism,
    budget_ceiling: Budget,
}

impl EngineSession {
    /// A session with a fresh pool, [`Parallelism::Auto`], and no budget
    /// ceiling.
    pub fn new() -> Self {
        EngineSession {
            pool: Arc::new(ArenaPool::new()),
            parallelism: Parallelism::Auto,
            budget_ceiling: Budget::UNLIMITED,
        }
    }

    /// The same session with a thread fan-out policy attached.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The same session with a budget ceiling every request is clamped
    /// under (see [`Budget::intersect`]).
    pub fn with_budget_ceiling(mut self, ceiling: Budget) -> Self {
        self.budget_ceiling = ceiling;
        self
    }

    /// The shared scratch-arena pool.
    pub fn pool(&self) -> &Arc<ArenaPool> {
        &self.pool
    }

    /// Arenas currently parked in the pool — an RSS observability hook
    /// for services (counts warm buffers awaiting reuse).
    pub fn idle_arenas(&self) -> usize {
        self.pool.idle()
    }

    /// SpMV decomposition through this session: same semantics as
    /// [`crate::decompose_workload`] with [`Workload::Spmv`], scratch
    /// drawn from the session pool, budget clamped under the ceiling.
    pub fn decompose<I: DecomposeIndex>(
        &self,
        a: &CsrMatrix<I>,
        params: JobParams,
    ) -> std::result::Result<DecompositionOutcome, FghError> {
        self.decompose_workload(Workload::Spmv(a), params)?
            .into_spmv()
    }

    /// SpMV decomposition through this session (width-erased).
    pub fn decompose_any(
        &self,
        a: &AnyCsrMatrix,
        params: JobParams,
    ) -> std::result::Result<DecompositionOutcome, FghError> {
        self.decompose_workload_any(WorkloadAny::Spmv(a), params)?
            .into_spmv()
    }

    /// [`crate::decompose_workload`] through this session: any workload
    /// family, scratch drawn from the session pool, budget clamped under
    /// the ceiling.
    pub fn decompose_workload<I: DecomposeIndex>(
        &self,
        workload: Workload<'_, I>,
        params: JobParams,
    ) -> std::result::Result<WorkloadOutcome, FghError> {
        let cfg = params.into_config(self);
        decompose_workload_in(workload, &cfg, &self.pool)
    }

    /// [`crate::decompose_workload_any`] through this session
    /// (width-erased).
    pub fn decompose_workload_any(
        &self,
        workload: WorkloadAny<'_>,
        params: JobParams,
    ) -> std::result::Result<WorkloadOutcome, FghError> {
        let cfg = params.into_config(self);
        decompose_workload_any_in(workload, &cfg, &self.pool)
    }
}

impl Default for EngineSession {
    fn default() -> Self {
        EngineSession::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgh_sparse::gen::{self, ValueMode};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn test_matrix() -> CsrMatrix {
        gen::grid5(
            12,
            12,
            1.0,
            ValueMode::Ones,
            &mut SmallRng::seed_from_u64(7),
        )
    }

    #[test]
    fn session_matches_one_shot_api() {
        let a = test_matrix();
        let session = EngineSession::new();
        let s = session
            .decompose(&a, JobParams::new(Model::FineGrain2D, 4))
            .unwrap();
        let o = crate::decompose_workload(
            Workload::Spmv(&a),
            &DecomposeConfig::new(Model::FineGrain2D, 4),
        )
        .unwrap()
        .into_spmv()
        .unwrap();
        assert_eq!(s.decomposition, o.decomposition);
        assert_eq!(s.objective, o.objective);
    }

    #[test]
    fn session_runs_spgemm_workloads() {
        let a = test_matrix();
        let session = EngineSession::new();
        let out = session
            .decompose_workload(
                Workload::Spgemm(&a, &a),
                JobParams::new(Model::SpgemmFineGrain, 4),
            )
            .unwrap()
            .into_spgemm()
            .unwrap();
        out.decomposition.validate(&a, &a).unwrap();
        assert_eq!(out.objective, out.stats.total_volume());
        assert!(session.idle_arenas() > 0, "spgemm jobs share the pool");
    }

    #[test]
    fn pool_is_reused_across_requests() {
        let a = test_matrix();
        let session = EngineSession::new();
        session
            .decompose(&a, JobParams::new(Model::FineGrain2D, 4))
            .unwrap();
        let warmed = session.idle_arenas();
        assert!(warmed > 0, "first request must park arenas for reuse");
        session
            .decompose(&a, JobParams::new(Model::FineGrain2D, 4))
            .unwrap();
        // Reuse, not growth: the second identical request checks the same
        // arenas out and back in.
        assert_eq!(session.idle_arenas(), warmed);
    }

    #[test]
    fn ceiling_clamps_request_budget() {
        let session = EngineSession::new().with_budget_ceiling(Budget::bytes(1));
        let params = JobParams::new(Model::FineGrain2D, 4); // unlimited request
        let cfg = params.into_config(&session);
        assert_eq!(cfg.budget.max_bytes, Some(1));

        // And a tighter request wins over a looser ceiling.
        let session = EngineSession::new().with_budget_ceiling(Budget::bytes(1000));
        let cfg = JobParams::new(Model::FineGrain2D, 4)
            .with_budget(Budget::bytes(10))
            .into_config(&session);
        assert_eq!(cfg.budget.max_bytes, Some(10));
    }

    #[test]
    fn cancelled_token_degrades_with_cancelled_reason() {
        let a = test_matrix();
        let session = EngineSession::new();
        let token = CancelToken::new();
        token.cancel(); // tripped before the run even starts
        let out = session
            .decompose(&a, JobParams::new(Model::FineGrain2D, 4).with_cancel(token))
            .unwrap();
        out.decomposition.validate(&a).unwrap();
        assert_eq!(out.status.code(), Some("cancelled"));
        assert!(out.engine.cancelled());
        assert!(!out.engine.truncated(), "cancel is not a budget truncation");
    }
}
