//! The common decomposition vocabulary shared by all models.

use fgh_sparse::{CsrMatrix, IndexType};

use crate::{ModelError, Result};

/// A complete 2D decomposition of a square sparse matrix for parallel
/// `y = Ax`:
///
/// * `nonzero_owner[e]` — the processor that stores nonzero `e` and
///   performs its scalar multiply, where `e` indexes nonzeros in the
///   matrix's CSR iteration order ([`CsrMatrix::iter`]),
/// * `vec_owner[j]` — the processor owning both `x_j` and `y_j`
///   (conformal *symmetric partitioning*, as iterative solvers require).
///
/// 1D row-wise and column-wise decompositions are special cases where
/// every nonzero of a row (resp. column) shares its row's (column's)
/// owner.
///
/// The struct itself is width-erased: owners are part ids (always `u32` —
/// K never approaches the index range) and the order is carried as `u64`,
/// so one decomposition type serves matrices at either index width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomposition {
    /// Number of processors K.
    pub k: u32,
    /// Matrix order M (widened so `u64`-indexed matrices fit).
    pub n: u64,
    /// Owner of each nonzero, in CSR iteration order.
    pub nonzero_owner: Vec<u32>,
    /// Owner of `x_j` and `y_j` for each `j`.
    pub vec_owner: Vec<u32>,
}

impl Decomposition {
    /// Builds a row-wise 1D decomposition: row `i` (all its nonzeros, plus
    /// `x_i`/`y_i`) lives on `row_owner[i]`.
    pub fn rowwise<I: IndexType>(a: &CsrMatrix<I>, k: u32, row_owner: Vec<u32>) -> Result<Self> {
        if !a.is_square() {
            return Err(ModelError::NotSquare {
                nrows: a.nrows().as_u64(),
                ncols: a.ncols().as_u64(),
            });
        }
        if row_owner.len() != a.nrows().index() {
            return Err(ModelError::Invalid(format!(
                "row_owner has {} entries for a {}-row matrix",
                row_owner.len(),
                a.nrows()
            )));
        }
        let mut nonzero_owner = Vec::with_capacity(a.nnz());
        for (i, _, _) in a.iter() {
            nonzero_owner.push(row_owner[i.index()]);
        }
        let d = Decomposition {
            k,
            n: a.nrows().as_u64(),
            nonzero_owner,
            vec_owner: row_owner,
        };
        d.validate(a)?;
        Ok(d)
    }

    /// Builds a column-wise 1D decomposition: column `j` lives on
    /// `col_owner[j]`.
    pub fn columnwise<I: IndexType>(a: &CsrMatrix<I>, k: u32, col_owner: Vec<u32>) -> Result<Self> {
        if !a.is_square() {
            return Err(ModelError::NotSquare {
                nrows: a.nrows().as_u64(),
                ncols: a.ncols().as_u64(),
            });
        }
        if col_owner.len() != a.ncols().index() {
            return Err(ModelError::Invalid(format!(
                "col_owner has {} entries for a {}-column matrix",
                col_owner.len(),
                a.ncols()
            )));
        }
        let mut nonzero_owner = Vec::with_capacity(a.nnz());
        for (_, j, _) in a.iter() {
            nonzero_owner.push(col_owner[j.index()]);
        }
        let d = Decomposition {
            k,
            n: a.nrows().as_u64(),
            nonzero_owner,
            vec_owner: col_owner,
        };
        d.validate(a)?;
        Ok(d)
    }

    /// Builds a fully general (2D) decomposition from explicit owners.
    pub fn general<I: IndexType>(
        a: &CsrMatrix<I>,
        k: u32,
        nonzero_owner: Vec<u32>,
        vec_owner: Vec<u32>,
    ) -> Result<Self> {
        if !a.is_square() {
            return Err(ModelError::NotSquare {
                nrows: a.nrows().as_u64(),
                ncols: a.ncols().as_u64(),
            });
        }
        let d = Decomposition {
            k,
            n: a.nrows().as_u64(),
            nonzero_owner,
            vec_owner,
        };
        d.validate(a)?;
        Ok(d)
    }

    /// Validates shape and ownership ranges against a matrix.
    pub fn validate<I: IndexType>(&self, a: &CsrMatrix<I>) -> Result<()> {
        if self.k == 0 {
            return Err(ModelError::Invalid("K must be >= 1".into()));
        }
        if self.n != a.nrows().as_u64() || !a.is_square() {
            return Err(ModelError::Invalid(format!(
                "decomposition order {} does not match matrix {}x{}",
                self.n,
                a.nrows(),
                a.ncols()
            )));
        }
        if self.nonzero_owner.len() != a.nnz() {
            return Err(ModelError::Invalid(format!(
                "{} nonzero owners for {} nonzeros",
                self.nonzero_owner.len(),
                a.nnz()
            )));
        }
        if self.vec_owner.len() as u64 != self.n {
            return Err(ModelError::Invalid(format!(
                "{} vector owners for order {}",
                self.vec_owner.len(),
                self.n
            )));
        }
        if let Some(&p) = self.nonzero_owner.iter().find(|&&p| p >= self.k) {
            return Err(ModelError::Invalid(format!(
                "nonzero owner {p} >= K = {}",
                self.k
            )));
        }
        if let Some(&p) = self.vec_owner.iter().find(|&&p| p >= self.k) {
            return Err(ModelError::Invalid(format!(
                "vector owner {p} >= K = {}",
                self.k
            )));
        }
        Ok(())
    }

    /// Number of nonzeros (scalar multiplies) per processor — the
    /// computational loads the balance constraint controls.
    pub fn loads(&self) -> Vec<u64> {
        let mut l = vec![0u64; self.k as usize];
        for &p in &self.nonzero_owner {
            l[p as usize] += 1;
        }
        l
    }

    /// Percent computational imbalance `100 (L_max − L_avg) / L_avg`.
    pub fn load_imbalance_percent(&self) -> f64 {
        let l = self.loads();
        let total: u64 = l.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let avg = total as f64 / self.k as f64;
        let max = l.iter().copied().max().unwrap_or(0) as f64;
        100.0 * (max - avg) / avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgh_sparse::CooMatrix;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_coo(
            CooMatrix::from_triplets(
                3,
                3,
                vec![
                    (0, 0, 1.0),
                    (0, 2, 1.0),
                    (1, 1, 1.0),
                    (2, 0, 1.0),
                    (2, 2, 1.0),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn rowwise_owners_follow_rows() {
        let a = sample();
        let d = Decomposition::rowwise(&a, 2, vec![0, 1, 0]).unwrap();
        // CSR order: (0,0),(0,2),(1,1),(2,0),(2,2).
        assert_eq!(d.nonzero_owner, vec![0, 0, 1, 0, 0]);
        assert_eq!(d.vec_owner, vec![0, 1, 0]);
        assert_eq!(d.loads(), vec![4, 1]);
    }

    #[test]
    fn columnwise_owners_follow_columns() {
        let a = sample();
        let d = Decomposition::columnwise(&a, 2, vec![1, 0, 1]).unwrap();
        assert_eq!(d.nonzero_owner, vec![1, 1, 0, 1, 1]);
    }

    #[test]
    fn validation_catches_errors() {
        let a = sample();
        assert!(Decomposition::rowwise(&a, 2, vec![0, 1]).is_err());
        assert!(Decomposition::rowwise(&a, 2, vec![0, 1, 5]).is_err());
        assert!(Decomposition::general(&a, 2, vec![0; 4], vec![0; 3]).is_err());
        assert!(Decomposition::general(&a, 0, vec![0; 5], vec![0; 3]).is_err());
    }

    #[test]
    fn rectangular_rejected() {
        let a: CsrMatrix =
            CsrMatrix::from_coo(CooMatrix::from_triplets(2, 3, vec![(0, 0, 1.0)]).unwrap());
        assert!(Decomposition::rowwise(&a, 1, vec![0, 0]).is_err());
    }

    #[test]
    fn load_imbalance() {
        let a = sample();
        let d = Decomposition::rowwise(&a, 2, vec![0, 1, 0]).unwrap();
        // loads 4 and 1: avg 2.5, max 4 -> 60%.
        assert!((d.load_imbalance_percent() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn wide_matrix_decomposes_identically() {
        let a = sample();
        let a64: CsrMatrix<u64> = a.convert_width().unwrap();
        let d32 = Decomposition::rowwise(&a, 2, vec![0, 1, 0]).unwrap();
        let d64 = Decomposition::rowwise(&a64, 2, vec![0, 1, 0]).unwrap();
        assert_eq!(d32, d64, "a width-erased decomposition must not differ");
        // Cross-width validation works because the struct is width-erased.
        d32.validate(&a64).unwrap();
        d64.validate(&a).unwrap();
    }
}
