//! # fgh-core — decomposition models for parallel sparse matrix-vector multiply
//!
//! The paper's contribution and its baselines, as reusable decomposition
//! models over a shared vocabulary:
//!
//! * [`models::FineGrainModel`] — **the paper's fine-grain 2D hypergraph
//!   model**: one vertex per nonzero `a_ij` (an atomic scalar-multiply
//!   task), one column net `n_j` per column (the *expand* of `x_j`), one
//!   row net `m_i` per row (the *fold* of `y_i`), zero-weight dummy
//!   diagonal vertices enforcing the consistency condition
//!   `v_jj ∈ pins[n_j] ∩ pins[m_j]`.
//! * [`models::ColumnNetModel`] / [`models::RowNetModel`] — the 1D
//!   hypergraph models of Çatalyürek & Aykanat (TPDS 1999).
//! * [`models::StandardGraphModel`] — the classic graph model (MeTiS
//!   baseline) on the symmetrized pattern with edge costs 1/2.
//!
//! Every model decodes its partition into a common [`Decomposition`]
//! (owner of every nonzero + conformal owner of every `x_j`/`y_j`), and
//! [`CommStats`] computes the **exact** communication requirements of one
//! SpMV from that decomposition — volumes in words, per-processor
//! send/receive loads, and message counts — independent of any model's
//! objective function. For the fine-grain model, total volume provably
//! equals the connectivity−1 cutsize (verified in tests and end-to-end by
//! `fgh-spmv`).
//!
//! The [`workload`] module offers one-call decomposition for any
//! supported workload ([`workload::decompose_workload`] over
//! [`workload::Workload::Spmv`] and [`workload::Workload::Spgemm`]);
//! the legacy SpMV-only quartet in [`api`] remains as deprecated shims
//! for one release. [`reduction`] generalizes the model to arbitrary
//! input/output reduction problems with optional pre-assigned elements
//! (the paper's §3 remark).

// Robustness contract: library (non-test) code must not panic; provably
// infallible sites carry a narrowly scoped `allow` with a justification.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod api;
pub mod decomp;
pub mod metrics;
pub mod models;
pub mod reduction;
pub mod report;
pub mod session;
pub mod status;
pub mod workload;

#[allow(deprecated)] // legacy quartet re-exported through its one deprecation cycle
pub use api::{decompose, decompose_any, decompose_any_in, decompose_in};
pub use api::{DecomposeConfig, DecomposeIndex, DecompositionOutcome, Model, WorkloadKind};
pub use decomp::Decomposition;
pub use fgh_partition::{ArenaPool, Budget, CancelToken, EngineStats, InitialScheme, Parallelism};
pub use fgh_trace::{Trace, Tracer};
pub use metrics::CommStats;
pub use report::{
    metrics_document, metrics_json, spgemm_metrics_document, spgemm_metrics_json,
    validate_metrics_value, METRICS_SCHEMA,
};
pub use session::{EngineSession, JobParams};
pub use status::{DecompositionStatus, DegradedReason};
pub use workload::{
    decompose_workload, decompose_workload_any, decompose_workload_any_in, decompose_workload_in,
    SpgemmOutcome, Workload, WorkloadAny, WorkloadOutcome,
};

/// Errors from model construction and decomposition.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// Decomposition models require square matrices (symmetric x/y
    /// partitioning is meaningless otherwise). Dimensions are reported
    /// widened so one error type serves both index widths.
    NotSquare { nrows: u64, ncols: u64 },
    /// The underlying partitioner failed.
    Partition(String),
    /// A decomposition failed validation (see message).
    Invalid(String),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::NotSquare { nrows, ncols } => {
                write!(
                    f,
                    "decomposition requires a square matrix, got {nrows} x {ncols}"
                )
            }
            ModelError::Partition(m) => write!(f, "partitioning failed: {m}"),
            ModelError::Invalid(m) => write!(f, "invalid decomposition: {m}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<fgh_hypergraph::HypergraphError> for ModelError {
    fn from(e: fgh_hypergraph::HypergraphError) -> Self {
        ModelError::Partition(e.to_string())
    }
}

impl From<fgh_partition::PartitionError> for ModelError {
    fn from(e: fgh_partition::PartitionError) -> Self {
        ModelError::Partition(e.to_string())
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ModelError>;

/// Coarse category of an [`FghError`], used by the CLI to map failures to
/// exit codes (bad input → 2, infeasible → 3, budget → 4, internal → 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCategory {
    /// The input (matrix file, K, ε, ...) is malformed or out of range.
    BadInput,
    /// The request is well-formed but cannot be satisfied (e.g. a strict
    /// caller rejected a `Degraded` balance outcome).
    Infeasible,
    /// A resource budget was exhausted and the caller demanded a complete
    /// run.
    Budget,
    /// An internal invariant failed (partitioner defect, worker panic).
    Internal,
}

/// Unified error for the whole decomposition pipeline: every fallible step
/// from parsing a matrix file through partitioning to decoding surfaces
/// here as one typed, categorized error.
#[derive(Debug, Clone, PartialEq)]
pub enum FghError {
    /// Matrix construction / Matrix Market parsing failed.
    Sparse(fgh_sparse::SparseError),
    /// Hypergraph construction or partition validation failed.
    Hypergraph(fgh_hypergraph::HypergraphError),
    /// The multilevel partitioner failed.
    Partition(fgh_partition::PartitionError),
    /// Model construction or decoding failed.
    Model(ModelError),
    /// A decompose-boundary validation rejected the request.
    InvalidInput(String),
    /// The request cannot be satisfied (strict caller rejected a degraded
    /// outcome).
    Infeasible(String),
    /// A [`Budget`] limit truncated the run and the caller was strict.
    BudgetExhausted(String),
    /// A [`CancelToken`] stopped the run and the caller was strict. Like
    /// [`FghError::BudgetExhausted`] this is a resource-style truncation
    /// of an otherwise-valid run, so it shares [`ErrorCategory::Budget`].
    Cancelled(String),
    /// The chosen model does not support the matrix's index width: the
    /// composite 2D models ([`Model::Checkerboard2D`],
    /// [`Model::Mondriaan2D`], [`Model::Jagged2D`],
    /// [`Model::CheckerboardHg2D`]) run on the `u32` fast path only.
    ///
    /// [`Model::Checkerboard2D`]: api::Model::Checkerboard2D
    /// [`Model::Mondriaan2D`]: api::Model::Mondriaan2D
    /// [`Model::Jagged2D`]: api::Model::Jagged2D
    /// [`Model::CheckerboardHg2D`]: api::Model::CheckerboardHg2D
    UnsupportedWidth {
        /// Canonical name of the rejected model.
        model: &'static str,
        /// The index width the matrix is carried at.
        width: fgh_sparse::IndexWidth,
    },
}

impl FghError {
    /// The coarse category of this error (drives CLI exit codes).
    pub fn category(&self) -> ErrorCategory {
        use fgh_hypergraph::HypergraphError as He;
        match self {
            FghError::Sparse(_) | FghError::InvalidInput(_) | FghError::UnsupportedWidth { .. } => {
                ErrorCategory::BadInput
            }
            FghError::Hypergraph(He::InvalidK) => ErrorCategory::BadInput,
            FghError::Partition(fgh_partition::PartitionError::Hypergraph(He::InvalidK)) => {
                ErrorCategory::BadInput
            }
            FghError::Model(ModelError::NotSquare { .. }) => ErrorCategory::BadInput,
            FghError::Infeasible(_) => ErrorCategory::Infeasible,
            FghError::BudgetExhausted(_) | FghError::Cancelled(_) => ErrorCategory::Budget,
            FghError::Hypergraph(_) | FghError::Partition(_) | FghError::Model(_) => {
                ErrorCategory::Internal
            }
        }
    }
}

impl std::fmt::Display for FghError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FghError::Sparse(e) => write!(f, "{e}"),
            FghError::Hypergraph(e) => write!(f, "{e}"),
            FghError::Partition(e) => write!(f, "{e}"),
            FghError::Model(e) => write!(f, "{e}"),
            FghError::InvalidInput(m) => write!(f, "invalid input: {m}"),
            FghError::Infeasible(m) => write!(f, "infeasible: {m}"),
            FghError::BudgetExhausted(m) => write!(f, "budget exhausted: {m}"),
            FghError::Cancelled(m) => write!(f, "cancelled: {m}"),
            FghError::UnsupportedWidth { model, width } => write!(
                f,
                "model {model} does not support {width}-bit indices (only the \
                 engine-backed models run on the big-index path)",
                width = width.bits()
            ),
        }
    }
}

impl std::error::Error for FghError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FghError::Sparse(e) => Some(e),
            FghError::Hypergraph(e) => Some(e),
            FghError::Partition(e) => Some(e),
            FghError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fgh_sparse::SparseError> for FghError {
    fn from(e: fgh_sparse::SparseError) -> Self {
        FghError::Sparse(e)
    }
}

impl From<fgh_hypergraph::HypergraphError> for FghError {
    fn from(e: fgh_hypergraph::HypergraphError) -> Self {
        FghError::Hypergraph(e)
    }
}

impl From<fgh_partition::PartitionError> for FghError {
    fn from(e: fgh_partition::PartitionError) -> Self {
        FghError::Partition(e)
    }
}

impl From<ModelError> for FghError {
    fn from(e: ModelError) -> Self {
        FghError::Model(e)
    }
}
