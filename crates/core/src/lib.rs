//! # fgh-core — decomposition models for parallel sparse matrix-vector multiply
//!
//! The paper's contribution and its baselines, as reusable decomposition
//! models over a shared vocabulary:
//!
//! * [`models::FineGrainModel`] — **the paper's fine-grain 2D hypergraph
//!   model**: one vertex per nonzero `a_ij` (an atomic scalar-multiply
//!   task), one column net `n_j` per column (the *expand* of `x_j`), one
//!   row net `m_i` per row (the *fold* of `y_i`), zero-weight dummy
//!   diagonal vertices enforcing the consistency condition
//!   `v_jj ∈ pins[n_j] ∩ pins[m_j]`.
//! * [`models::ColumnNetModel`] / [`models::RowNetModel`] — the 1D
//!   hypergraph models of Çatalyürek & Aykanat (TPDS 1999).
//! * [`models::StandardGraphModel`] — the classic graph model (MeTiS
//!   baseline) on the symmetrized pattern with edge costs 1/2.
//!
//! Every model decodes its partition into a common [`Decomposition`]
//! (owner of every nonzero + conformal owner of every `x_j`/`y_j`), and
//! [`CommStats`] computes the **exact** communication requirements of one
//! SpMV from that decomposition — volumes in words, per-processor
//! send/receive loads, and message counts — independent of any model's
//! objective function. For the fine-grain model, total volume provably
//! equals the connectivity−1 cutsize (verified in tests and end-to-end by
//! `fgh-spmv`).
//!
//! The [`api`] module offers one-call decomposition ([`api::decompose`])
//! used by the examples and the Table-2 harness; [`reduction`] generalizes
//! the model to arbitrary input/output reduction problems with optional
//! pre-assigned elements (the paper's §3 remark).

pub mod api;
pub mod decomp;
pub mod metrics;
pub mod models;
pub mod reduction;

pub use api::{decompose, DecomposeConfig, DecompositionOutcome, Model};
pub use decomp::Decomposition;
pub use metrics::CommStats;

/// Errors from model construction and decomposition.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// Decomposition models require square matrices (symmetric x/y
    /// partitioning is meaningless otherwise).
    NotSquare { nrows: u32, ncols: u32 },
    /// The underlying partitioner failed.
    Partition(String),
    /// A decomposition failed validation (see message).
    Invalid(String),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::NotSquare { nrows, ncols } => {
                write!(
                    f,
                    "decomposition requires a square matrix, got {nrows} x {ncols}"
                )
            }
            ModelError::Partition(m) => write!(f, "partitioning failed: {m}"),
            ModelError::Invalid(m) => write!(f, "invalid decomposition: {m}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<fgh_hypergraph::HypergraphError> for ModelError {
    fn from(e: fgh_hypergraph::HypergraphError) -> Self {
        ModelError::Partition(e.to_string())
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ModelError>;
