//! The fine-grain SpGEMM hypergraph model (ROADMAP item 2): the paper's
//! one-vertex-per-task idea extended from SpMV to `C = A · B`, following
//! Ballard et al., *Hypergraph Partitioning for Sparse Matrix-Matrix
//! Multiplication* (arXiv 1603.05627).
//!
//! Each scalar multiply task `c_ij += a_ik * b_kj` becomes a unit-weight
//! vertex, so vertex balance is exactly flop balance. Three net families
//! model the three data movements of a distributed SpGEMM:
//!
//! * an **A net** per *used* nonzero `a_ik` (one with at least one task,
//!   i.e. row `k` of `B` is nonempty), pinning the tasks that read it —
//!   the *expand* of `A`;
//! * a **B net** per used nonzero `b_kj` (column `k` of `A` nonempty),
//!   pinning the tasks that read it — the *expand* of `B`;
//! * a **C net** per structural nonzero `c_ij` of the symbolic product,
//!   pinning the tasks that produce a partial for it — the *fold* of `C`.
//!
//! Decoding assigns each data element to the part of its net's **first
//! pin**. That owner is by construction in the net's connectivity set Λ,
//! so each net contributes exactly `λ − 1` words and the connectivity−1
//! cutsize (the paper's eq. 3 applied to this hypergraph) **equals** the
//! total SpGEMM communication volume — the same exactness property the
//! SpMV fine-grain model has, verified here by [`SpgemmCommStats`] and
//! end-to-end by the `fgh-traffic` storage simulator.
//!
//! Everything is keyed to one **canonical task order**: rows of `A` in
//! CSR order, nonzeros `a_ik` within the row in CSR order, and for each
//! the nonzeros of row `k` of `B` in CSR order. [`SpgemmStructure`] is
//! that enumeration reified once and shared by the model, the exact
//! statistics, and the traffic simulator, so the three can never drift.

use fgh_hypergraph::{Hypergraph, HypergraphBuilder, Partition};
use fgh_sparse::{CsrMatrix, IndexType};

use crate::{ModelError, Result};

/// The canonical task enumeration of `C = A · B`: every multiply task
/// `(i, k, j)` in canonical order, the used elements of `A` and `B`, and
/// the structural nonzeros of `C` (row-major, columns sorted per row).
#[derive(Debug, Clone)]
pub struct SpgemmStructure<I: IndexType = u32> {
    /// `(i, k, j)` of every task, canonical order.
    pub tasks: Vec<(I, I, I)>,
    /// `(i, k)` of every used `A` nonzero, in `A` CSR order.
    pub a_elems: Vec<(I, I)>,
    /// Tasks of used `A` element `e` are `a_starts[e]..a_starts[e+1]`
    /// (contiguous by construction).
    pub a_starts: Vec<usize>,
    /// `(k, j)` of every used `B` nonzero, in `B` CSR order.
    pub b_elems: Vec<(I, I)>,
    /// `(i, j)` of every structural nonzero of `C`, row-major with
    /// columns ascending within a row.
    pub c_elems: Vec<(I, I)>,
    /// Used-`B`-element id of every task.
    pub task_b: Vec<usize>,
    /// `C`-element id of every task.
    pub task_c: Vec<usize>,
}

impl<I: IndexType> SpgemmStructure<I> {
    /// Enumerates the canonical structure. The only shape requirement is
    /// the inner dimension: `A` is `m × p`, `B` is `p × n`.
    pub fn build(a: &CsrMatrix<I>, b: &CsrMatrix<I>) -> Result<Self> {
        if a.ncols() != b.nrows() {
            return Err(ModelError::Invalid(format!(
                "SpGEMM inner dimensions disagree: A is {} x {}, B is {} x {}",
                a.nrows(),
                a.ncols(),
                b.nrows(),
                b.ncols()
            )));
        }
        let p = a.ncols().index();
        let nb = b.ncols().index();

        // Used B nonzeros: b_kj participates iff column k of A is
        // nonempty. Precompute the per-position net id in one pass.
        let mut a_col_used = vec![false; p];
        for &k in a.col_idx() {
            a_col_used[k.index()] = true;
        }
        let mut b_elem_of_pos = vec![usize::MAX; b.nnz()];
        let mut b_elems = Vec::new();
        {
            let mut pos = 0usize;
            for (k, &used) in a_col_used.iter().enumerate() {
                let kk = I::from_index(k);
                for &j in b.row_cols(kk) {
                    if used {
                        b_elem_of_pos[pos] = b_elems.len();
                        b_elems.push((kk, j));
                    }
                    pos += 1;
                }
            }
        }

        let mut tasks = Vec::new();
        let mut a_elems = Vec::new();
        let mut a_starts = vec![0usize];
        let mut task_b = Vec::new();
        let mut task_c = Vec::new();
        let mut c_elems: Vec<(I, I)> = Vec::new();

        // Per-row symbolic marker: c_mark[j] holds this row's C-element id
        // for column j once seen (offset by +1; 0 means unseen this row).
        let mut c_mark = vec![0usize; nb];
        let mut c_mark_row = vec![usize::MAX; nb];

        let m = a.nrows().index();
        for iu in 0..m {
            let i = I::from_index(iu);
            // First sweep: the row's structural C columns, sorted, so C
            // elements get row-major ids independent of task order.
            let row_c_base = c_elems.len();
            {
                let mut row_cols: Vec<I> = Vec::new();
                for &k in a.row_cols(i) {
                    for &j in b.row_cols(k) {
                        if c_mark_row[j.index()] != iu {
                            c_mark_row[j.index()] = iu;
                            row_cols.push(j);
                        }
                    }
                }
                row_cols.sort_unstable();
                for (off, &j) in row_cols.iter().enumerate() {
                    c_mark[j.index()] = row_c_base + off + 1;
                    c_elems.push((i, j));
                }
            }
            // Second sweep: the tasks themselves, in canonical order.
            for &k in a.row_cols(i) {
                if b.row_nnz(k) == 0 {
                    continue; // a_ik produces no tasks: not a used element
                }
                let b_base = b.row_ptr()[k.index()];
                for (boff, &j) in b.row_cols(k).iter().enumerate() {
                    tasks.push((i, k, j));
                    task_b.push(b_elem_of_pos[b_base + boff]);
                    task_c.push(c_mark[j.index()] - 1);
                }
                a_elems.push((i, k));
                a_starts.push(tasks.len());
            }
        }

        Ok(SpgemmStructure {
            tasks,
            a_elems,
            a_starts,
            b_elems,
            c_elems,
            task_b,
            task_c,
        })
    }

    /// Number of multiply tasks (= flops of the numeric product).
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }
}

/// Counts the multiply tasks of `C = A · B` without materializing the
/// structure — the width-selection probe for the workload API (a `u32`
/// carrier must upgrade before the task count or net count overflows).
pub fn spgemm_flops<I: IndexType>(a: &CsrMatrix<I>, b: &CsrMatrix<I>) -> u64 {
    let mut flops = 0u64;
    for &k in a.col_idx() {
        flops = flops.saturating_add(b.row_nnz(k) as u64);
    }
    flops
}

/// The fine-grain SpGEMM hypergraph of a conformable pair `(A, B)`.
///
/// Net numbering: A nets first (ids `0..a_elems.len()`, in `A` CSR order
/// over used elements), then B nets, then C nets (row-major order of the
/// symbolic product). Vertex `t` is task `t` of the canonical order.
#[derive(Debug, Clone)]
pub struct SpgemmModel<I: IndexType = u32> {
    hypergraph: Hypergraph<I>,
    structure: SpgemmStructure<I>,
}

impl<I: IndexType> SpgemmModel<I> {
    /// Builds the model from a conformable pair.
    ///
    /// ```
    /// use fgh_core::models::SpgemmModel;
    /// use fgh_sparse::{CooMatrix, CsrMatrix};
    /// let a: CsrMatrix = CsrMatrix::from_coo(CooMatrix::from_triplets(
    ///     2, 2, vec![(0, 0, 1.0), (1, 0, 2.0), (1, 1, 3.0)]).unwrap());
    /// let m = SpgemmModel::build(&a, &a).unwrap();
    /// // Tasks: (0,0,0), (1,0,0), (1,1,0), (1,1,1) — 4 flops.
    /// assert_eq!(m.hypergraph().num_vertices(), 4);
    /// // 3 used A nets + 3 used B nets + 3 structural C nonzeros.
    /// assert_eq!(m.hypergraph().num_nets(), 9);
    /// // Every task pins exactly its A, B, and C nets.
    /// assert_eq!(m.hypergraph().num_pins(), 12);
    /// ```
    pub fn build(a: &CsrMatrix<I>, b: &CsrMatrix<I>) -> Result<Self> {
        let s = SpgemmStructure::build(a, b)?;
        let mut builder = HypergraphBuilder::<I>::new();
        for _ in 0..s.tasks.len() {
            builder.add_vertex(1);
        }
        let na = s.a_elems.len();
        let nb = s.b_elems.len();
        // A nets: the tasks of used element e are contiguous.
        for e in 0..na {
            let pins: Vec<I> = (s.a_starts[e]..s.a_starts[e + 1])
                .map(I::from_index)
                .collect();
            builder.add_net(pins);
        }
        // B and C nets: gather scattered pins (canonical task order is
        // preserved inside each net, so pin 0 is the first consumer).
        let mut b_pins: Vec<Vec<I>> = vec![Vec::new(); nb];
        let mut c_pins: Vec<Vec<I>> = vec![Vec::new(); s.c_elems.len()];
        for t in 0..s.tasks.len() {
            b_pins[s.task_b[t]].push(I::from_index(t));
            c_pins[s.task_c[t]].push(I::from_index(t));
        }
        for pins in b_pins {
            builder.add_net(pins);
        }
        for pins in c_pins {
            builder.add_net(pins);
        }
        let hypergraph = builder.build()?;
        Ok(SpgemmModel {
            hypergraph,
            structure: s,
        })
    }

    /// The underlying hypergraph (|V| = flops, |N| = used A + used B +
    /// nnz(C)).
    pub fn hypergraph(&self) -> &Hypergraph<I> {
        &self.hypergraph
    }

    /// The canonical enumeration this model was built over.
    pub fn structure(&self) -> &SpgemmStructure<I> {
        &self.structure
    }

    /// `(row, col)` position of task `t` in the (m × n) product — the
    /// geometric coordinates handed to the partitioner's geometric
    /// initial scheme.
    pub fn coords(&self, t: usize) -> (I, I) {
        let (i, _, j) = self.structure.tasks[t];
        (i, j)
    }

    /// Decodes a partition of the task hypergraph into a
    /// [`SpgemmDecomposition`]: task `t` goes to `part[t]`, and every
    /// data element to the part of its net's first pin (guaranteed to be
    /// in the net's connectivity set, which makes the connectivity−1
    /// cutsize exactly the communication volume).
    pub fn decode(&self, partition: &Partition) -> Result<SpgemmDecomposition> {
        let s = &self.structure;
        if partition.len() != s.tasks.len() {
            return Err(ModelError::Invalid(format!(
                "partition covers {} vertices, model has {} tasks",
                partition.len(),
                s.tasks.len()
            )));
        }
        let task_owner: Vec<u32> = partition.parts().to_vec();
        let a_owner: Vec<u32> = (0..s.a_elems.len())
            .map(|e| task_owner[s.a_starts[e]])
            .collect();
        // First consumer/producer in canonical task order.
        let mut b_owner = vec![u32::MAX; s.b_elems.len()];
        let mut c_owner = vec![u32::MAX; s.c_elems.len()];
        for (t, &owner) in task_owner.iter().enumerate() {
            let be = s.task_b[t];
            if b_owner[be] == u32::MAX {
                b_owner[be] = owner;
            }
            let ce = s.task_c[t];
            if c_owner[ce] == u32::MAX {
                c_owner[ce] = owner;
            }
        }
        debug_assert!(b_owner.iter().all(|&o| o != u32::MAX));
        debug_assert!(c_owner.iter().all(|&o| o != u32::MAX));
        Ok(SpgemmDecomposition {
            k: partition.k(),
            task_owner,
            a_owner,
            b_owner,
            c_owner,
        })
    }
}

/// A decoded SpGEMM decomposition: the owner of every multiply task (in
/// canonical order — see [`SpgemmStructure`]), of every used `A` / `B`
/// nonzero, and of every structural nonzero of `C`. Self-describing
/// given `(A, B)`: the coordinate lists are re-derivable from the
/// canonical enumeration, so consumers (the traffic simulator, the serve
/// daemon) carry only the owner arrays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpgemmDecomposition {
    /// Number of parts K.
    pub k: u32,
    /// Part of every task, canonical order.
    pub task_owner: Vec<u32>,
    /// Part of every used `A` nonzero (holds it in memory; sends it to
    /// every other part with a task reading it).
    pub a_owner: Vec<u32>,
    /// Part of every used `B` nonzero.
    pub b_owner: Vec<u32>,
    /// Part of every structural `C` nonzero (receives the partial sums
    /// and stores the final value).
    pub c_owner: Vec<u32>,
}

impl SpgemmDecomposition {
    /// Checks this decomposition against the canonical structure of
    /// `(A, B)`: array lengths match the enumeration and every owner is a
    /// valid part id.
    pub fn validate<I: IndexType>(&self, a: &CsrMatrix<I>, b: &CsrMatrix<I>) -> Result<()> {
        let s = SpgemmStructure::build(a, b)?;
        self.validate_against(&s)
    }

    /// [`SpgemmDecomposition::validate`] against an already-built
    /// structure.
    pub fn validate_against<I: IndexType>(&self, s: &SpgemmStructure<I>) -> Result<()> {
        if self.k == 0 {
            return Err(ModelError::Invalid("decomposition has K = 0".into()));
        }
        for (name, got, want) in [
            ("task_owner", self.task_owner.len(), s.tasks.len()),
            ("a_owner", self.a_owner.len(), s.a_elems.len()),
            ("b_owner", self.b_owner.len(), s.b_elems.len()),
            ("c_owner", self.c_owner.len(), s.c_elems.len()),
        ] {
            if got != want {
                return Err(ModelError::Invalid(format!(
                    "{name} covers {got} elements, structure has {want}"
                )));
            }
        }
        for arr in [
            &self.task_owner,
            &self.a_owner,
            &self.b_owner,
            &self.c_owner,
        ] {
            if let Some(&bad) = arr.iter().find(|&&o| o >= self.k) {
                return Err(ModelError::Invalid(format!(
                    "owner {bad} out of range for K = {}",
                    self.k
                )));
            }
        }
        Ok(())
    }

    /// Multiply tasks per part — the balance constraint (flop loads).
    pub fn loads(&self) -> Vec<u64> {
        let mut loads = vec![0u64; self.k as usize];
        for &p in &self.task_owner {
            loads[p as usize] += 1;
        }
        loads
    }
}

/// Exact communication requirements of one distributed `C = A · B` under
/// a decomposition — the SpGEMM analogue of [`crate::CommStats`],
/// computed by replaying the canonical enumeration rather than from any
/// model's objective, so it is the same ground truth for every
/// decomposition however produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SpgemmCommStats {
    /// Number of parts K.
    pub k: u32,
    /// Words of `A` moved in the expand phase (each used `a_ik` travels
    /// to every non-owner part with a task reading it).
    pub a_expand_volume: u64,
    /// Words of `B` moved in the expand phase.
    pub b_expand_volume: u64,
    /// Partial-result words of `C` moved in the fold phase.
    pub fold_volume: u64,
    /// Messages in the `A` expand phase (distinct sender→receiver pairs).
    pub a_expand_messages: u64,
    /// Messages in the `B` expand phase.
    pub b_expand_messages: u64,
    /// Messages in the fold phase.
    pub fold_messages: u64,
    /// Per-part breakdown (words, messages, flop load).
    pub per_proc: Vec<crate::metrics::ProcStats>,
}

impl SpgemmCommStats {
    /// Computes the exact statistics of decomposition `d` for the product
    /// `A · B`.
    pub fn compute<I: IndexType>(
        a: &CsrMatrix<I>,
        b: &CsrMatrix<I>,
        d: &SpgemmDecomposition,
    ) -> Result<Self> {
        let s = SpgemmStructure::build(a, b)?;
        Self::compute_with(&s, d)
    }

    /// [`SpgemmCommStats::compute`] against an already-built structure.
    pub fn compute_with<I: IndexType>(
        s: &SpgemmStructure<I>,
        d: &SpgemmDecomposition,
    ) -> Result<Self> {
        d.validate_against(s)?;
        let k = d.k as usize;
        let mut per_proc = vec![crate::metrics::ProcStats::default(); k];
        for &p in &d.task_owner {
            per_proc[p as usize].load += 1;
        }

        let mut msg = [
            vec![false; k * k], // A expand
            vec![false; k * k], // B expand
            vec![false; k * k], // C fold
        ];
        let mut volumes = [0u64; 3];
        let mut stamp = vec![usize::MAX; k];

        // A expand: element e's consumers are the owners of its
        // (contiguous) tasks; each distinct non-owner part costs a word.
        for (e, &owner) in d.a_owner.iter().enumerate() {
            let owner = owner as usize;
            let tick = e;
            stamp[owner] = tick;
            for t in s.a_starts[e]..s.a_starts[e + 1] {
                let p = d.task_owner[t] as usize;
                if stamp[p] == tick {
                    continue;
                }
                stamp[p] = tick;
                volumes[0] += 1;
                per_proc[owner].sent_words += 1;
                per_proc[p].recv_words += 1;
                msg[0][owner * k + p] = true;
            }
        }

        // B expand and C fold: the tasks of one element are scattered, so
        // group them first, then replay element-at-a-time with the owner
        // pre-stamped (the owner never pays for its own element).
        let mut b_tasks: Vec<Vec<usize>> = vec![Vec::new(); s.b_elems.len()];
        let mut c_tasks: Vec<Vec<usize>> = vec![Vec::new(); s.c_elems.len()];
        for t in 0..s.tasks.len() {
            b_tasks[s.task_b[t]].push(t);
            c_tasks[s.task_c[t]].push(t);
        }
        let mut b_stamp = vec![usize::MAX; k];
        let mut c_stamp = vec![usize::MAX; k];
        for (e, tasks) in b_tasks.iter().enumerate() {
            let owner = d.b_owner[e] as usize;
            b_stamp[owner] = e;
            for &t in tasks {
                let p = d.task_owner[t] as usize;
                if b_stamp[p] == e {
                    continue;
                }
                b_stamp[p] = e;
                volumes[1] += 1;
                per_proc[owner].sent_words += 1;
                per_proc[p].recv_words += 1;
                msg[1][owner * k + p] = true;
            }
        }
        for (e, tasks) in c_tasks.iter().enumerate() {
            let owner = d.c_owner[e] as usize;
            c_stamp[owner] = e;
            for &t in tasks {
                let p = d.task_owner[t] as usize;
                if c_stamp[p] == e {
                    continue;
                }
                c_stamp[p] = e;
                // Fold direction: producer part sends its partial to the
                // owner of c_ij.
                volumes[2] += 1;
                per_proc[p].sent_words += 1;
                per_proc[owner].recv_words += 1;
                msg[2][p * k + owner] = true;
            }
        }

        let mut messages = [0u64; 3];
        for (f, grid) in msg.iter().enumerate() {
            for sr in 0..k {
                for rc in 0..k {
                    if grid[sr * k + rc] {
                        messages[f] += 1;
                        per_proc[sr].sent_messages += 1;
                        per_proc[rc].recv_messages += 1;
                    }
                }
            }
        }

        Ok(SpgemmCommStats {
            k: d.k,
            a_expand_volume: volumes[0],
            b_expand_volume: volumes[1],
            fold_volume: volumes[2],
            a_expand_messages: messages[0],
            b_expand_messages: messages[1],
            fold_messages: messages[2],
            per_proc,
        })
    }

    /// Total expand volume (`A` + `B` words).
    pub fn expand_volume(&self) -> u64 {
        self.a_expand_volume + self.b_expand_volume
    }

    /// Total expand messages (`A` + `B` phases).
    pub fn expand_messages(&self) -> u64 {
        self.a_expand_messages + self.b_expand_messages
    }

    /// Total communication volume in words (expand + fold) — the
    /// quantity the model's cutsize predicts exactly.
    pub fn total_volume(&self) -> u64 {
        self.expand_volume() + self.fold_volume
    }

    /// Total messages across all three phases.
    pub fn total_messages(&self) -> u64 {
        self.expand_messages() + self.fold_messages
    }

    /// Maximum messages sent by a single part.
    pub fn max_messages_per_proc(&self) -> u64 {
        self.per_proc
            .iter()
            .map(|p| p.sent_messages)
            .max()
            .unwrap_or(0)
    }

    /// Maximum words sent + received by a single part.
    pub fn max_sent_recv_words(&self) -> u64 {
        self.per_proc
            .iter()
            .map(|p| p.sent_words + p.recv_words)
            .max()
            .unwrap_or(0)
    }

    /// Percent flop imbalance (same formula as the SpMV statistics).
    pub fn load_imbalance_percent(&self) -> f64 {
        let total: u64 = self.per_proc.iter().map(|p| p.load).sum();
        if total == 0 {
            return 0.0;
        }
        let avg = total as f64 / self.k as f64;
        let max = self.per_proc.iter().map(|p| p.load).max().unwrap_or(0) as f64;
        100.0 * (max - avg) / avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgh_hypergraph::cutsize_connectivity;
    use fgh_sparse::CooMatrix;

    fn mat(nrows: u32, ncols: u32, t: Vec<(u32, u32, f64)>) -> CsrMatrix {
        CsrMatrix::from_coo(CooMatrix::from_triplets(nrows, ncols, t).unwrap())
    }

    fn sample_a() -> CsrMatrix {
        mat(
            3,
            3,
            vec![
                (0, 0, 2.0),
                (0, 2, 1.0),
                (1, 1, 3.0),
                (2, 0, 1.0),
                (2, 2, 4.0),
            ],
        )
    }

    fn sample_b() -> CsrMatrix {
        mat(
            3,
            2,
            vec![(0, 0, 1.0), (0, 1, 2.0), (1, 1, 1.0), (2, 0, 5.0)],
        )
    }

    #[test]
    fn structure_enumerates_canonically() {
        let (a, b) = (sample_a(), sample_b());
        let s = SpgemmStructure::build(&a, &b).unwrap();
        // Row 0: a_00 -> (0,0,0),(0,0,1); a_02 -> (0,2,0).
        // Row 1: a_11 -> (1,1,1). Row 2: a_20 -> (2,0,0),(2,0,1); a_22 -> (2,2,0).
        assert_eq!(
            s.tasks,
            vec![
                (0, 0, 0),
                (0, 0, 1),
                (0, 2, 0),
                (1, 1, 1),
                (2, 0, 0),
                (2, 0, 1),
                (2, 2, 0)
            ]
        );
        assert_eq!(s.a_elems, vec![(0, 0), (0, 2), (1, 1), (2, 0), (2, 2)]);
        assert_eq!(s.a_starts, vec![0, 2, 3, 4, 6, 7]);
        // All B rows are reachable (columns 0,1,2 of A are nonempty).
        assert_eq!(s.b_elems, vec![(0, 0), (0, 1), (1, 1), (2, 0)]);
        // C structural: row 0 -> (0,0),(0,1); row 1 -> (1,1); row 2 -> (2,0),(2,1).
        assert_eq!(s.c_elems, vec![(0, 0), (0, 1), (1, 1), (2, 0), (2, 1)]);
        assert_eq!(s.num_tasks() as u64, spgemm_flops(&a, &b));
    }

    #[test]
    fn unused_elements_get_no_nets() {
        // B row 1 empty -> a_11 unused; A column 2 empty -> b_2* unused.
        let a = mat(2, 3, vec![(0, 0, 1.0), (1, 1, 1.0)]);
        let b = mat(3, 2, vec![(0, 0, 1.0), (2, 1, 1.0)]);
        let s = SpgemmStructure::build(&a, &b).unwrap();
        assert_eq!(s.tasks, vec![(0, 0, 0)]);
        assert_eq!(s.a_elems, vec![(0, 0)]);
        assert_eq!(s.b_elems, vec![(0, 0)]);
        assert_eq!(s.c_elems, vec![(0, 0)]);
        let m = SpgemmModel::build(&a, &b).unwrap();
        assert_eq!(m.hypergraph().num_nets(), 3);
        assert_eq!(m.hypergraph().num_pins(), 3);
    }

    #[test]
    fn inner_dimension_mismatch_rejected() {
        let a = mat(2, 3, vec![(0, 0, 1.0)]);
        let b = mat(2, 2, vec![(0, 0, 1.0)]);
        assert!(matches!(
            SpgemmStructure::build(&a, &b),
            Err(ModelError::Invalid(_))
        ));
    }

    #[test]
    fn model_pins_three_nets_per_task() {
        let (a, b) = (sample_a(), sample_b());
        let m = SpgemmModel::build(&a, &b).unwrap();
        let hg = m.hypergraph();
        hg.validate_invariants().unwrap();
        assert_eq!(hg.num_vertices() as usize, m.structure().num_tasks());
        assert_eq!(hg.num_pins(), 3 * m.structure().num_tasks());
        for t in 0..hg.num_vertices() {
            assert_eq!(hg.vertex_degree(t), 3, "task {t}");
            assert_eq!(hg.vertex_weight(t), 1);
        }
    }

    #[test]
    fn cutsize_equals_replayed_volume() {
        // The exactness property: with first-pin owner decode, the
        // connectivity-1 cutsize is the replayed communication volume.
        let (a, b) = (sample_a(), sample_b());
        let m = SpgemmModel::build(&a, &b).unwrap();
        let nv = m.hypergraph().num_vertices() as usize;
        for k in [1u32, 2, 3] {
            for salt in 0..4u32 {
                let parts: Vec<u32> = (0..nv as u32).map(|t| (t * 7 + salt) % k).collect();
                let p = Partition::new(k, parts).unwrap();
                let d = m.decode(&p).unwrap();
                let stats = SpgemmCommStats::compute(&a, &b, &d).unwrap();
                assert_eq!(
                    cutsize_connectivity(m.hypergraph(), &p),
                    stats.total_volume(),
                    "k={k} salt={salt}"
                );
            }
        }
    }

    #[test]
    fn one_part_costs_nothing() {
        let (a, b) = (sample_a(), sample_b());
        let m = SpgemmModel::build(&a, &b).unwrap();
        let p = Partition::trivial(m.hypergraph().num_vertices());
        let d = m.decode(&p).unwrap();
        let stats = SpgemmCommStats::compute(&a, &b, &d).unwrap();
        assert_eq!(stats.total_volume(), 0);
        assert_eq!(stats.total_messages(), 0);
        assert_eq!(d.loads(), vec![m.structure().num_tasks() as u64]);
    }

    #[test]
    fn owners_are_first_consumers() {
        let (a, b) = (sample_a(), sample_b());
        let m = SpgemmModel::build(&a, &b).unwrap();
        let nv = m.hypergraph().num_vertices() as usize;
        let parts: Vec<u32> = (0..nv as u32).map(|t| t % 2).collect();
        let p = Partition::new(2, parts).unwrap();
        let d = m.decode(&p).unwrap();
        let s = m.structure();
        // a_00 is consumed first by task 0 (part 0); c_(0,1) first by task 1.
        assert_eq!(d.a_owner[0], d.task_owner[s.a_starts[0]]);
        for (e, &o) in d.c_owner.iter().enumerate() {
            let first = (0..s.tasks.len()).find(|&t| s.task_c[t] == e).unwrap();
            assert_eq!(o, d.task_owner[first], "c element {e}");
        }
    }

    #[test]
    fn validate_rejects_malformed() {
        let (a, b) = (sample_a(), sample_b());
        let m = SpgemmModel::build(&a, &b).unwrap();
        let p = Partition::trivial(m.hypergraph().num_vertices());
        let mut d = m.decode(&p).unwrap();
        d.validate(&a, &b).unwrap();
        d.task_owner.pop();
        assert!(d.validate(&a, &b).is_err());
        let mut d2 = m.decode(&p).unwrap();
        d2.a_owner[0] = 99;
        assert!(d2.validate(&a, &b).is_err());
    }

    #[test]
    fn wide_structure_matches_narrow() {
        let (a, b) = (sample_a(), sample_b());
        let a64: CsrMatrix<u64> = a.convert_width().unwrap();
        let b64: CsrMatrix<u64> = b.convert_width().unwrap();
        let s32 = SpgemmStructure::build(&a, &b).unwrap();
        let s64 = SpgemmStructure::build(&a64, &b64).unwrap();
        assert_eq!(s32.num_tasks(), s64.num_tasks());
        let widened: Vec<(u64, u64, u64)> = s32
            .tasks
            .iter()
            .map(|&(i, k, j)| (i as u64, k as u64, j as u64))
            .collect();
        assert_eq!(widened, s64.tasks);
        assert_eq!(s32.task_b, s64.task_b);
        assert_eq!(s32.task_c, s64.task_c);
    }
}
