//! The fine-grain 2D hypergraph model (Section 3 of the paper).
//!
//! An `M x M` matrix with `Z` nonzeros becomes a hypergraph with `Z`
//! vertices (one per nonzero — the atomic task `y_i^j = a_ij * x_j`, unit
//! weight) and `2M` nets: row net `m_i` holds the nonzeros of row `i`
//! (modeling the *fold* that accumulates `y_i`), column net `n_j` holds the
//! nonzeros of column `j` (modeling the *expand* of `x_j`).
//!
//! **Consistency condition**: `v_jj ∈ pins[n_j] ∩ pins[m_j]` for every `j`.
//! Missing diagonals get a zero-weight *dummy* vertex `v_jj` (weight 0 so
//! balance is unaffected). The condition guarantees `Λ[n_j] ∩ Λ[m_j] ∋
//! part[v_jj]`, so decoding `map[n_j] = map[m_j] = part[v_jj]` yields a
//! *symmetric* (conformal) x/y distribution under which the connectivity−1
//! cutsize (eq. 3) **exactly equals** the total SpMV communication volume.
//!
//! The model is generic over the index width: `Z + M` vertices and `2M`
//! nets overflow `u32` well before the matrix's own indices do, so the
//! `u64` instantiation is the first structure in the pipeline that big
//! inputs force wide (see `IndexWidth::select`).

use fgh_hypergraph::{connectivity_sets, Hypergraph, HypergraphBuilder, Partition};
use fgh_invariant::{invariant, InvariantViolation};
use fgh_sparse::{CsrMatrix, IndexType};

use crate::decomp::Decomposition;
use crate::{ModelError, Result};

/// The fine-grain hypergraph of a square sparse matrix.
///
/// Net numbering: row net `m_i` has id `i`; column net `n_j` has id
/// `M + j`. Vertex numbering: the first `num_real` vertices are the
/// structural nonzeros in CSR iteration order; dummy diagonal vertices
/// (weight 0) follow.
#[derive(Debug, Clone)]
pub struct FineGrainModel<I: IndexType = u32> {
    hypergraph: Hypergraph<I>,
    /// `(row, col)` of every vertex, dummies included.
    coords: Vec<(I, I)>,
    /// Vertex id of `v_jj` for each `j` (real or dummy).
    diag_vertex: Vec<I>,
    /// Number of real (nonzero-backed) vertices = Z.
    num_real: usize,
    /// Matrix order M.
    n: I,
}

impl<I: IndexType> FineGrainModel<I> {
    /// Builds the model from a square matrix.
    ///
    /// ```
    /// use fgh_core::models::FineGrainModel;
    /// use fgh_sparse::{CooMatrix, CsrMatrix};
    /// // 2x2 with a full diagonal and one off-diagonal nonzero.
    /// let a: CsrMatrix = CsrMatrix::from_coo(CooMatrix::from_triplets(
    ///     2, 2, vec![(0, 0, 1.0), (1, 1, 1.0), (1, 0, 1.0)]).unwrap());
    /// let m = FineGrainModel::build(&a).unwrap();
    /// assert_eq!(m.hypergraph().num_vertices(), 3);      // Z vertices
    /// assert_eq!(m.hypergraph().num_nets(), 4);          // 2M nets
    /// assert_eq!(m.hypergraph().num_pins(), 6);          // 2Z pins
    /// // Column net n_0 holds the nonzeros of column 0: a_00 and a_10.
    /// assert_eq!(m.hypergraph().net_size(m.col_net(0)), 2);
    /// ```
    pub fn build(a: &CsrMatrix<I>) -> Result<Self> {
        if !a.is_square() {
            return Err(ModelError::NotSquare {
                nrows: a.nrows().as_u64(),
                ncols: a.ncols().as_u64(),
            });
        }
        let n = a.nrows().index();
        let z = a.nnz();

        let mut builder = HypergraphBuilder::<I>::new();
        let mut coords: Vec<(I, I)> = Vec::with_capacity(z + n / 4);
        let mut diag_vertex = vec![I::MAX; n];

        let mut row_pins: Vec<Vec<I>> = vec![Vec::new(); n];
        let mut col_pins: Vec<Vec<I>> = vec![Vec::new(); n];

        for (i, j, _) in a.iter() {
            let v = builder.add_vertex(1);
            coords.push((i, j));
            row_pins[i.index()].push(v);
            col_pins[j.index()].push(v);
            if i == j {
                diag_vertex[i.index()] = v;
            }
        }
        let num_real = z;

        // Dummy diagonal vertices restore the consistency condition where
        // a_jj = 0; their zero weight keeps the balance model (eq. 1) exact.
        for j in 0..n {
            if diag_vertex[j] == I::MAX {
                let v = builder.add_vertex(0);
                coords.push((I::from_index(j), I::from_index(j)));
                row_pins[j].push(v);
                col_pins[j].push(v);
                diag_vertex[j] = v;
            }
        }

        // Row nets m_i (ids 0..n), then column nets n_j (ids n..2n).
        for pins in row_pins {
            builder.add_net(pins);
        }
        for pins in col_pins {
            builder.add_net(pins);
        }

        let hypergraph = builder.build()?;
        Ok(FineGrainModel {
            hypergraph,
            coords,
            diag_vertex,
            num_real,
            n: a.nrows(),
        })
    }

    /// The underlying hypergraph (|V| = Z + #dummies, |N| = 2M).
    pub fn hypergraph(&self) -> &Hypergraph<I> {
        &self.hypergraph
    }

    /// Matrix order M.
    pub fn n(&self) -> I {
        self.n
    }

    /// Number of real (nonzero) vertices Z.
    pub fn num_real_vertices(&self) -> usize {
        self.num_real
    }

    /// Number of zero-weight dummy diagonal vertices added.
    pub fn num_dummy_vertices(&self) -> usize {
        self.coords.len() - self.num_real
    }

    /// `(row, col)` of vertex `v`.
    pub fn coords(&self, v: I) -> (I, I) {
        self.coords[v.index()]
    }

    /// Net id of row net `m_i`.
    pub fn row_net(&self, i: I) -> I {
        debug_assert!(i < self.n);
        i
    }

    /// Net id of column net `n_j`.
    pub fn col_net(&self, j: I) -> I {
        debug_assert!(j < self.n);
        I::from_index(self.n.index() + j.index())
    }

    /// Vertex id of the diagonal vertex `v_jj`.
    pub fn diag_vertex(&self, j: I) -> I {
        self.diag_vertex[j.index()]
    }

    /// Audits the model against the paper's Section-3 structure: the
    /// underlying hypergraph is internally consistent, there are exactly
    /// `2M` nets, every vertex pins exactly its row net `m_i` and column
    /// net `n_j`, real vertices have weight 1 and dummies weight 0, and
    /// the **consistency condition** `v_jj ∈ pins[n_j] ∩ pins[m_j]` holds
    /// for every diagonal index `j`.
    pub fn validate(&self) -> std::result::Result<(), InvariantViolation> {
        const S: &str = "FineGrainModel";
        let n = self.n.index();
        self.hypergraph.validate_invariants()?;
        invariant!(
            self.hypergraph.num_nets().index() == 2 * n,
            S,
            "nets.count",
            "{} nets for order {} (expected 2M = {})",
            self.hypergraph.num_nets(),
            self.n,
            2 * n
        );
        invariant!(
            self.coords.len() == self.hypergraph.num_vertices().index(),
            S,
            "coords.len",
            "{} coords for {} vertices",
            self.coords.len(),
            self.hypergraph.num_vertices()
        );
        invariant!(
            self.num_real <= self.coords.len(),
            S,
            "real.count",
            "num_real = {} exceeds {} vertices",
            self.num_real,
            self.coords.len()
        );
        invariant!(
            self.diag_vertex.len() == n,
            S,
            "diag.len",
            "{} diagonal vertices for order {}",
            self.diag_vertex.len(),
            self.n
        );
        for (vu, &(i, j)) in self.coords.iter().enumerate() {
            let v = I::from_index(vu);
            invariant!(
                i < self.n && j < self.n,
                S,
                "coords.in_bounds",
                "vertex {v} at ({i}, {j}) outside order {}",
                self.n
            );
            // Each atomic task y_i += a_ij * x_j belongs to exactly m_i
            // (fold) and n_j (expand).
            invariant!(
                self.hypergraph.nets(v) == [self.row_net(i), self.col_net(j)],
                S,
                "vertex.nets",
                "vertex {v} at ({i}, {j}) pins nets {:?}, expected [m_{i} = {}, n_{j} = {}]",
                self.hypergraph.nets(v),
                self.row_net(i),
                self.col_net(j)
            );
            let expected_weight = if vu < self.num_real { 1 } else { 0 };
            invariant!(
                self.hypergraph.vertex_weight(v) == expected_weight,
                S,
                "vertex.weight",
                "vertex {v} ({}) has weight {}, expected {expected_weight}",
                if vu < self.num_real { "real" } else { "dummy" },
                self.hypergraph.vertex_weight(v)
            );
            if vu >= self.num_real {
                invariant!(
                    i == j && self.diag_vertex[i.index()] == v,
                    S,
                    "dummy.diagonal",
                    "dummy vertex {v} at ({i}, {j}) is not a registered diagonal"
                );
            }
        }
        // The consistency condition of Section 3: v_jj ∈ pins[n_j] ∩
        // pins[m_j], so decoding map[n_j] = map[m_j] = part[v_jj] always
        // lands in Λ[n_j] ∩ Λ[m_j].
        for ju in 0..n {
            let j = I::from_index(ju);
            let d = self.diag_vertex[ju];
            invariant!(
                d < self.hypergraph.num_vertices(),
                S,
                "diag.in_bounds",
                "diag_vertex[{j}] = {d} out of range"
            );
            invariant!(
                self.coords[d.index()] == (j, j),
                S,
                "diag.coords",
                "diag_vertex[{j}] = {d} sits at {:?}, expected ({j}, {j})",
                self.coords[d.index()]
            );
            invariant!(
                self.hypergraph
                    .pins(self.row_net(j))
                    .binary_search(&d)
                    .is_ok()
                    && self
                        .hypergraph
                        .pins(self.col_net(j))
                        .binary_search(&d)
                        .is_ok(),
                S,
                "fine_grain.consistency",
                "v_{j}{j} (vertex {d}) missing from pins[m_{j}] ∩ pins[n_{j}]"
            );
        }
        Ok(())
    }

    /// Decodes a K-way partition of the fine-grain hypergraph into a 2D
    /// [`Decomposition`]: nonzero `e` goes to `part[v_e]`, and both `x_j`
    /// and `y_j` go to `part[v_jj]` (`map[n_j] = map[m_j] = part[v_jj]`).
    ///
    /// Verifies the paper's consistency claim as a safety check: the
    /// vector owner of `j` must lie in `Λ[n_j] ∩ Λ[m_j]`.
    pub fn decode(&self, a: &CsrMatrix<I>, partition: &Partition) -> Result<Decomposition> {
        if partition.len() != self.hypergraph.num_vertices().index() {
            return Err(ModelError::Invalid(format!(
                "partition covers {} vertices, model has {}",
                partition.len(),
                self.hypergraph.num_vertices()
            )));
        }
        let n = self.n.index();
        let nonzero_owner: Vec<u32> = (0..self.num_real).map(|v| partition.part_at(v)).collect();
        let vec_owner: Vec<u32> = (0..n)
            .map(|j| partition.part_at(self.diag_vertex[j].index()))
            .collect();

        // Consistency check (the paper's Λ[n_j] ∩ Λ[m_j] ∋ part[v_jj]).
        let sets = connectivity_sets(&self.hypergraph, partition);
        for (ju, &owner) in vec_owner.iter().enumerate().take(n) {
            let j = I::from_index(ju);
            let row_set = &sets[self.row_net(j).index()];
            let col_set = &sets[self.col_net(j).index()];
            if row_set.binary_search(&owner).is_err() || col_set.binary_search(&owner).is_err() {
                return Err(ModelError::Invalid(format!(
                    "consistency violated at index {j}: owner {owner} not in Λ[m_{j}] ∩ Λ[n_{j}]"
                )));
            }
        }

        Decomposition::general(a, partition.k(), nonzero_owner, vec_owner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgh_hypergraph::cutsize_connectivity;
    use fgh_sparse::CooMatrix;

    /// The Figure-1 style matrix: 4x4 with full diagonal plus a few
    /// off-diagonals.
    fn sample() -> CsrMatrix {
        CsrMatrix::from_coo(
            CooMatrix::from_triplets(
                4,
                4,
                vec![
                    (0, 0, 1.0),
                    (1, 1, 1.0),
                    (2, 2, 1.0),
                    (3, 3, 1.0),
                    (1, 0, 1.0), // column net n_0 = {v00, v10}
                    (1, 2, 1.0), // row net m_1 = {v10, v11, v12}
                    (3, 1, 1.0),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn dimensions_match_paper() {
        let a = sample();
        let m = FineGrainModel::build(&a).unwrap();
        assert_eq!(m.hypergraph().num_vertices() as usize, a.nnz()); // full diag: no dummies
        assert_eq!(m.hypergraph().num_nets(), 2 * 4);
        assert_eq!(m.num_dummy_vertices(), 0);
        // Each vertex has exactly two nets (its row net and column net).
        for v in 0..m.hypergraph().num_vertices() {
            assert_eq!(m.hypergraph().vertex_degree(v), 2, "vertex {v}");
        }
        // Total pins = 2Z.
        assert_eq!(m.hypergraph().num_pins(), 2 * a.nnz());
    }

    #[test]
    fn net_contents() {
        let a = sample();
        let m = FineGrainModel::build(&a).unwrap();
        // Row net m_1 holds the vertices of nonzeros (1,0), (1,1), (1,2).
        let m1: Vec<(u32, u32)> = m
            .hypergraph()
            .pins(m.row_net(1))
            .iter()
            .map(|&v| m.coords(v))
            .collect();
        assert_eq!(m1, vec![(1, 0), (1, 1), (1, 2)]);
        // Column net n_0 holds (0,0) and (1,0).
        let n0: Vec<(u32, u32)> = m
            .hypergraph()
            .pins(m.col_net(0))
            .iter()
            .map(|&v| m.coords(v))
            .collect();
        assert_eq!(n0, vec![(0, 0), (1, 0)]);
    }

    #[test]
    fn unit_weights_for_real_vertices() {
        let a = sample();
        let m = FineGrainModel::build(&a).unwrap();
        assert_eq!(m.hypergraph().total_vertex_weight(), a.nnz() as u64);
    }

    #[test]
    fn dummy_vertices_for_missing_diagonal() {
        // 3x3 with a_11 = 0 structurally.
        let a: CsrMatrix = CsrMatrix::from_coo(
            CooMatrix::from_triplets(
                3,
                3,
                vec![
                    (0, 0, 1.0),
                    (0, 1, 1.0),
                    (1, 2, 1.0),
                    (2, 2, 1.0),
                    (2, 0, 1.0),
                ],
            )
            .unwrap(),
        );
        let m = FineGrainModel::build(&a).unwrap();
        assert_eq!(m.num_dummy_vertices(), 1);
        let d = m.diag_vertex(1);
        assert_eq!(m.coords(d), (1, 1));
        assert_eq!(m.hypergraph().vertex_weight(d), 0);
        // The dummy pins exactly {m_1, n_1}.
        assert_eq!(m.hypergraph().nets(d), &[m.row_net(1), m.col_net(1)]);
        // Balance unaffected: total weight still Z.
        assert_eq!(m.hypergraph().total_vertex_weight(), a.nnz() as u64);
    }

    #[test]
    fn consistency_condition_holds() {
        let a = sample();
        let m = FineGrainModel::build(&a).unwrap();
        for j in 0..4u32 {
            let d = m.diag_vertex(j);
            assert!(m.hypergraph().pins(m.row_net(j)).contains(&d));
            assert!(m.hypergraph().pins(m.col_net(j)).contains(&d));
        }
    }

    #[test]
    fn decode_produces_symmetric_owners() {
        let a = sample();
        let m = FineGrainModel::build(&a).unwrap();
        // Partition by column parity of the nonzero.
        let parts: Vec<u32> = (0..m.hypergraph().num_vertices())
            .map(|v| m.coords(v).1 % 2)
            .collect();
        let p = Partition::new(2, parts).unwrap();
        let d = m.decode(&a, &p).unwrap();
        for j in 0..4u32 {
            assert_eq!(d.vec_owner[j as usize], j % 2, "x_{j}/y_{j} owner");
        }
        assert_eq!(d.nonzero_owner.len(), a.nnz());
    }

    #[test]
    fn validate_accepts_built_models() {
        FineGrainModel::build(&sample())
            .unwrap()
            .validate()
            .unwrap();
        // With a structural zero on the diagonal (dummy path).
        let a: CsrMatrix = CsrMatrix::from_coo(
            CooMatrix::from_triplets(3, 3, vec![(0, 0, 1.0), (2, 2, 1.0), (0, 2, 1.0)]).unwrap(),
        );
        FineGrainModel::build(&a).unwrap().validate().unwrap();
    }

    #[test]
    fn rectangular_rejected() {
        let a: CsrMatrix =
            CsrMatrix::from_coo(CooMatrix::from_triplets(2, 3, vec![(0, 0, 1.0)]).unwrap());
        assert!(matches!(
            FineGrainModel::build(&a),
            Err(ModelError::NotSquare { .. })
        ));
    }

    #[test]
    fn cutsize_is_zero_for_one_part() {
        let a = sample();
        let m = FineGrainModel::build(&a).unwrap();
        let p = Partition::trivial(m.hypergraph().num_vertices());
        assert_eq!(cutsize_connectivity(m.hypergraph(), &p), 0);
        let d = m.decode(&a, &p).unwrap();
        assert!(d.vec_owner.iter().all(|&o| o == 0));
    }

    #[test]
    fn empty_row_and_column_get_dummy() {
        // Row 1 and column 1 completely empty.
        let a: CsrMatrix = CsrMatrix::from_coo(
            CooMatrix::from_triplets(3, 3, vec![(0, 0, 1.0), (2, 2, 1.0), (0, 2, 1.0)]).unwrap(),
        );
        let m = FineGrainModel::build(&a).unwrap();
        assert_eq!(m.num_dummy_vertices(), 1);
        // Nets m_1 and n_1 contain exactly the dummy.
        assert_eq!(m.hypergraph().net_size(m.row_net(1)), 1);
        assert_eq!(m.hypergraph().net_size(m.col_net(1)), 1);
    }

    #[test]
    fn wide_model_matches_narrow() {
        // The same matrix at both widths must yield structurally identical
        // fine-grain hypergraphs (ids widened, everything else equal).
        let a = sample();
        let a64: CsrMatrix<u64> = a.convert_width().unwrap();
        let m32 = FineGrainModel::build(&a).unwrap();
        let m64 = FineGrainModel::build(&a64).unwrap();
        m64.validate().unwrap();
        assert_eq!(
            m32.hypergraph().num_vertices() as u64,
            m64.hypergraph().num_vertices()
        );
        assert_eq!(m32.num_dummy_vertices(), m64.num_dummy_vertices());
        for net in 0..m32.hypergraph().num_nets() {
            let p32: Vec<u64> = m32
                .hypergraph()
                .pins(net)
                .iter()
                .map(|&v| v as u64)
                .collect();
            assert_eq!(p32, m64.hypergraph().pins(net as u64), "net {net}");
        }
    }
}
