//! The standard graph model — the classic (MeTiS-style) baseline the
//! paper critiques.
//!
//! Vertices are rows; vertex `i` weighs nnz(row `i`). Edges come from the
//! symmetrized pattern `A + Aᵀ` (diagonal dropped) with cost 2 when both
//! `a_ij` and `a_ji` are structurally nonzero and 1 otherwise, so the edge
//! cut *approximates* the expand volume of a row-wise decomposition. The
//! approximation is exact only when every cut edge's `x` value is needed
//! by exactly one extra processor — the flaw (Hendrickson's "emperor"
//! critique) that hypergraph models repair. All reported volumes are
//! therefore recomputed exactly from the decoded decomposition.

use fgh_graph::CsrGraph;
use fgh_sparse::pattern::SymmetrizedPattern;
use fgh_sparse::{CsrMatrix, IndexType};

use crate::decomp::Decomposition;
use crate::{ModelError, Result};

/// The standard graph model of a square sparse matrix.
#[derive(Debug, Clone)]
pub struct StandardGraphModel<I: IndexType = u32> {
    graph: CsrGraph<I>,
    n: I,
}

impl<I: IndexType> StandardGraphModel<I> {
    /// Builds the model from a square matrix.
    pub fn build(a: &CsrMatrix<I>) -> Result<Self> {
        if !a.is_square() {
            return Err(ModelError::NotSquare {
                nrows: a.nrows().as_u64(),
                ncols: a.ncols().as_u64(),
            });
        }
        let n = a.nrows();
        let pat = SymmetrizedPattern::build(a).map_err(|e| ModelError::Invalid(e.to_string()))?;
        let mut edges: Vec<(I, I, u32)> = Vec::with_capacity(pat.num_edges());
        for iu in 0..n.index() {
            let i = I::from_index(iu);
            for (&j, &both) in pat.neighbors(i).iter().zip(pat.neighbor_both_flags(i)) {
                if i < j {
                    edges.push((i, j, if both { 2 } else { 1 }));
                }
            }
        }
        // Saturating weight: a row cannot practically exceed u32::MAX
        // nonzeros, but the big-index path must not wrap.
        let vwgt: Vec<u32> = (0..n.index())
            .map(|i| u32::try_from(a.row_nnz(I::from_index(i))).unwrap_or(u32::MAX))
            .collect();
        let graph = CsrGraph::from_edges(n, &edges, Some(vwgt))
            .map_err(|e| ModelError::Invalid(e.to_string()))?;
        Ok(StandardGraphModel { graph, n })
    }

    /// The underlying weighted graph.
    pub fn graph(&self) -> &CsrGraph<I> {
        &self.graph
    }

    /// Matrix order.
    pub fn n(&self) -> I {
        self.n
    }

    /// Decodes a per-row part vector into a row-wise [`Decomposition`].
    pub fn decode(&self, a: &CsrMatrix<I>, k: u32, parts: &[u32]) -> Result<Decomposition> {
        if parts.len() != self.n.index() {
            return Err(ModelError::Invalid(format!(
                "partition covers {} vertices, model has {}",
                parts.len(),
                self.n
            )));
        }
        Decomposition::rowwise(a, k, parts.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgh_sparse::CooMatrix;

    fn sample() -> CsrMatrix {
        // [ 1 1 0 ]
        // [ 1 1 0 ]
        // [ 1 0 1 ]   (edge 0-1 symmetric, edge 0-2 one-sided)
        CsrMatrix::from_coo(
            CooMatrix::from_triplets(
                3,
                3,
                vec![
                    (0, 0, 1.0),
                    (0, 1, 1.0),
                    (1, 0, 1.0),
                    (1, 1, 1.0),
                    (2, 0, 1.0),
                    (2, 2, 1.0),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn edge_costs_encode_symmetry() {
        let m = StandardGraphModel::build(&sample()).unwrap();
        let g = m.graph();
        assert_eq!(g.n(), 3);
        assert_eq!(g.num_edges(), 2);
        // Edge 0-1 symmetric pair -> cost 2; edge 0-2 one-sided -> cost 1.
        let pos = g.neighbors(0).iter().position(|&u| u == 1).unwrap();
        assert_eq!(g.edge_weights(0)[pos], 2);
        let pos = g.neighbors(0).iter().position(|&u| u == 2).unwrap();
        assert_eq!(g.edge_weights(0)[pos], 1);
    }

    #[test]
    fn vertex_weights_are_row_nnz() {
        let m = StandardGraphModel::build(&sample()).unwrap();
        assert_eq!(m.graph().vertex_weight(0), 2);
        assert_eq!(m.graph().vertex_weight(1), 2);
        assert_eq!(m.graph().vertex_weight(2), 2);
    }

    #[test]
    fn decode_rowwise() {
        let a = sample();
        let m = StandardGraphModel::build(&a).unwrap();
        let d = m.decode(&a, 2, &[0, 0, 1]).unwrap();
        assert_eq!(d.vec_owner, vec![0, 0, 1]);
        assert_eq!(d.loads(), vec![4, 2]);
    }

    #[test]
    fn rectangular_rejected() {
        let a: CsrMatrix =
            CsrMatrix::from_coo(CooMatrix::from_triplets(2, 3, vec![(0, 0, 1.0)]).unwrap());
        assert!(StandardGraphModel::build(&a).is_err());
    }

    #[test]
    fn wide_graph_model_matches_narrow() {
        let a = sample();
        let a64: CsrMatrix<u64> = a.convert_width().unwrap();
        let m32 = StandardGraphModel::build(&a).unwrap();
        let m64 = StandardGraphModel::build(&a64).unwrap();
        assert_eq!(m64.graph().n(), 3u64);
        assert_eq!(m32.graph().num_edges(), m64.graph().num_edges());
        for v in 0..3u32 {
            let n32: Vec<u64> = m32.graph().neighbors(v).iter().map(|&u| u as u64).collect();
            assert_eq!(n32, m64.graph().neighbors(v as u64));
            assert_eq!(
                m32.graph().edge_weights(v),
                m64.graph().edge_weights(v as u64)
            );
            assert_eq!(
                m32.graph().vertex_weight(v),
                m64.graph().vertex_weight(v as u64)
            );
        }
    }
}
