//! The standard graph model — the classic (MeTiS-style) baseline the
//! paper critiques.
//!
//! Vertices are rows; vertex `i` weighs nnz(row `i`). Edges come from the
//! symmetrized pattern `A + Aᵀ` (diagonal dropped) with cost 2 when both
//! `a_ij` and `a_ji` are structurally nonzero and 1 otherwise, so the edge
//! cut *approximates* the expand volume of a row-wise decomposition. The
//! approximation is exact only when every cut edge's `x` value is needed
//! by exactly one extra processor — the flaw (Hendrickson's "emperor"
//! critique) that hypergraph models repair. All reported volumes are
//! therefore recomputed exactly from the decoded decomposition.

use fgh_graph::CsrGraph;
use fgh_sparse::pattern::SymmetrizedPattern;
use fgh_sparse::CsrMatrix;

use crate::decomp::Decomposition;
use crate::{ModelError, Result};

/// The standard graph model of a square sparse matrix.
#[derive(Debug, Clone)]
pub struct StandardGraphModel {
    graph: CsrGraph,
    n: u32,
}

impl StandardGraphModel {
    /// Builds the model from a square matrix.
    pub fn build(a: &CsrMatrix) -> Result<Self> {
        if !a.is_square() {
            return Err(ModelError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        let n = a.nrows();
        let pat = SymmetrizedPattern::build(a).map_err(|e| ModelError::Invalid(e.to_string()))?;
        let mut edges: Vec<(u32, u32, u32)> = Vec::with_capacity(pat.num_edges());
        for i in 0..n {
            for (&j, &both) in pat.neighbors(i).iter().zip(pat.neighbor_both_flags(i)) {
                if i < j {
                    edges.push((i, j, if both { 2 } else { 1 }));
                }
            }
        }
        let vwgt: Vec<u32> = (0..n).map(|i| a.row_nnz(i) as u32).collect(); // lint: checked-cast — row_nnz <= ncols, a u32
        let graph = CsrGraph::from_edges(n, &edges, Some(vwgt))
            .map_err(|e| ModelError::Invalid(e.to_string()))?;
        Ok(StandardGraphModel { graph, n })
    }

    /// The underlying weighted graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Matrix order.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Decodes a per-row part vector into a row-wise [`Decomposition`].
    pub fn decode(&self, a: &CsrMatrix, k: u32, parts: &[u32]) -> Result<Decomposition> {
        if parts.len() != self.n as usize {
            return Err(ModelError::Invalid(format!(
                "partition covers {} vertices, model has {}",
                parts.len(),
                self.n
            )));
        }
        Decomposition::rowwise(a, k, parts.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgh_sparse::CooMatrix;

    fn sample() -> CsrMatrix {
        // [ 1 1 0 ]
        // [ 1 1 0 ]
        // [ 1 0 1 ]   (edge 0-1 symmetric, edge 0-2 one-sided)
        CsrMatrix::from_coo(
            CooMatrix::from_triplets(
                3,
                3,
                vec![
                    (0, 0, 1.0),
                    (0, 1, 1.0),
                    (1, 0, 1.0),
                    (1, 1, 1.0),
                    (2, 0, 1.0),
                    (2, 2, 1.0),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn edge_costs_encode_symmetry() {
        let m = StandardGraphModel::build(&sample()).unwrap();
        let g = m.graph();
        assert_eq!(g.n(), 3);
        assert_eq!(g.num_edges(), 2);
        // Edge 0-1 symmetric pair -> cost 2; edge 0-2 one-sided -> cost 1.
        let pos = g.neighbors(0).iter().position(|&u| u == 1).unwrap();
        assert_eq!(g.edge_weights(0)[pos], 2);
        let pos = g.neighbors(0).iter().position(|&u| u == 2).unwrap();
        assert_eq!(g.edge_weights(0)[pos], 1);
    }

    #[test]
    fn vertex_weights_are_row_nnz() {
        let m = StandardGraphModel::build(&sample()).unwrap();
        assert_eq!(m.graph().vertex_weight(0), 2);
        assert_eq!(m.graph().vertex_weight(1), 2);
        assert_eq!(m.graph().vertex_weight(2), 2);
    }

    #[test]
    fn decode_rowwise() {
        let a = sample();
        let m = StandardGraphModel::build(&a).unwrap();
        let d = m.decode(&a, 2, &[0, 0, 1]).unwrap();
        assert_eq!(d.vec_owner, vec![0, 0, 1]);
        assert_eq!(d.loads(), vec![4, 2]);
    }

    #[test]
    fn rectangular_rejected() {
        let a = CsrMatrix::from_coo(CooMatrix::from_triplets(2, 3, vec![(0, 0, 1.0)]).unwrap());
        assert!(StandardGraphModel::build(&a).is_err());
    }
}
