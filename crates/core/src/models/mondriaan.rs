//! Mondriaan-style recursive 2D decomposition — the best-known follow-on
//! to the fine-grain model (Vastenhouw & Bisseling, 2005, which builds
//! directly on this paper's line of work).
//!
//! Instead of one global fine-grain hypergraph (Z vertices), the *matrix*
//! is bisected recursively: at every step the current nonzero set is split
//! in two balanced halves with a 1D hypergraph model, trying **both** the
//! row direction (column-net model) and the column direction (row-net
//! model) and keeping the better cut. Different submatrices may choose
//! different directions, producing a genuinely 2D ("Mondriaan painting")
//! nonzero partition at 1D-model cost per level.
//!
//! Volume accounting: after the nonzero partition is fixed, `x_j`/`y_j`
//! owners are chosen greedily per index among the parts touching column
//! `j` / row `j` (with the conformality requirement `owner(x_j) =
//! owner(y_j)` of symmetric partitioning), and the exact volume comes from
//! [`crate::CommStats`] like every other model.

use fgh_hypergraph::{Hypergraph, HypergraphBuilder};
use fgh_partition::{EngineStats, MultilevelDriver, PartitionConfig};
use fgh_sparse::CsrMatrix;
use fgh_trace::SpanHandle;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::decomp::Decomposition;
use crate::{ModelError, Result};

/// One nonzero as a coordinate pair (CSR order is preserved separately).
type Coord = (u32, u32);

/// Mondriaan-style recursive matrix bisection.
#[derive(Debug, Clone)]
pub struct MondriaanModel {
    k: u32,
    epsilon: f64,
}

impl MondriaanModel {
    /// Creates a model targeting `k` parts with imbalance `epsilon`.
    pub fn new(k: u32, epsilon: f64) -> Self {
        MondriaanModel { k, epsilon }
    }

    /// Decomposes `a`, returning the 2D [`Decomposition`].
    pub fn decompose(&self, a: &CsrMatrix, cfg: &PartitionConfig) -> Result<Decomposition> {
        self.decompose_traced(a, cfg, &SpanHandle::noop())
            .map(|(d, _)| d)
    }

    /// [`MondriaanModel::decompose`] with engine instrumentation and trace
    /// recording. All matrix bisections run on **one** reused
    /// [`MultilevelDriver`], so the returned [`EngineStats`] aggregate the
    /// whole recursion (every level's coarsening/FM work, summed). Under
    /// an enabled `parent` scope each recursion node records a
    /// `bisect[part_lo]` span with the cuts of both candidate directions.
    pub fn decompose_traced(
        &self,
        a: &CsrMatrix,
        cfg: &PartitionConfig,
        parent: &SpanHandle,
    ) -> Result<(Decomposition, EngineStats)> {
        if !a.is_square() {
            return Err(ModelError::NotSquare {
                nrows: u64::from(a.nrows()),
                ncols: u64::from(a.ncols()),
            });
        }
        if self.k == 0 {
            return Err(ModelError::Invalid("K must be >= 1".into()));
        }
        let coords: Vec<Coord> = a.iter().map(|(i, j, _)| (i, j)).collect();
        let mut owner = vec![0u32; coords.len()];
        let mut stats = EngineStats::default();
        if self.k > 1 && !coords.is_empty() {
            let mut rng = SmallRng::seed_from_u64(cfg.seed);
            let eps = per_level_epsilon(self.epsilon, self.k);
            let ids: Vec<u32> = (0..coords.len() as u32).collect(); // lint: checked-cast — coords.len() <= nnz, u32-bounded
            let mut driver = MultilevelDriver::new(cfg.clone());
            recurse(
                &coords,
                &ids,
                self.k,
                0,
                eps,
                &mut driver,
                &mut rng,
                &mut owner,
                parent,
            );
            stats = driver.stats();
        }

        // Conformal vector owners: for each index j, pick the part with the
        // most nonzeros in row j + column j among the touching parts
        // (greedy volume minimization for the decode step).
        let n = a.nrows() as usize;
        let mut counts: Vec<std::collections::HashMap<u32, u32>> =
            vec![std::collections::HashMap::new(); n];
        for (e, &(i, j)) in coords.iter().enumerate() {
            *counts[i as usize].entry(owner[e]).or_insert(0) += 1;
            if i != j {
                *counts[j as usize].entry(owner[e]).or_insert(0) += 1;
            }
        }
        let vec_owner: Vec<u32> = counts
            .iter()
            .map(|c| {
                c.iter()
                    .max_by_key(|&(&p, &cnt)| (cnt, std::cmp::Reverse(p)))
                    .map(|(&p, _)| p)
                    .unwrap_or(0)
            })
            .collect();

        Ok((Decomposition::general(a, self.k, owner, vec_owner)?, stats))
    }
}

fn per_level_epsilon(epsilon: f64, k: u32) -> f64 {
    if k <= 2 {
        return epsilon;
    }
    let d = (k as f64).log2().ceil();
    (1.0 + epsilon).powf(1.0 / d) - 1.0
}

/// Builds the 1D hypergraph of a nonzero subset in one direction:
/// `by_rows = true` means vertices are the rows present in the subset and
/// nets are its columns (column-net model restricted to the submatrix).
/// Returns (hypergraph, group id per nonzero = local vertex of its
/// row/column).
fn directional_hypergraph(coords: &[Coord], ids: &[u32], by_rows: bool) -> (Hypergraph, Vec<u32>) {
    use std::collections::HashMap;
    let mut group_of: HashMap<u32, u32> = HashMap::new(); // row (or col) -> vertex
    let mut weights: Vec<u32> = Vec::new();
    let mut nets_of: std::collections::BTreeMap<u32, Vec<u32>> = Default::default(); // col (or row) -> pins
    let mut nz_group: Vec<u32> = Vec::with_capacity(ids.len());
    for &e in ids {
        let (i, j) = coords[e as usize];
        let (g_key, n_key) = if by_rows { (i, j) } else { (j, i) };
        let g = match group_of.get(&g_key) {
            Some(&g) => {
                weights[g as usize] += 1;
                g
            }
            None => {
                let g = weights.len() as u32; // lint: checked-cast — vertex count <= nnz, u32-bounded
                group_of.insert(g_key, g);
                weights.push(1);
                g
            }
        };
        nz_group.push(g);
        let pins = nets_of.entry(n_key).or_default();
        if pins.last() != Some(&g) && !pins.contains(&g) {
            pins.push(g);
        }
    }
    let mut builder = HypergraphBuilder::new();
    for &w in &weights {
        builder.add_vertex(w);
    }
    for (_, pins) in nets_of {
        builder.add_net(pins);
    }
    // Infallible: every pin is a group id in `0..weights.len()`, and
    // exactly that many vertices were added above, so `build` cannot fail.
    #[allow(clippy::expect_used)]
    let hg = builder.build().expect("pins in range by construction");
    (hg, nz_group)
}

/// Bisects a nonzero subset in one direction; returns (side per nonzero
/// of `ids`, cut). `targets` are nonzero-count targets.
fn bisect_direction(
    coords: &[Coord],
    ids: &[u32],
    by_rows: bool,
    targets: [f64; 2],
    eps: f64,
    driver: &mut MultilevelDriver,
    rng: &mut SmallRng,
) -> (Vec<u8>, u64) {
    let (hg, nz_group) = directional_hypergraph(coords, ids, by_rows);
    let fixed = vec![-1i8; hg.num_vertices() as usize];
    let (sides, cut) = driver.bisect(&hg, &fixed, targets, eps, rng);
    let nz_sides: Vec<u8> = nz_group.iter().map(|&g| sides[g as usize]).collect();
    (nz_sides, cut)
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    coords: &[Coord],
    ids: &[u32],
    k: u32,
    part_lo: u32,
    eps: f64,
    driver: &mut MultilevelDriver,
    rng: &mut SmallRng,
    out: &mut [u32],
    span: &SpanHandle,
) {
    if k == 1 {
        for &e in ids {
            out[e as usize] = part_lo;
        }
        return;
    }
    let bspan = span.child_indexed("bisect", part_lo as u64);
    let scope = bspan.handle();
    driver.set_trace_parent(scope.clone());
    let k0 = k.div_ceil(2);
    let k1 = k - k0;
    let total = ids.len() as f64;
    let targets = [total * k0 as f64 / k as f64, total * k1 as f64 / k as f64];

    // Try both split directions; keep the smaller cut (Mondriaan's rule).
    let (sides_r, cut_r) = bisect_direction(coords, ids, true, targets, eps, driver, rng);
    let (sides_c, cut_c) = bisect_direction(coords, ids, false, targets, eps, driver, rng);
    let sides = if cut_r <= cut_c { sides_r } else { sides_c };
    if bspan.is_enabled() {
        bspan.counter("nonzeros", ids.len() as u64);
        bspan.counter("cut_rowwise", cut_r);
        bspan.counter("cut_colwise", cut_c);
    }

    for side in [0u8, 1u8] {
        let child_ids: Vec<u32> = ids
            .iter()
            .zip(&sides)
            .filter(|&(_, &s)| s == side)
            .map(|(&e, _)| e)
            .collect();
        let (kk, lo) = if side == 0 {
            (k0, part_lo)
        } else {
            (k1, part_lo + k0)
        };
        recurse(coords, &child_ids, kk, lo, eps, driver, rng, out, &scope);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::CommStats;
    use fgh_sparse::gen::{self, ValueMode};

    fn matrix() -> CsrMatrix {
        gen::scale_free(
            200,
            2.5,
            ValueMode::Laplacian,
            &mut SmallRng::seed_from_u64(2),
        )
    }

    #[test]
    fn decompose_valid_and_balanced() {
        let a = matrix();
        let m = MondriaanModel::new(4, 0.03);
        let d = m.decompose(&a, &PartitionConfig::with_seed(1)).unwrap();
        d.validate(&a).unwrap();
        assert!(
            d.load_imbalance_percent() <= 6.0,
            "imbalance {}%",
            d.load_imbalance_percent()
        );
    }

    #[test]
    fn k1_trivial() {
        let a = matrix();
        let m = MondriaanModel::new(1, 0.03);
        let d = m.decompose(&a, &PartitionConfig::default()).unwrap();
        assert!(d.nonzero_owner.iter().all(|&p| p == 0));
        let s = CommStats::compute(&a, &d).unwrap();
        assert_eq!(s.total_volume(), 0);
    }

    #[test]
    fn beats_or_matches_pure_1d() {
        // Averaged over seeds, direction-adaptive recursive bisection
        // should not lose badly to a fixed row-wise 1D decomposition.
        let a = matrix();
        let mut mond = 0u64;
        let mut oned = 0u64;
        for seed in 0..3u64 {
            let m = MondriaanModel::new(8, 0.03);
            let d = m.decompose(&a, &PartitionConfig::with_seed(seed)).unwrap();
            mond += CommStats::compute(&a, &d).unwrap().total_volume();
            let out = crate::workload::decompose_workload(
                crate::workload::Workload::Spmv(&a),
                &crate::api::DecomposeConfig::new(crate::api::Model::Hypergraph1DColNet, 8)
                    .with_seed(seed),
            )
            .unwrap()
            .into_spmv()
            .unwrap();
            oned += out.stats.total_volume();
        }
        assert!(
            mond as f64 <= oned as f64 * 1.25,
            "mondriaan {mond} should be near/below 1D {oned}"
        );
    }

    #[test]
    fn directional_hypergraph_structure() {
        // 2 nonzeros in the same row -> one vertex of weight 2 (by rows).
        let coords = vec![(0u32, 1u32), (0, 2), (1, 2)];
        let ids = vec![0u32, 1, 2];
        let (hg, groups) = directional_hypergraph(&coords, &ids, true);
        assert_eq!(hg.num_vertices(), 2);
        assert_eq!(groups[0], groups[1]);
        assert_ne!(groups[0], groups[2]);
        // Column 2 net connects both row-vertices.
        let has_two_pin_net = (0..hg.num_nets()).any(|n| hg.net_size(n) == 2);
        assert!(has_two_pin_net);
        // Weights: row 0 vertex weighs 2 (two nonzeros), row 1 weighs 1.
        assert_eq!(hg.total_vertex_weight(), 3);
    }

    #[test]
    fn rectangular_rejected() {
        let a = CsrMatrix::from_coo(
            fgh_sparse::CooMatrix::from_triplets(2, 3, vec![(0, 0, 1.0)]).unwrap(),
        );
        assert!(MondriaanModel::new(2, 0.03)
            .decompose(&a, &PartitionConfig::default())
            .is_err());
    }

    #[test]
    fn determinism() {
        let a = matrix();
        let m = MondriaanModel::new(4, 0.03);
        let d1 = m.decompose(&a, &PartitionConfig::with_seed(9)).unwrap();
        let d2 = m.decompose(&a, &PartitionConfig::with_seed(9)).unwrap();
        assert_eq!(d1, d2);
    }
}
