//! Decomposition models: the fine-grain 2D hypergraph model (the paper's
//! contribution) and the 1D baselines it is evaluated against.

pub mod checkerboard;
pub mod checkerboard_hg;
pub mod fine_grain;
pub mod graph_model;
pub mod jagged;
pub mod mondriaan;
pub mod oned;

pub use checkerboard::CheckerboardModel;
pub use checkerboard_hg::CheckerboardHgModel;
pub use fine_grain::FineGrainModel;
pub use graph_model::StandardGraphModel;
pub use jagged::JaggedModel;
pub use mondriaan::MondriaanModel;
pub use oned::{ColumnNetModel, RowNetModel};
