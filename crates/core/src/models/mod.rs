//! Decomposition models: the fine-grain 2D hypergraph model (the paper's
//! contribution), the 1D baselines it is evaluated against, and the
//! fine-grain SpGEMM extension (one vertex per multiply task of
//! `C = A · B`).

pub mod checkerboard;
pub mod checkerboard_hg;
pub mod fine_grain;
pub mod graph_model;
pub mod jagged;
pub mod mondriaan;
pub mod oned;
pub mod spgemm;

pub use checkerboard::CheckerboardModel;
pub use checkerboard_hg::CheckerboardHgModel;
pub use fine_grain::FineGrainModel;
pub use graph_model::StandardGraphModel;
pub use jagged::JaggedModel;
pub use mondriaan::MondriaanModel;
pub use oned::{ColumnNetModel, RowNetModel};
pub use spgemm::{
    spgemm_flops, SpgemmCommStats, SpgemmDecomposition, SpgemmModel, SpgemmStructure,
};
