//! Checkerboard 2D decomposition — the *existing* 2D scheme the paper
//! contrasts with (Hendrickson–Leland–Plimpton and Lewis–van de Geijn
//! style).
//!
//! Processors form a `P x Q` grid. Rows are split into `P` contiguous
//! blocks (balanced by row nonzero counts), columns into `Q` contiguous
//! blocks; nonzero `(i, j)` goes to processor `(rowblock(i),
//! colblock(j))`. Communication is structured (expands stay within
//! processor columns, folds within processor rows, bounding messages by
//! `P + Q - 2` per processor) but, as the paper notes, the scheme makes
//! **no explicit effort to reduce communication volume** — which is
//! exactly what the fine-grain model fixes. Included as the natural 2D
//! baseline for ablation benchmarks.

use fgh_sparse::CsrMatrix;

use crate::decomp::Decomposition;
use crate::{ModelError, Result};

/// A checkerboard decomposition on a `P x Q` processor grid.
#[derive(Debug, Clone)]
pub struct CheckerboardModel {
    p: u32,
    q: u32,
    /// Row block id of each row (0..P).
    row_block: Vec<u32>,
    /// Column block id of each column (0..Q).
    col_block: Vec<u32>,
}

impl CheckerboardModel {
    /// Builds a checkerboard decomposition of `a` on a near-square
    /// processor grid with `k` processors (`k = P * Q` with `P <= Q`,
    /// `P` the largest divisor of `k` with `P <= sqrt(k)`).
    pub fn build(a: &CsrMatrix, k: u32) -> Result<Self> {
        let (p, q) = grid_shape(k);
        Self::build_grid(a, p, q)
    }

    /// Builds on an explicit `p x q` grid.
    pub fn build_grid(a: &CsrMatrix, p: u32, q: u32) -> Result<Self> {
        if !a.is_square() {
            return Err(ModelError::NotSquare {
                nrows: u64::from(a.nrows()),
                ncols: u64::from(a.ncols()),
            });
        }
        if p == 0 || q == 0 {
            return Err(ModelError::Invalid("grid dimensions must be >= 1".into()));
        }
        let n = a.nrows();
        let row_weights: Vec<u64> = (0..n).map(|i| a.row_nnz(i) as u64).collect();
        let mut col_weights = vec![0u64; n as usize];
        for &j in a.col_idx() {
            col_weights[j as usize] += 1;
        }
        let row_block = contiguous_blocks(&row_weights, p);
        let col_block = contiguous_blocks(&col_weights, q);
        Ok(CheckerboardModel {
            p,
            q,
            row_block,
            col_block,
        })
    }

    /// Grid height P.
    pub fn p(&self) -> u32 {
        self.p
    }

    /// Grid width Q.
    pub fn q(&self) -> u32 {
        self.q
    }

    /// Processor of nonzero `(i, j)`.
    pub fn owner(&self, i: u32, j: u32) -> u32 {
        self.row_block[i as usize] * self.q + self.col_block[j as usize]
    }

    /// Decodes into a [`Decomposition`]: vectors conform to the diagonal
    /// blocks (`x_j`, `y_j` on processor `(rowblock(j), colblock(j))`).
    pub fn decode(&self, a: &CsrMatrix) -> Result<Decomposition> {
        let k = self.p * self.q;
        let nonzero_owner: Vec<u32> = a.iter().map(|(i, j, _)| self.owner(i, j)).collect();
        let vec_owner: Vec<u32> = (0..a.nrows()).map(|j| self.owner(j, j)).collect();
        Decomposition::general(a, k, nonzero_owner, vec_owner)
    }
}

/// Near-square factorization of `k`: the largest divisor `p <= sqrt(k)`.
pub fn grid_shape(k: u32) -> (u32, u32) {
    let mut p = (k as f64).sqrt().floor() as u32; // lint: checked-cast — floor(sqrt(k)) <= k, a u32
    while p > 1 && !k.is_multiple_of(p) {
        p -= 1;
    }
    (p.max(1), k / p.max(1))
}

/// Splits `0..weights.len()` into `blocks` contiguous chunks with greedily
/// balanced weight; returns the block id of every index. Trailing blocks
/// may be empty only when there are more blocks than indices.
fn contiguous_blocks(weights: &[u64], blocks: u32) -> Vec<u32> {
    let n = weights.len();
    let total: u64 = weights.iter().sum();
    let mut ids = vec![0u32; n];
    let mut acc = 0u64;
    let mut b = 0u32;
    let remaining_slots = |b: u32| blocks - b;
    for (i, &w) in weights.iter().enumerate() {
        // Close the block when its share is met, keeping enough indices
        // for the remaining blocks.
        let target = total * (b as u64 + 1) / blocks as u64;
        let room = (n - i) as u32; // lint: checked-cast — n - i <= nrows, a u32
        if b + 1 < blocks && acc >= target.max(1) && room >= remaining_slots(b + 1) {
            b += 1;
        }
        ids[i] = b;
        acc += w;
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::CommStats;
    use fgh_sparse::gen::{self, ValueMode};
    use fgh_sparse::CooMatrix;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn grid_shapes() {
        assert_eq!(grid_shape(16), (4, 4));
        assert_eq!(grid_shape(32), (4, 8));
        assert_eq!(grid_shape(64), (8, 8));
        assert_eq!(grid_shape(7), (1, 7));
        assert_eq!(grid_shape(12), (3, 4));
        assert_eq!(grid_shape(1), (1, 1));
    }

    #[test]
    fn contiguous_blocks_cover_and_are_monotone() {
        let ids = contiguous_blocks(&[1, 1, 1, 1, 1, 1, 1, 1], 4);
        assert_eq!(ids, vec![0, 0, 1, 1, 2, 2, 3, 3]);
        let ids = contiguous_blocks(&[10, 1, 1, 1, 1], 2);
        assert_eq!(ids[0], 0);
        assert!(ids.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*ids.last().unwrap(), 1);
    }

    #[test]
    fn owner_layout() {
        let a = CsrMatrix::identity(8);
        let m = CheckerboardModel::build_grid(&a, 2, 2).unwrap();
        // Rows 0-3 block 0, 4-7 block 1 (unit weights); same for columns.
        assert_eq!(m.owner(0, 0), 0);
        assert_eq!(m.owner(0, 7), 1);
        assert_eq!(m.owner(7, 0), 2);
        assert_eq!(m.owner(7, 7), 3);
    }

    #[test]
    fn decode_is_valid_and_conformal() {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = gen::grid5(12, 12, 1.0, ValueMode::Ones, &mut rng);
        let m = CheckerboardModel::build(&a, 4).unwrap();
        let d = m.decode(&a).unwrap();
        d.validate(&a).unwrap();
        // Diagonal nonzeros live with their vector entries.
        for (e, (i, j, _)) in a.iter().enumerate() {
            if i == j {
                assert_eq!(d.nonzero_owner[e], d.vec_owner[i as usize]);
            }
        }
    }

    #[test]
    fn message_bound_p_plus_q_minus_2() {
        let mut rng = SmallRng::seed_from_u64(2);
        let a = gen::scale_free(300, 3.0, ValueMode::Ones, &mut rng);
        let m = CheckerboardModel::build(&a, 16).unwrap();
        let d = m.decode(&a).unwrap();
        let s = CommStats::compute(&a, &d).unwrap();
        // Expands stay in processor columns (<= P-1 destinations), folds in
        // processor rows (<= Q-1): sends bounded by (P-1) + (Q-1).
        let bound = (m.p() - 1 + m.q() - 1) as u64;
        assert!(
            s.max_messages_per_proc() <= bound,
            "max msgs {} > bound {bound}",
            s.max_messages_per_proc()
        );
    }

    #[test]
    fn k1_no_comm() {
        let a = CsrMatrix::identity(5);
        let m = CheckerboardModel::build(&a, 1).unwrap();
        let d = m.decode(&a).unwrap();
        let s = CommStats::compute(&a, &d).unwrap();
        assert_eq!(s.total_volume(), 0);
    }

    #[test]
    fn balanced_on_dense_patterns_poor_on_banded() {
        // Checkerboard is designed for dense-like patterns: there the
        // row-block x col-block product balances well...
        let mut rng = SmallRng::seed_from_u64(3);
        let dense = gen::random_general(60, 60, 2400, true, &mut rng);
        let m = CheckerboardModel::build(&dense, 9).unwrap();
        let d = m.decode(&dense).unwrap();
        assert!(
            d.load_imbalance_percent() < 30.0,
            "dense imbalance {}%",
            d.load_imbalance_percent()
        );
        // ...but on a banded matrix the diagonal blocks soak up all the
        // load — the structural weakness the paper points out in §1.
        let banded = gen::grid5(30, 30, 1.0, ValueMode::Ones, &mut rng);
        let m = CheckerboardModel::build(&banded, 9).unwrap();
        let d = m.decode(&banded).unwrap();
        assert!(
            d.load_imbalance_percent() > 60.0,
            "banded imbalance unexpectedly good: {}%",
            d.load_imbalance_percent()
        );
    }

    #[test]
    fn rectangular_rejected() {
        let a = CsrMatrix::from_coo(CooMatrix::from_triplets(2, 3, vec![(0, 0, 1.0)]).unwrap());
        assert!(CheckerboardModel::build(&a, 4).is_err());
    }
}
