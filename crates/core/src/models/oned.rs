//! The 1D hypergraph models of Çatalyürek & Aykanat (TPDS 1999): the
//! column-net model for row-wise decomposition and the row-net model for
//! column-wise decomposition.
//!
//! Column-net model: vertex `v_i` = row `i` with weight = nnz(row `i`)
//! (its multiply-add work); net `n_j` = column `j` with pins
//! `{v_i : a_ij ≠ 0} ∪ {v_j}` — the extra pin `v_j` is the consistency
//! term that ties `x_j` to the owner of row `j` under symmetric
//! partitioning. The connectivity−1 cutsize then equals the expand volume
//! (row-wise SpMV has no fold communication).

use fgh_hypergraph::{Hypergraph, HypergraphBuilder, Partition};
use fgh_sparse::CsrMatrix;

use crate::decomp::Decomposition;
use crate::{ModelError, Result};

/// The 1D column-net hypergraph model (row-wise decomposition).
#[derive(Debug, Clone)]
pub struct ColumnNetModel {
    hypergraph: Hypergraph,
    n: u32,
}

impl ColumnNetModel {
    /// Builds the column-net model of a square matrix.
    pub fn build(a: &CsrMatrix) -> Result<Self> {
        if !a.is_square() {
            return Err(ModelError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        let n = a.nrows();
        let mut builder = HypergraphBuilder::new();
        for i in 0..n {
            builder.add_vertex(a.row_nnz(i) as u32); // lint: checked-cast — row_nnz <= ncols, a u32
        }
        let csc = a.to_csc();
        for j in 0..n {
            let mut pins: Vec<u32> = csc.col_rows(j).to_vec();
            if !pins.contains(&j) {
                pins.push(j); // consistency pin
            }
            builder.add_net(pins);
        }
        Ok(ColumnNetModel {
            hypergraph: builder.build()?,
            n,
        })
    }

    /// The underlying hypergraph (M vertices, M nets).
    pub fn hypergraph(&self) -> &Hypergraph {
        &self.hypergraph
    }

    /// Matrix order.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Decodes a partition (vertex `i` = row `i`) into a row-wise
    /// [`Decomposition`].
    pub fn decode(&self, a: &CsrMatrix, partition: &Partition) -> Result<Decomposition> {
        if partition.len() != self.n as usize {
            return Err(ModelError::Invalid(format!(
                "partition covers {} vertices, model has {}",
                partition.len(),
                self.n
            )));
        }
        Decomposition::rowwise(a, partition.k(), partition.parts().to_vec())
    }
}

/// The 1D row-net hypergraph model (column-wise decomposition): the exact
/// dual of [`ColumnNetModel`] — vertex `v_j` = column `j` weighted by
/// nnz(col `j`), net `m_i` = row `i` with the consistency pin `v_i`. The
/// connectivity−1 cutsize equals the fold volume (column-wise SpMV has no
/// expand communication).
#[derive(Debug, Clone)]
pub struct RowNetModel {
    hypergraph: Hypergraph,
    n: u32,
}

impl RowNetModel {
    /// Builds the row-net model of a square matrix.
    pub fn build(a: &CsrMatrix) -> Result<Self> {
        if !a.is_square() {
            return Err(ModelError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        let n = a.nrows();
        let csc = a.to_csc();
        let mut builder = HypergraphBuilder::new();
        for j in 0..n {
            builder.add_vertex(csc.col_nnz(j) as u32); // lint: checked-cast — col_nnz <= nrows, a u32
        }
        for i in 0..n {
            let mut pins: Vec<u32> = a.row_cols(i).to_vec();
            if !pins.contains(&i) {
                pins.push(i); // consistency pin
            }
            builder.add_net(pins);
        }
        Ok(RowNetModel {
            hypergraph: builder.build()?,
            n,
        })
    }

    /// The underlying hypergraph (M vertices, M nets).
    pub fn hypergraph(&self) -> &Hypergraph {
        &self.hypergraph
    }

    /// Matrix order.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Decodes a partition (vertex `j` = column `j`) into a column-wise
    /// [`Decomposition`].
    pub fn decode(&self, a: &CsrMatrix, partition: &Partition) -> Result<Decomposition> {
        if partition.len() != self.n as usize {
            return Err(ModelError::Invalid(format!(
                "partition covers {} vertices, model has {}",
                partition.len(),
                self.n
            )));
        }
        Decomposition::columnwise(a, partition.k(), partition.parts().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgh_sparse::CooMatrix;

    fn sample() -> CsrMatrix {
        // [ 1 1 0 ]
        // [ 0 1 0 ]
        // [ 1 0 1 ]
        CsrMatrix::from_coo(
            CooMatrix::from_triplets(
                3,
                3,
                vec![
                    (0, 0, 1.0),
                    (0, 1, 1.0),
                    (1, 1, 1.0),
                    (2, 0, 1.0),
                    (2, 2, 1.0),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn colnet_structure() {
        let a = sample();
        let m = ColumnNetModel::build(&a).unwrap();
        assert_eq!(m.hypergraph().num_vertices(), 3);
        assert_eq!(m.hypergraph().num_nets(), 3);
        // Net for column 0: rows {0, 2} (0 is also the consistency pin).
        assert_eq!(m.hypergraph().pins(0), &[0, 2]);
        // Net for column 2: row {2} only.
        assert_eq!(m.hypergraph().pins(2), &[2]);
        // Vertex weights = row nnz.
        assert_eq!(m.hypergraph().vertex_weight(0), 2);
        assert_eq!(m.hypergraph().vertex_weight(1), 1);
    }

    #[test]
    fn colnet_consistency_pin_added_when_diag_missing() {
        // a_00 = 0 but column 0 has nonzeros in rows 1, 2.
        let a = CsrMatrix::from_coo(
            CooMatrix::from_triplets(3, 3, vec![(1, 0, 1.0), (2, 0, 1.0), (0, 1, 1.0)]).unwrap(),
        );
        let m = ColumnNetModel::build(&a).unwrap();
        // Column-net 0 must include vertex 0 (the consistency pin).
        assert_eq!(m.hypergraph().pins(0), &[0, 1, 2]);
    }

    #[test]
    fn rownet_is_dual_of_colnet_on_transpose() {
        let a = sample();
        let rn = RowNetModel::build(&a).unwrap();
        let cn_t = ColumnNetModel::build(&a.transpose()).unwrap();
        // Same structure: vertices/nets/pins coincide.
        assert_eq!(
            rn.hypergraph().num_vertices(),
            cn_t.hypergraph().num_vertices()
        );
        for net in 0..rn.hypergraph().num_nets() {
            assert_eq!(rn.hypergraph().pins(net), cn_t.hypergraph().pins(net));
        }
        for v in 0..rn.hypergraph().num_vertices() {
            assert_eq!(
                rn.hypergraph().vertex_weight(v),
                cn_t.hypergraph().vertex_weight(v)
            );
        }
    }

    #[test]
    fn decode_rowwise() {
        let a = sample();
        let m = ColumnNetModel::build(&a).unwrap();
        let p = Partition::new(2, vec![0, 1, 0]).unwrap();
        let d = m.decode(&a, &p).unwrap();
        assert_eq!(d.vec_owner, vec![0, 1, 0]);
        // Nonzeros follow their rows (CSR order).
        assert_eq!(d.nonzero_owner, vec![0, 0, 1, 0, 0]);
    }

    #[test]
    fn decode_columnwise() {
        let a = sample();
        let m = RowNetModel::build(&a).unwrap();
        let p = Partition::new(2, vec![1, 0, 1]).unwrap();
        let d = m.decode(&a, &p).unwrap();
        assert_eq!(d.vec_owner, vec![1, 0, 1]);
        assert_eq!(d.nonzero_owner, vec![1, 0, 0, 1, 1]);
    }

    #[test]
    fn rectangular_rejected() {
        let a = CsrMatrix::from_coo(CooMatrix::from_triplets(2, 3, vec![(0, 0, 1.0)]).unwrap());
        assert!(ColumnNetModel::build(&a).is_err());
        assert!(RowNetModel::build(&a).is_err());
    }

    #[test]
    fn wrong_partition_size_rejected() {
        let a = sample();
        let m = ColumnNetModel::build(&a).unwrap();
        let p = Partition::new(2, vec![0, 1]).unwrap();
        assert!(m.decode(&a, &p).is_err());
    }
}
