//! The 1D hypergraph models of Çatalyürek & Aykanat (TPDS 1999): the
//! column-net model for row-wise decomposition and the row-net model for
//! column-wise decomposition.
//!
//! Column-net model: vertex `v_i` = row `i` with weight = nnz(row `i`)
//! (its multiply-add work); net `n_j` = column `j` with pins
//! `{v_i : a_ij ≠ 0} ∪ {v_j}` — the extra pin `v_j` is the consistency
//! term that ties `x_j` to the owner of row `j` under symmetric
//! partitioning. The connectivity−1 cutsize then equals the expand volume
//! (row-wise SpMV has no fold communication).
//!
//! Both models are generic over the index width (`M` vertices and nets
//! track the matrix order directly, so they go wide exactly when the
//! matrix does).

use fgh_hypergraph::{Hypergraph, HypergraphBuilder, Partition};
use fgh_sparse::{CsrMatrix, IndexType};

use crate::decomp::Decomposition;
use crate::{ModelError, Result};

/// Per-row/column work weight, saturated into the `u32` the hypergraph
/// carries (a single row holding > 4B nonzeros is beyond any practical
/// input, but the big-index path must not wrap).
fn weight_of(nnz: usize) -> u32 {
    u32::try_from(nnz).unwrap_or(u32::MAX)
}

/// The 1D column-net hypergraph model (row-wise decomposition).
#[derive(Debug, Clone)]
pub struct ColumnNetModel<I: IndexType = u32> {
    hypergraph: Hypergraph<I>,
    n: I,
}

impl<I: IndexType> ColumnNetModel<I> {
    /// Builds the column-net model of a square matrix.
    pub fn build(a: &CsrMatrix<I>) -> Result<Self> {
        if !a.is_square() {
            return Err(ModelError::NotSquare {
                nrows: a.nrows().as_u64(),
                ncols: a.ncols().as_u64(),
            });
        }
        let n = a.nrows().index();
        let mut builder = HypergraphBuilder::<I>::new();
        for i in 0..n {
            builder.add_vertex(weight_of(a.row_nnz(I::from_index(i))));
        }
        let csc = a.to_csc();
        for ju in 0..n {
            let j = I::from_index(ju);
            let mut pins: Vec<I> = csc.col_rows(j).to_vec();
            if !pins.contains(&j) {
                pins.push(j); // consistency pin
            }
            builder.add_net(pins);
        }
        Ok(ColumnNetModel {
            hypergraph: builder.build()?,
            n: a.nrows(),
        })
    }

    /// The underlying hypergraph (M vertices, M nets).
    pub fn hypergraph(&self) -> &Hypergraph<I> {
        &self.hypergraph
    }

    /// Matrix order.
    pub fn n(&self) -> I {
        self.n
    }

    /// Decodes a partition (vertex `i` = row `i`) into a row-wise
    /// [`Decomposition`].
    pub fn decode(&self, a: &CsrMatrix<I>, partition: &Partition) -> Result<Decomposition> {
        if partition.len() != self.n.index() {
            return Err(ModelError::Invalid(format!(
                "partition covers {} vertices, model has {}",
                partition.len(),
                self.n
            )));
        }
        Decomposition::rowwise(a, partition.k(), partition.parts().to_vec())
    }
}

/// The 1D row-net hypergraph model (column-wise decomposition): the exact
/// dual of [`ColumnNetModel`] — vertex `v_j` = column `j` weighted by
/// nnz(col `j`), net `m_i` = row `i` with the consistency pin `v_i`. The
/// connectivity−1 cutsize equals the fold volume (column-wise SpMV has no
/// expand communication).
#[derive(Debug, Clone)]
pub struct RowNetModel<I: IndexType = u32> {
    hypergraph: Hypergraph<I>,
    n: I,
}

impl<I: IndexType> RowNetModel<I> {
    /// Builds the row-net model of a square matrix.
    pub fn build(a: &CsrMatrix<I>) -> Result<Self> {
        if !a.is_square() {
            return Err(ModelError::NotSquare {
                nrows: a.nrows().as_u64(),
                ncols: a.ncols().as_u64(),
            });
        }
        let n = a.nrows().index();
        let csc = a.to_csc();
        let mut builder = HypergraphBuilder::<I>::new();
        for j in 0..n {
            builder.add_vertex(weight_of(csc.col_nnz(I::from_index(j))));
        }
        for iu in 0..n {
            let i = I::from_index(iu);
            let mut pins: Vec<I> = a.row_cols(i).to_vec();
            if !pins.contains(&i) {
                pins.push(i); // consistency pin
            }
            builder.add_net(pins);
        }
        Ok(RowNetModel {
            hypergraph: builder.build()?,
            n: a.nrows(),
        })
    }

    /// The underlying hypergraph (M vertices, M nets).
    pub fn hypergraph(&self) -> &Hypergraph<I> {
        &self.hypergraph
    }

    /// Matrix order.
    pub fn n(&self) -> I {
        self.n
    }

    /// Decodes a partition (vertex `j` = column `j`) into a column-wise
    /// [`Decomposition`].
    pub fn decode(&self, a: &CsrMatrix<I>, partition: &Partition) -> Result<Decomposition> {
        if partition.len() != self.n.index() {
            return Err(ModelError::Invalid(format!(
                "partition covers {} vertices, model has {}",
                partition.len(),
                self.n
            )));
        }
        Decomposition::columnwise(a, partition.k(), partition.parts().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgh_sparse::CooMatrix;

    fn sample() -> CsrMatrix {
        // [ 1 1 0 ]
        // [ 0 1 0 ]
        // [ 1 0 1 ]
        CsrMatrix::from_coo(
            CooMatrix::from_triplets(
                3,
                3,
                vec![
                    (0, 0, 1.0),
                    (0, 1, 1.0),
                    (1, 1, 1.0),
                    (2, 0, 1.0),
                    (2, 2, 1.0),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn colnet_structure() {
        let a = sample();
        let m = ColumnNetModel::build(&a).unwrap();
        assert_eq!(m.hypergraph().num_vertices(), 3);
        assert_eq!(m.hypergraph().num_nets(), 3);
        // Net for column 0: rows {0, 2} (0 is also the consistency pin).
        assert_eq!(m.hypergraph().pins(0), &[0, 2]);
        // Net for column 2: row {2} only.
        assert_eq!(m.hypergraph().pins(2), &[2]);
        // Vertex weights = row nnz.
        assert_eq!(m.hypergraph().vertex_weight(0), 2);
        assert_eq!(m.hypergraph().vertex_weight(1), 1);
    }

    #[test]
    fn colnet_consistency_pin_added_when_diag_missing() {
        // a_00 = 0 but column 0 has nonzeros in rows 1, 2.
        let a: CsrMatrix = CsrMatrix::from_coo(
            CooMatrix::from_triplets(3, 3, vec![(1, 0, 1.0), (2, 0, 1.0), (0, 1, 1.0)]).unwrap(),
        );
        let m = ColumnNetModel::build(&a).unwrap();
        // Column-net 0 must include vertex 0 (the consistency pin).
        assert_eq!(m.hypergraph().pins(0), &[0, 1, 2]);
    }

    #[test]
    fn rownet_is_dual_of_colnet_on_transpose() {
        let a = sample();
        let rn = RowNetModel::build(&a).unwrap();
        let cn_t = ColumnNetModel::build(&a.transpose()).unwrap();
        // Same structure: vertices/nets/pins coincide.
        assert_eq!(
            rn.hypergraph().num_vertices(),
            cn_t.hypergraph().num_vertices()
        );
        for net in 0..rn.hypergraph().num_nets() {
            assert_eq!(rn.hypergraph().pins(net), cn_t.hypergraph().pins(net));
        }
        for v in 0..rn.hypergraph().num_vertices() {
            assert_eq!(
                rn.hypergraph().vertex_weight(v),
                cn_t.hypergraph().vertex_weight(v)
            );
        }
    }

    #[test]
    fn decode_rowwise() {
        let a = sample();
        let m = ColumnNetModel::build(&a).unwrap();
        let p = Partition::new(2, vec![0, 1, 0]).unwrap();
        let d = m.decode(&a, &p).unwrap();
        assert_eq!(d.vec_owner, vec![0, 1, 0]);
        // Nonzeros follow their rows (CSR order).
        assert_eq!(d.nonzero_owner, vec![0, 0, 1, 0, 0]);
    }

    #[test]
    fn decode_columnwise() {
        let a = sample();
        let m = RowNetModel::build(&a).unwrap();
        let p = Partition::new(2, vec![1, 0, 1]).unwrap();
        let d = m.decode(&a, &p).unwrap();
        assert_eq!(d.vec_owner, vec![1, 0, 1]);
        assert_eq!(d.nonzero_owner, vec![1, 0, 0, 1, 1]);
    }

    #[test]
    fn rectangular_rejected() {
        let a: CsrMatrix =
            CsrMatrix::from_coo(CooMatrix::from_triplets(2, 3, vec![(0, 0, 1.0)]).unwrap());
        assert!(ColumnNetModel::build(&a).is_err());
        assert!(RowNetModel::build(&a).is_err());
    }

    #[test]
    fn wrong_partition_size_rejected() {
        let a = sample();
        let m = ColumnNetModel::build(&a).unwrap();
        let p = Partition::new(2, vec![0, 1]).unwrap();
        assert!(m.decode(&a, &p).is_err());
    }

    #[test]
    fn wide_models_match_narrow() {
        let a = sample();
        let a64: CsrMatrix<u64> = a.convert_width().unwrap();
        let cn32 = ColumnNetModel::build(&a).unwrap();
        let cn64 = ColumnNetModel::build(&a64).unwrap();
        let rn32 = RowNetModel::build(&a).unwrap();
        let rn64 = RowNetModel::build(&a64).unwrap();
        for net in 0..3u32 {
            let c32: Vec<u64> = cn32
                .hypergraph()
                .pins(net)
                .iter()
                .map(|&v| v as u64)
                .collect();
            assert_eq!(c32, cn64.hypergraph().pins(net as u64));
            let r32: Vec<u64> = rn32
                .hypergraph()
                .pins(net)
                .iter()
                .map(|&v| v as u64)
                .collect();
            assert_eq!(r32, rn64.hypergraph().pins(net as u64));
        }
    }
}
