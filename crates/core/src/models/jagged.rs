//! Jagged 2D decomposition — the intermediate point of the classic 2D
//! taxonomy (jagged / checkerboard / fine-grain) that grew out of this
//! paper's line of work.
//!
//! Processors form a `P x Q` grid. First, *rows* are partitioned into `P`
//! stripes with the 1D column-net hypergraph model (volume-minimizing,
//! like the TPDS'99 baseline). Then, independently within each stripe,
//! the stripe's *columns* are partitioned into `Q` groups with a row-net
//! model restricted to the stripe's nonzeros — so the column boundaries
//! are "jagged": different in every stripe. Nonzero `(i, j)` goes to
//! processor `(stripe(i), group_{stripe(i)}(j))`.
//!
//! Communication: folds stay within processor rows (`y_i` is accumulated
//! across its stripe's `Q` processors), expands cross stripes like 1D
//! row-wise decomposition. Message bound: `(Q - 1) + (P·Q - Q)` in the
//! worst case, typically far fewer. Volume is minimized per phase but not
//! globally (the fine-grain model's advantage).

use fgh_hypergraph::{Hypergraph, HypergraphBuilder, Partition};
use fgh_partition::{partition_hypergraph_traced, EngineStats, PartitionConfig};
use fgh_sparse::CsrMatrix;
use fgh_trace::SpanHandle;

use crate::decomp::Decomposition;
use crate::models::checkerboard::grid_shape;
use crate::{ModelError, Result};

/// Jagged 2D decomposition on a `P x Q` processor grid.
#[derive(Debug, Clone)]
pub struct JaggedModel {
    p: u32,
    q: u32,
    epsilon: f64,
}

impl JaggedModel {
    /// Near-square grid for `k` processors.
    pub fn new(k: u32, epsilon: f64) -> Result<Self> {
        if k == 0 {
            return Err(ModelError::Invalid("K must be >= 1".into()));
        }
        let (p, q) = grid_shape(k);
        Ok(JaggedModel { p, q, epsilon })
    }

    /// Explicit grid.
    pub fn with_grid(p: u32, q: u32, epsilon: f64) -> Result<Self> {
        if p == 0 || q == 0 {
            return Err(ModelError::Invalid("grid dimensions must be >= 1".into()));
        }
        Ok(JaggedModel { p, q, epsilon })
    }

    /// Grid height P (number of row stripes).
    pub fn p(&self) -> u32 {
        self.p
    }

    /// Grid width Q (column groups per stripe).
    pub fn q(&self) -> u32 {
        self.q
    }

    /// Decomposes `a` into a `P x Q` jagged 2D [`Decomposition`].
    pub fn decompose(&self, a: &CsrMatrix, cfg: &PartitionConfig) -> Result<Decomposition> {
        self.decompose_traced(a, cfg, &SpanHandle::noop())
            .map(|(d, _)| d)
    }

    /// [`JaggedModel::decompose`] with engine instrumentation and trace
    /// recording. The returned [`EngineStats`] merge the phase-1 row
    /// partitioning and every per-stripe column partitioning. Under an
    /// enabled `parent` scope the phases record as a `rows` span and
    /// `stripe[s]` spans with the multilevel spans nested inside.
    pub fn decompose_traced(
        &self,
        a: &CsrMatrix,
        cfg: &PartitionConfig,
        parent: &SpanHandle,
    ) -> Result<(Decomposition, EngineStats)> {
        if !a.is_square() {
            return Err(ModelError::NotSquare {
                nrows: u64::from(a.nrows()),
                ncols: u64::from(a.ncols()),
            });
        }
        let n = a.nrows();
        let k = self.p * self.q;
        let mut stats = EngineStats::default();

        // Phase 1: row stripes via the 1D column-net model.
        let stripe_of: Vec<u32> = if self.p == 1 {
            vec![0; n as usize]
        } else {
            let rspan = parent.child("rows");
            let colnet = crate::models::ColumnNetModel::build(a)?;
            let r = partition_hypergraph_traced(colnet.hypergraph(), self.p, cfg, &rspan.handle())?;
            stats.merge(&r.stats);
            r.partition.parts().to_vec()
        };

        // Phase 2: per-stripe column grouping via a restricted row-net
        // model (vertices = columns present in the stripe, weighted by the
        // stripe's nonzeros; nets = the stripe's rows).
        let mut group_of: Vec<Vec<u32>> = vec![Vec::new(); self.p as usize]; // per stripe: col -> group (dense n)
        for s in 0..self.p {
            let sspan = parent.child_indexed("stripe", s as u64);
            group_of[s as usize] =
                self.partition_stripe_columns(a, &stripe_of, s, cfg, &sspan.handle(), &mut stats)?;
        }

        let mut nonzero_owner = Vec::with_capacity(a.nnz());
        for (i, j, _) in a.iter() {
            let s = stripe_of[i as usize];
            let g = group_of[s as usize][j as usize];
            nonzero_owner.push(s * self.q + g);
        }
        // Conformal vectors: x_j/y_j on the diagonal's processor.
        let vec_owner: Vec<u32> = (0..n)
            .map(|j| {
                let s = stripe_of[j as usize];
                s * self.q + group_of[s as usize][j as usize]
            })
            .collect();
        Ok((
            Decomposition::general(a, k, nonzero_owner, vec_owner)?,
            stats,
        ))
    }

    /// Partitions the columns of one stripe into Q groups; returns a dense
    /// per-column group vector (columns absent from the stripe get group
    /// `j % Q` as a harmless default — no nonzero uses them).
    fn partition_stripe_columns(
        &self,
        a: &CsrMatrix,
        stripe_of: &[u32],
        stripe: u32,
        cfg: &PartitionConfig,
        span: &SpanHandle,
        stats: &mut EngineStats,
    ) -> Result<Vec<u32>> {
        let n = a.nrows();
        let mut dense = (0..n).map(|j| j % self.q).collect::<Vec<u32>>();
        if self.q == 1 {
            return Ok(vec![0; n as usize]);
        }

        // Collect the stripe's nonzeros per column.
        let mut col_vertex: Vec<u32> = vec![u32::MAX; n as usize];
        let mut weights: Vec<u32> = Vec::new();
        let mut vertex_col: Vec<u32> = Vec::new();
        let mut nets: Vec<Vec<u32>> = Vec::new();
        for i in 0..n {
            if stripe_of[i as usize] != stripe {
                continue;
            }
            let mut pins: Vec<u32> = Vec::with_capacity(a.row_nnz(i));
            for &j in a.row_cols(i) {
                let v = if col_vertex[j as usize] == u32::MAX {
                    let v = weights.len() as u32; // lint: checked-cast — vertex count <= nnz, u32-bounded
                    col_vertex[j as usize] = v;
                    weights.push(0);
                    vertex_col.push(j);
                    v
                } else {
                    col_vertex[j as usize]
                };
                weights[v as usize] += 1;
                pins.push(v);
            }
            if pins.len() >= 2 {
                nets.push(pins);
            }
        }
        if weights.is_empty() {
            return Ok(dense); // empty stripe
        }
        let mut builder = HypergraphBuilder::new();
        for &w in &weights {
            builder.add_vertex(w);
        }
        for pins in nets {
            builder.add_net(pins);
        }
        let hg: Hypergraph = builder.build()?;
        let r = partition_hypergraph_traced(
            &hg,
            self.q,
            &PartitionConfig {
                epsilon: self.epsilon,
                ..cfg.clone()
            },
            span,
        )?;
        stats.merge(&r.stats);
        let parts: &Partition = &r.partition;
        for v in 0..hg.num_vertices() {
            dense[vertex_col[v as usize] as usize] = parts.part(v);
        }
        Ok(dense)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::CommStats;
    use fgh_sparse::gen::{self, ValueMode};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn matrix() -> CsrMatrix {
        gen::scale_free(
            250,
            2.5,
            ValueMode::Laplacian,
            &mut SmallRng::seed_from_u64(4),
        )
    }

    #[test]
    fn decompose_valid() {
        let a = matrix();
        let m = JaggedModel::new(6, 0.1).unwrap();
        assert_eq!((m.p(), m.q()), (2, 3));
        let d = m.decompose(&a, &PartitionConfig::with_seed(1)).unwrap();
        d.validate(&a).unwrap();
        assert_eq!(d.k, 6);
    }

    #[test]
    fn row_stripe_structure() {
        // All nonzeros of a row land in the same processor row (stripe).
        let a = matrix();
        let m = JaggedModel::with_grid(2, 2, 0.1).unwrap();
        let d = m.decompose(&a, &PartitionConfig::with_seed(2)).unwrap();
        let mut stripe_of_row = vec![u32::MAX; a.nrows() as usize];
        for (e, (i, _, _)) in a.iter().enumerate() {
            let s = d.nonzero_owner[e] / 2;
            if stripe_of_row[i as usize] == u32::MAX {
                stripe_of_row[i as usize] = s;
            } else {
                assert_eq!(stripe_of_row[i as usize], s, "row {i} split across stripes");
            }
        }
    }

    #[test]
    fn jagged_between_1d_and_fine_grain_on_average() {
        // Volume sanity: jagged should be comparable to 1D (not wildly
        // worse) on a hub-heavy matrix.
        let a = matrix();
        let m = JaggedModel::new(8, 0.1).unwrap();
        let d = m.decompose(&a, &PartitionConfig::with_seed(3)).unwrap();
        let v_j = CommStats::compute(&a, &d).unwrap().total_volume();
        let out = crate::workload::decompose_workload(
            crate::workload::Workload::Spmv(&a),
            &crate::api::DecomposeConfig::new(crate::api::Model::Hypergraph1DColNet, 8),
        )
        .unwrap()
        .into_spmv()
        .unwrap();
        assert!(
            v_j as f64 <= out.stats.total_volume() as f64 * 1.6,
            "jagged {v_j} vs 1D {}",
            out.stats.total_volume()
        );
    }

    #[test]
    fn k1_trivial_and_degenerate_grids() {
        let a = matrix();
        let m = JaggedModel::new(1, 0.1).unwrap();
        let d = m.decompose(&a, &PartitionConfig::default()).unwrap();
        assert!(d.nonzero_owner.iter().all(|&p| p == 0));
        // P = 1 (pure columnwise) and Q = 1 (pure rowwise) degenerate cases.
        for (p, q) in [(1u32, 4u32), (4, 1)] {
            let m = JaggedModel::with_grid(p, q, 0.1).unwrap();
            let d = m.decompose(&a, &PartitionConfig::with_seed(5)).unwrap();
            d.validate(&a).unwrap();
        }
    }

    #[test]
    fn balanced_loads() {
        let a = matrix();
        let m = JaggedModel::new(4, 0.05).unwrap();
        let d = m.decompose(&a, &PartitionConfig::with_seed(6)).unwrap();
        assert!(
            d.load_imbalance_percent() <= 25.0,
            "imbalance {}% (two-phase balance compounds)",
            d.load_imbalance_percent()
        );
    }

    #[test]
    fn rectangular_rejected() {
        let a = CsrMatrix::from_coo(
            fgh_sparse::CooMatrix::from_triplets(2, 3, vec![(0, 0, 1.0)]).unwrap(),
        );
        let m = JaggedModel::new(2, 0.1).unwrap();
        assert!(m.decompose(&a, &PartitionConfig::default()).is_err());
    }
}
