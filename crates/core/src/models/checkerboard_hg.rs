//! The coarse-grain **checkerboard hypergraph model** — Çatalyürek &
//! Aykanat's companion IPDPS 2001 paper ("A hypergraph-partitioning
//! approach for coarse-grain decomposition"), reimplemented here because
//! it brackets the fine-grain model from the coarse side.
//!
//! Two phases on a `P x Q` processor grid:
//!
//! 1. rows → `P` stripes with the 1D **column-net** model (minimizes
//!    expand volume),
//! 2. columns → `Q` groups with the **row-net** model under
//!    **multi-constraint** balance: each column vertex carries a `P`-vector
//!    of weights (its nonzeros per stripe) so that every
//!    `(stripe, group)` cell stays load balanced — this is what
//!    distinguishes it from the jagged model, whose column groups differ
//!    per stripe.
//!
//! Nonzero `(i, j)` goes to processor `(stripe(i), group(j))`. Expands
//! stay within processor *columns*, folds within processor *rows*:
//! messages ≤ `(P − 1) + (Q − 1)` per processor, volume minimized in both
//! phases (unlike the block checkerboard, which ignores volume entirely).

use fgh_hypergraph::HypergraphBuilder;
use fgh_partition::multiconstraint::{partition_multiconstraint, MultiWeights};
use fgh_partition::{partition_hypergraph_traced, EngineStats, PartitionConfig};
use fgh_sparse::CsrMatrix;
use fgh_trace::SpanHandle;

use crate::decomp::Decomposition;
use crate::models::checkerboard::grid_shape;
use crate::models::ColumnNetModel;
use crate::{ModelError, Result};

/// Coarse-grain checkerboard hypergraph decomposition on a `P x Q` grid.
#[derive(Debug, Clone)]
pub struct CheckerboardHgModel {
    p: u32,
    q: u32,
    epsilon: f64,
}

impl CheckerboardHgModel {
    /// Near-square grid for `k` processors.
    pub fn new(k: u32, epsilon: f64) -> Result<Self> {
        if k == 0 {
            return Err(ModelError::Invalid("K must be >= 1".into()));
        }
        let (p, q) = grid_shape(k);
        Ok(CheckerboardHgModel { p, q, epsilon })
    }

    /// Explicit grid.
    pub fn with_grid(p: u32, q: u32, epsilon: f64) -> Result<Self> {
        if p == 0 || q == 0 {
            return Err(ModelError::Invalid("grid dimensions must be >= 1".into()));
        }
        Ok(CheckerboardHgModel { p, q, epsilon })
    }

    /// Grid height P.
    pub fn p(&self) -> u32 {
        self.p
    }

    /// Grid width Q.
    pub fn q(&self) -> u32 {
        self.q
    }

    /// Decomposes `a` into a `P x Q` checkerboard [`Decomposition`].
    pub fn decompose(&self, a: &CsrMatrix, cfg: &PartitionConfig) -> Result<Decomposition> {
        self.decompose_traced(a, cfg, &SpanHandle::noop())
            .map(|(d, _)| d)
    }

    /// [`CheckerboardHgModel::decompose`] with engine instrumentation and
    /// trace recording. The returned [`EngineStats`] accumulate both
    /// phases: the multilevel counters of the phase-1 row partitioning,
    /// plus the phase-2 multi-constraint partitioner's counters in
    /// multilevel vocabulary (greedy placement as initial partitioning,
    /// refinement sweeps as FM passes, accepted moves as FM moves;
    /// coarsening counters stay untouched because the scheme is direct).
    /// Under an enabled `parent` scope the phases record as `rows` and
    /// `cols` spans, with the multilevel spans nested inside `rows`.
    pub fn decompose_traced(
        &self,
        a: &CsrMatrix,
        cfg: &PartitionConfig,
        parent: &SpanHandle,
    ) -> Result<(Decomposition, EngineStats)> {
        if !a.is_square() {
            return Err(ModelError::NotSquare {
                nrows: u64::from(a.nrows()),
                ncols: u64::from(a.ncols()),
            });
        }
        let n = a.nrows();
        let k = self.p * self.q;
        let mut stats = EngineStats::default();

        // Phase 1: row stripes (column-net model, single constraint).
        let stripe_of: Vec<u32> = if self.p == 1 {
            vec![0; n as usize]
        } else {
            let rspan = parent.child("rows");
            let colnet = ColumnNetModel::build(a)?;
            let r = partition_hypergraph_traced(colnet.hypergraph(), self.p, cfg, &rspan.handle())?;
            stats.merge(&r.stats);
            r.partition.parts().to_vec()
        };

        // Phase 2: column groups (row-net model, P constraints = the
        // column's nonzeros per stripe).
        let group_of: Vec<u32> = if self.q == 1 {
            vec![0; n as usize]
        } else {
            let _cspan = parent.child("cols");
            // Row-net hypergraph: vertices = columns, nets = rows.
            let mut builder = HypergraphBuilder::with_unit_vertices(n);
            for i in 0..n {
                let mut pins: Vec<u32> = a.row_cols(i).to_vec();
                if !pins.contains(&i) {
                    pins.push(i); // consistency pin, as in the row-net model
                }
                builder.add_net(pins);
            }
            let hg = builder.build()?;

            let c = self.p as usize;
            let mut flat = vec![0u32; n as usize * c];
            for (i, j, _) in a.iter() {
                let s = stripe_of[i as usize] as usize;
                flat[j as usize * c + s] += 1;
            }
            let weights = MultiWeights::new(c, flat);
            let r = partition_multiconstraint(&hg, &weights, self.q, self.epsilon, cfg.seed, 4)
                .map_err(|e| ModelError::Partition(e.to_string()))?;
            stats.merge(&r.stats);
            r.partition.parts().to_vec()
        };

        let mut nonzero_owner = Vec::with_capacity(a.nnz());
        for (i, j, _) in a.iter() {
            nonzero_owner.push(stripe_of[i as usize] * self.q + group_of[j as usize]);
        }
        let vec_owner: Vec<u32> = (0..n)
            .map(|j| stripe_of[j as usize] * self.q + group_of[j as usize])
            .collect();
        Ok((
            Decomposition::general(a, k, nonzero_owner, vec_owner)?,
            stats,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::CommStats;
    use fgh_sparse::gen::{self, ValueMode};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn matrix() -> CsrMatrix {
        gen::scale_free(
            240,
            3.0,
            ValueMode::Laplacian,
            &mut SmallRng::seed_from_u64(6),
        )
    }

    #[test]
    fn decompose_valid() {
        let a = matrix();
        let m = CheckerboardHgModel::new(6, 0.15).unwrap();
        let d = m.decompose(&a, &PartitionConfig::with_seed(1)).unwrap();
        d.validate(&a).unwrap();
        assert_eq!(d.k, 6);
    }

    #[test]
    fn phase_two_reports_engine_counters() {
        // With P = 1 the row phase is skipped entirely, so every counter
        // below comes from the phase-2 multi-constraint partitioner —
        // the gap this regression test pins closed.
        let a = matrix();
        let m = CheckerboardHgModel::with_grid(1, 4, 0.2).unwrap();
        let (d, stats) = m
            .decompose_traced(&a, &PartitionConfig::with_seed(9), &SpanHandle::noop())
            .unwrap();
        d.validate(&a).unwrap();
        assert!(stats.fm_passes > 0, "refinement sweeps not counted");
        assert!(stats.fm_moves > 0, "accepted moves not counted");
        assert_eq!(stats.fm_rollbacks, 0, "greedy scheme never rolls back");
        assert_eq!(stats.levels, 0, "direct scheme must not claim levels");
        // Two-phase runs accumulate, never overwrite: a P > 1 grid keeps
        // the multilevel phase-1 counters alongside phase 2's.
        let (_, both) = CheckerboardHgModel::with_grid(2, 2, 0.2)
            .unwrap()
            .decompose_traced(&a, &PartitionConfig::with_seed(9), &SpanHandle::noop())
            .unwrap();
        assert!(both.bisections > 0, "phase-1 multilevel counters lost");
        assert!(both.fm_passes > 0);
    }

    #[test]
    fn cartesian_structure() {
        // The owner of (i, j) must be stripe(i) * Q + group(j) for global
        // per-row stripes and per-column groups — i.e. all nonzeros of a
        // row share a processor row AND all nonzeros of a column share a
        // processor column.
        let a = matrix();
        let m = CheckerboardHgModel::with_grid(2, 3, 0.2).unwrap();
        let d = m.decompose(&a, &PartitionConfig::with_seed(2)).unwrap();
        let q = 3u32;
        let mut stripe_of_row = vec![u32::MAX; a.nrows() as usize];
        let mut group_of_col = vec![u32::MAX; a.nrows() as usize];
        for (e, (i, j, _)) in a.iter().enumerate() {
            let (s, g) = (d.nonzero_owner[e] / q, d.nonzero_owner[e] % q);
            if stripe_of_row[i as usize] == u32::MAX {
                stripe_of_row[i as usize] = s;
            }
            if group_of_col[j as usize] == u32::MAX {
                group_of_col[j as usize] = g;
            }
            assert_eq!(stripe_of_row[i as usize], s, "row {i} split across stripes");
            assert_eq!(group_of_col[j as usize], g, "col {j} split across groups");
        }
    }

    #[test]
    fn message_bound_p_plus_q_minus_2() {
        let a = matrix();
        let m = CheckerboardHgModel::with_grid(3, 3, 0.2).unwrap();
        let d = m.decompose(&a, &PartitionConfig::with_seed(3)).unwrap();
        let s = CommStats::compute(&a, &d).unwrap();
        let bound = (m.p() - 1 + m.q() - 1) as u64;
        assert!(
            s.max_messages_per_proc() <= bound,
            "max msgs {} > bound {bound}",
            s.max_messages_per_proc()
        );
    }

    #[test]
    fn cells_are_balanced() {
        let a = matrix();
        let m = CheckerboardHgModel::with_grid(2, 2, 0.20).unwrap();
        let d = m.decompose(&a, &PartitionConfig::with_seed(4)).unwrap();
        // Two-phase balance compounds; just require sanity (< 60%).
        assert!(
            d.load_imbalance_percent() <= 60.0,
            "imbalance {}%",
            d.load_imbalance_percent()
        );
    }

    #[test]
    fn beats_block_checkerboard_on_volume() {
        // Same structured communication pattern, but volume-minimized:
        // should not lose to the volume-oblivious block checkerboard.
        let a = matrix();
        let m = CheckerboardHgModel::new(4, 0.2).unwrap();
        let d = m.decompose(&a, &PartitionConfig::with_seed(5)).unwrap();
        let v_hg = CommStats::compute(&a, &d).unwrap().total_volume();
        let cb = crate::models::CheckerboardModel::build(&a, 4).unwrap();
        let v_cb = CommStats::compute(&a, &cb.decode(&a).unwrap())
            .unwrap()
            .total_volume();
        assert!(v_hg <= v_cb, "checkerboard-hg {v_hg} vs block {v_cb}");
    }

    #[test]
    fn k1_and_rectangular() {
        let a = matrix();
        let m = CheckerboardHgModel::new(1, 0.1).unwrap();
        let d = m.decompose(&a, &PartitionConfig::default()).unwrap();
        assert_eq!(CommStats::compute(&a, &d).unwrap().total_volume(), 0);
        let rect = CsrMatrix::from_coo(
            fgh_sparse::CooMatrix::from_triplets(2, 3, vec![(0, 0, 1.0)]).unwrap(),
        );
        assert!(CheckerboardHgModel::new(2, 0.1)
            .unwrap()
            .decompose(&rect, &PartitionConfig::default())
            .is_err());
    }
}
