//! Parallel determinism: the threaded partitioner must be a pure
//! wall-clock optimization. For every catalog matrix tried here,
//! `Parallelism::Threads(4)` has to reproduce the serial per-seed
//! `(cutsize, imbalance)` pairs exactly — every recursion node derives
//! its RNG stream from its own identity, so the schedule cannot leak
//! into the result.

use fgh_core::models::FineGrainModel;
use fgh_partition::{partition_hypergraph_seeds, Parallelism, PartitionConfig};

const SEEDS: usize = 8;

fn per_seed_outcomes(
    hg: &fgh_hypergraph::Hypergraph,
    k: u32,
    parallelism: Parallelism,
) -> Vec<(u64, f64)> {
    let cfg = PartitionConfig {
        seed: 0,
        parallelism,
        ..Default::default()
    };
    partition_hypergraph_seeds(hg, k, &cfg, SEEDS)
        .into_iter()
        .map(|r| {
            let r = r.expect("partition run failed");
            (r.cutsize, r.imbalance_percent)
        })
        .collect()
}

#[test]
fn threads4_matches_serial_per_seed_on_catalog_matrices() {
    for name in ["sherman3", "bcspwr10", "ken-11", "nl"] {
        let entry = fgh_sparse::catalog::by_name(name).expect("catalog name");
        let a = entry.generate_scaled(8, 1);
        let model = FineGrainModel::build(&a).expect("square catalog matrix");
        let hg = model.hypergraph();

        let serial = per_seed_outcomes(hg, 8, Parallelism::Serial);
        let threaded = per_seed_outcomes(hg, 8, Parallelism::Threads(4));
        assert_eq!(serial.len(), SEEDS);
        assert_eq!(
            serial, threaded,
            "{name}: Threads(4) per-seed (cutsize, imbalance) diverged from Serial"
        );
    }
}
