//! Golden cutsize-identity tests for the hot-loop kernels.
//!
//! The connectivity/gain/coarsening kernel rewrites (DESIGN.md §5.10) are
//! required to be *behavior-preserving*: every structure was redesigned for
//! locality, not for different decisions, so the engine must reproduce the
//! exact per-seed objectives it produced before the rewrite. These
//! constants were captured from the pre-rewrite engine on the synthetic
//! catalog analogues; any drift means a kernel changed tie-breaking or
//! gain arithmetic, not just speed — treat a failure here as a
//! correctness regression, never re-record without understanding why.

use fgh_core::{decompose_workload, DecomposeConfig, Model, Workload, WorkloadOutcome};
use fgh_sparse::catalog::by_name;

/// (catalog name, scale, k, [(seed, objective); 3])
#[allow(clippy::type_complexity)]
const GOLDEN: &[(&str, u32, u32, [(u64, u64); 3])] = &[
    ("sherman3", 8, 8, [(1, 84), (2, 105), (3, 91)]),
    ("bcspwr10", 8, 8, [(1, 338), (2, 363), (3, 358)]),
    ("ken-11", 16, 4, [(1, 619), (2, 617), (3, 624)]),
];

fn objective(name: &str, scale: u32, k: u32, seed: u64) -> u64 {
    let entry = by_name(name).unwrap_or_else(|| panic!("{name} not in catalog"));
    let a = entry.generate_scaled(scale, 42);
    let cfg = DecomposeConfig::new(Model::FineGrain2D, k).with_seed(seed);
    let out = decompose_workload(Workload::Spmv(&a), &cfg)
        .and_then(WorkloadOutcome::into_spmv)
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    out.objective
}

#[test]
fn per_seed_objectives_match_pre_rewrite_engine() {
    let mut failures = Vec::new();
    for &(name, scale, k, seeds) in GOLDEN {
        for (seed, want) in seeds {
            let got = objective(name, scale, k, seed);
            println!("golden: (\"{name}\", {scale}, {k}) seed {seed} => {got}");
            if got != want {
                failures.push(format!(
                    "{name} scale {scale} k {k} seed {seed}: got {got}, recorded {want}"
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "objective drift:\n{}",
        failures.join("\n")
    );
}
