//! Concurrent engine reuse: many threads driving one [`EngineSession`]
//! (one shared [`ArenaPool`]) must produce exactly the results serial
//! runs produce, with no arena cross-talk. This is the contract
//! `fgh serve`'s worker pool is built on; CI runs it additionally under
//! the `paranoid` feature, which turns on the engine's internal
//! invariant sweeps.

use std::sync::Arc;

use fgh_core::{
    DecomposeConfig, EngineSession, JobParams, Model, Workload, WorkloadAny, WorkloadOutcome,
};
use fgh_sparse::gen::{self, ValueMode};
use fgh_sparse::{AnyCsrMatrix, CsrMatrix};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn matrix(seed: u64) -> CsrMatrix {
    gen::grid5(
        16,
        16,
        1.0,
        ValueMode::Ones,
        &mut SmallRng::seed_from_u64(seed),
    )
}

#[test]
fn threads_sharing_one_session_match_serial_results() {
    let session = Arc::new(EngineSession::new());
    let jobs: Vec<(u64, Model, u32)> = (0..12)
        .map(|i| {
            let model = [
                Model::FineGrain2D,
                Model::Hypergraph1DColNet,
                Model::Graph1D,
            ][i as usize % 3];
            (i, model, [2u32, 4, 8][i as usize % 3])
        })
        .collect();

    // Serial ground truth through the one-shot API (its own pools).
    let expected: Vec<_> = jobs
        .iter()
        .map(|&(seed, model, k)| {
            let a = matrix(seed);
            let out = fgh_core::decompose_workload(
                Workload::Spmv(&a),
                &DecomposeConfig::new(model, k).with_seed(seed),
            )
            .and_then(WorkloadOutcome::into_spmv)
            .unwrap();
            (out.decomposition, out.objective)
        })
        .collect();

    // The same jobs, concurrently, all through ONE shared session/pool.
    let handles: Vec<_> = jobs
        .iter()
        .map(|&(seed, model, k)| {
            let session = Arc::clone(&session);
            std::thread::spawn(move || {
                let a = AnyCsrMatrix::U32(matrix(seed));
                let out = session
                    .decompose_workload_any(
                        WorkloadAny::Spmv(&a),
                        JobParams::new(model, k).with_seed(seed),
                    )
                    .and_then(WorkloadOutcome::into_spmv)
                    .unwrap();
                (seed, out)
            })
        })
        .collect();

    for h in handles {
        let (seed, out) = h.join().expect("no worker may panic");
        let (want_d, want_obj) = &expected[seed as usize];
        out.decomposition.validate(&matrix(seed)).unwrap();
        assert_eq!(
            &out.decomposition, want_d,
            "seed {seed}: concurrent result differs from serial"
        );
        assert_eq!(out.objective, *want_obj, "seed {seed}: objective differs");
    }
}

#[test]
fn pool_stabilizes_under_repeated_concurrent_waves() {
    let session = Arc::new(EngineSession::new());
    let run_wave = |threads: usize| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let session = Arc::clone(&session);
                std::thread::spawn(move || {
                    let a = matrix(7);
                    session
                        .decompose_workload(
                            Workload::Spmv(&a),
                            JobParams::new(Model::FineGrain2D, 4).with_seed(t as u64),
                        )
                        .and_then(WorkloadOutcome::into_spmv)
                        .unwrap()
                })
            })
            .collect();
        for h in handles {
            let out = h.join().expect("no worker may panic");
            out.decomposition.validate(&matrix(7)).unwrap();
        }
    };
    run_wave(6);
    let idle_after_first = session.idle_arenas();
    assert!(idle_after_first > 0, "arenas must be parked for reuse");
    // Subsequent identical waves reuse parked arenas instead of growing
    // the pool without bound.
    run_wave(6);
    run_wave(6);
    assert!(
        session.idle_arenas() <= idle_after_first,
        "pool grew across identical waves: {} -> {}",
        idle_after_first,
        session.idle_arenas()
    );
}
