//! End-to-end observability contracts: the `fgh-metrics/1` document
//! validates for every model, per-phase durations account for the
//! measured elapsed time, and span nesting matches the documented phase
//! hierarchy under both serial and fork-join execution.

use fgh_core::report::spgemm_metrics_json;
use fgh_core::{
    decompose_workload, metrics_json, validate_metrics_value, DecomposeConfig, Model, Parallelism,
    Workload, WorkloadKind, WorkloadOutcome,
};
use fgh_sparse::catalog::by_name;
use fgh_sparse::CsrMatrix;
use fgh_trace::json::parse;
use fgh_trace::TraceNode;

fn matrix() -> CsrMatrix {
    by_name("sherman3")
        .expect("catalog name")
        .generate_scaled(16, 1)
}

/// Golden-snapshot check: for every model the `--metrics-json` document
/// round-trips through the parser and validates against the documented
/// schema, with a non-null embedded trace whose root is `decompose`.
/// SpGEMM-workload models run the workload entry point with `A·A` and
/// the SpGEMM document builder; everything else runs SpMV.
#[test]
fn metrics_json_validates_for_all_models() {
    let a = matrix();
    for model in Model::ALL {
        let cfg = DecomposeConfig::new(model, 4)
            .with_epsilon(0.1)
            .with_trace(true);
        let text = match model.workload() {
            WorkloadKind::Spmv => {
                let out = decompose_workload(Workload::Spmv(&a), &cfg)
                    .and_then(WorkloadOutcome::into_spmv)
                    .unwrap_or_else(|e| panic!("{model}: {e}"));
                metrics_json(&a, &cfg, &out)
            }
            WorkloadKind::Spgemm => {
                let out = decompose_workload(Workload::Spgemm(&a, &a), &cfg)
                    .and_then(WorkloadOutcome::into_spgemm)
                    .unwrap_or_else(|e| panic!("{model}: {e}"));
                spgemm_metrics_json(&a, &a, &cfg, &out, None)
            }
        };
        let v = parse(&text).unwrap_or_else(|e| panic!("{model}: bad JSON: {e}"));
        validate_metrics_value(&v).unwrap_or_else(|e| panic!("{model}: {e}"));
        assert_eq!(v.get("model").unwrap().as_str(), Some(model.name()));
        assert_eq!(
            v.get("workload").unwrap().as_str(),
            Some(model.workload().name())
        );
        let trace = v.get("trace").unwrap();
        assert!(!trace.is_null(), "{model}: trace was requested");
        let root = &trace.as_arr().unwrap()[0];
        assert_eq!(root.get("name").unwrap().as_str(), Some("decompose"));
    }
}

/// `engine.phase_ns` in the metrics document mirrors the partitioner's
/// per-phase stage timers (fgh-core builds fgh-partition with `stats`,
/// so the counters are live), and in a serial run the three phases fit
/// inside the measured elapsed window.
#[test]
fn metrics_phase_ns_mirrors_engine_stats() {
    let a = matrix();
    let cfg = DecomposeConfig::new(Model::FineGrain2D, 8).with_parallelism(Parallelism::Serial);
    let out = decompose_workload(Workload::Spmv(&a), &cfg)
        .and_then(WorkloadOutcome::into_spmv)
        .unwrap();
    let v = parse(&metrics_json(&a, &cfg, &out)).unwrap();
    validate_metrics_value(&v).unwrap();
    let phase = v.get("engine").unwrap().get("phase_ns").unwrap();
    for (name, ns) in [
        ("coarsen", out.engine.coarsen_nanos),
        ("initial", out.engine.initial_nanos),
        ("refine", out.engine.refine_nanos),
    ] {
        assert_eq!(
            phase.get(name).unwrap().as_u64(),
            Some(ns),
            "phase_ns.{name} diverges from EngineStats"
        );
        assert!(ns > 0, "{name} nanos not populated despite stats feature");
    }
    let total = out.engine.coarsen_nanos + out.engine.initial_nanos + out.engine.refine_nanos;
    assert!(
        total <= out.elapsed.as_nanos() as u64,
        "serial phase nanos ({total}) exceed the elapsed window"
    );
}

/// The root `decompose` span covers the same window as
/// `DecompositionOutcome::elapsed`, and the per-phase child durations sum
/// to within 5% of it — the trace accounts for where the time went.
#[test]
fn phase_durations_sum_to_elapsed() {
    let a = matrix();
    let cfg = DecomposeConfig::new(Model::FineGrain2D, 8)
        .with_runs(2)
        .with_trace(true);
    let out = decompose_workload(Workload::Spmv(&a), &cfg)
        .and_then(WorkloadOutcome::into_spmv)
        .unwrap();
    let trace = out.trace.as_ref().expect("trace was requested");
    let root = &trace.roots[0];
    assert_eq!(root.name, "decompose");

    let elapsed = out.elapsed.as_nanos() as u64;
    let tolerance = elapsed / 20; // 5%
    let drift = root.duration_ns.abs_diff(elapsed);
    assert!(
        drift <= tolerance,
        "root span {} ns vs elapsed {elapsed} ns (drift {drift})",
        root.duration_ns
    );
    let children_sum: u64 = root.children.iter().map(|c| c.duration_ns).sum();
    assert!(
        children_sum <= root.duration_ns,
        "children overlap the root: {children_sum} > {}",
        root.duration_ns
    );
    assert!(
        root.duration_ns - children_sum <= tolerance,
        "unattributed time: phases sum to {children_sum} of {} ns",
        root.duration_ns
    );
}

/// A trace-tree shape with timing and counters erased (arena reuse
/// counts legitimately depend on thread scheduling; the tree shape must
/// not). Fork-join `domain` wrapper spans are flattened into their
/// parent, so a forked branch compares equal to the same branch run
/// inline.
#[derive(Debug, PartialEq)]
struct Shape {
    name: String,
    index: Option<u64>,
    children: Vec<Shape>,
}

fn shape(n: &TraceNode) -> Shape {
    fn collect(n: &TraceNode, out: &mut Vec<Shape>) {
        for c in &n.children {
            if c.name == "domain" {
                collect(c, out);
            } else {
                out.push(shape(c));
            }
        }
    }
    let mut children = Vec::new();
    collect(n, &mut children);
    // Children are ordered (name, index, start_ns); flattened fork
    // branches re-enter that order minus the wall-clock tiebreak, which
    // scheduling owns.
    children.sort_by(|a, b| (&a.name, a.index).cmp(&(&b.name, b.index)));
    Shape {
        name: n.name.to_string(),
        index: n.index,
        children,
    }
}

fn assert_phase_hierarchy(root: &TraceNode, runs: usize, label: &str) {
    assert_eq!(root.name, "decompose", "{label}");
    for phase in ["model-build", "partition", "decode"] {
        assert!(root.child(phase).is_some(), "{label}: missing {phase}");
    }
    let partition = shape(root.child("partition").unwrap());
    let run_spans: Vec<&Shape> = partition
        .children
        .iter()
        .filter(|c| c.name == "run")
        .collect();
    assert_eq!(run_spans.len(), runs, "{label}: one span per seed");
    for (i, run) in run_spans.iter().enumerate() {
        assert_eq!(run.index, Some(i as u64), "{label}: run ordinal");
        let bisect = run
            .children
            .iter()
            .find(|c| c.name == "bisect")
            .unwrap_or_else(|| panic!("{label}: run[{i}] has no bisect"));
        let kid = |name: &str| bisect.children.iter().find(|c| c.name == name);
        assert!(kid("coarsen").is_some(), "{label}: no coarsen");
        assert!(kid("initial").is_some(), "{label}: no initial");
        let refine = kid("refine").unwrap_or_else(|| panic!("{label}: bisect has no refine"));
        assert!(
            refine.children.iter().any(|c| c.name == "fm-pass"),
            "{label}: no fm-pass"
        );
    }
}

/// The span tree nests exactly along the documented phase hierarchy
/// (`decompose → partition → run[i] → bisect → coarsen/initial/refine →
/// fm-pass`), and fork-join execution stitches per-domain spans into a
/// tree whose shape — with `domain` wrappers flattened — is identical to
/// the serial one.
#[test]
fn span_nesting_matches_phase_hierarchy_serial_and_threaded() {
    let a = matrix();
    let runs = 4;
    let mut trees = Vec::new();
    for (par, label) in [
        (Parallelism::Serial, "serial"),
        (Parallelism::Threads(4), "threads(4)"),
    ] {
        let cfg = DecomposeConfig::new(Model::FineGrain2D, 4)
            .with_runs(runs)
            .with_parallelism(par)
            .with_trace(true);
        let out = decompose_workload(Workload::Spmv(&a), &cfg)
            .and_then(WorkloadOutcome::into_spmv)
            .unwrap();
        let trace = out.trace.expect("trace was requested");
        assert_eq!(trace.roots.len(), 1, "{label}: single root");
        assert_phase_hierarchy(&trace.roots[0], runs, label);
        trees.push(trace);
    }

    // Same algorithm, same seeds: modulo the fork wrappers, the two
    // trees must have the same shape node for node.
    assert_eq!(
        shape(&trees[0].roots[0]),
        shape(&trees[1].roots[0]),
        "serial and threads(4) trace shapes diverge"
    );
}
