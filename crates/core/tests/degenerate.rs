//! Degenerate-input catalog: every pathological matrix shape the issue
//! tracker has seen, crossed with boundary K values and three models.
//! `decompose` must return a *valid* decomposition (possibly tagged
//! `Degraded`) or a typed error — never panic.

use std::time::Duration;

use fgh_core::{
    decompose_workload, Budget, DecomposeConfig, DecompositionStatus, FghError, Model, Workload,
    WorkloadOutcome,
};
use fgh_sparse::{CooMatrix, CsrMatrix};

const MODELS: [Model; 3] = [
    Model::Graph1D,
    Model::Hypergraph1DColNet,
    Model::FineGrain2D,
];

fn csr(n: u32, triplets: Vec<(u32, u32, f64)>) -> CsrMatrix {
    CsrMatrix::from_coo(CooMatrix::from_triplets(n, n, triplets).unwrap())
}

/// The degenerate shapes under test, by name.
fn degenerate_matrices() -> Vec<(&'static str, CsrMatrix)> {
    let diagonal: Vec<(u32, u32, f64)> = (0..8).map(|i| (i, i, 1.0 + i as f64)).collect();
    let mut dense_row: Vec<(u32, u32, f64)> = (0..8).map(|j| (0, j, 1.0)).collect();
    dense_row.extend((1..8).map(|i| (i, i, 2.0)));
    vec![
        ("empty", csr(6, vec![])),
        ("zero_by_zero", csr(0, vec![])),
        ("single_entry", csr(1, vec![(0, 0, 3.0)])),
        ("diagonal_only", csr(8, diagonal)),
        ("dense_row", csr(8, dense_row)),
    ]
}

/// Asserts the decompose contract on one (matrix, model, k) combination.
fn check(name: &str, a: &CsrMatrix, model: Model, k: u32) {
    let mut cfg = DecomposeConfig::new(model, k);
    cfg.runs = 1;
    let out = match decompose_workload(Workload::Spmv(a), &cfg).and_then(WorkloadOutcome::into_spmv)
    {
        Ok(out) => out,
        Err(e) => panic!(
            "{name}/{}/K={k}: degenerate input must degrade, got error {e}",
            model.name()
        ),
    };
    out.decomposition
        .validate(a)
        .unwrap_or_else(|e| panic!("{name}/{}/K={k}: invalid decomposition: {e}", model.name()));
    assert_eq!(out.stats.k, k, "{name}/{}/K={k}", model.name());
    if a.nnz() > 0 && k as u64 > a.nnz() as u64 {
        assert!(
            out.status.is_degraded(),
            "{name}/{}/K={k}: K > nnz must be tagged degraded",
            model.name()
        );
    }
    if k == 1 {
        assert_eq!(
            out.stats.total_volume(),
            0,
            "{name}/{}/K=1 must need no communication",
            model.name()
        );
    }
}

#[test]
fn degenerate_catalog_by_model_and_k() {
    for (name, a) in degenerate_matrices() {
        let nnz = a.nnz() as u32;
        // K = 1, K = nnz, K = nnz + 1 (clamped to >= 1), plus a mid value.
        let mut ks = vec![1, nnz.max(1), nnz + 1, 3];
        ks.sort_unstable();
        ks.dedup();
        for model in MODELS {
            for &k in &ks {
                check(name, &a, model, k);
            }
        }
    }
}

#[test]
fn k_zero_is_a_typed_bad_input() {
    let a = csr(4, vec![(0, 0, 1.0), (1, 1, 1.0)]);
    for model in MODELS {
        match decompose_workload(Workload::Spmv(&a), &DecomposeConfig::new(model, 0))
            .and_then(WorkloadOutcome::into_spmv)
        {
            Err(FghError::InvalidInput(_)) => {}
            other => panic!("{}: expected InvalidInput, got {other:?}", model.name()),
        }
    }
}

#[test]
fn bad_epsilon_is_a_typed_bad_input() {
    let a = csr(4, vec![(0, 0, 1.0), (1, 1, 1.0)]);
    for eps in [f64::NAN, f64::INFINITY, -0.5] {
        let mut cfg = DecomposeConfig::new(Model::FineGrain2D, 2);
        cfg.epsilon = eps;
        assert!(
            matches!(
                decompose_workload(Workload::Spmv(&a), &cfg).and_then(WorkloadOutcome::into_spmv),
                Err(FghError::InvalidInput(_))
            ),
            "epsilon {eps} must be rejected"
        );
    }
}

#[test]
fn rectangular_is_a_typed_error() {
    let a: CsrMatrix =
        CsrMatrix::from_coo(CooMatrix::from_triplets(1, 5, vec![(0, 2, 1.0)]).unwrap());
    for model in MODELS {
        match decompose_workload(Workload::Spmv(&a), &DecomposeConfig::new(model, 2))
            .and_then(WorkloadOutcome::into_spmv)
        {
            Err(FghError::Model(fgh_core::ModelError::NotSquare { nrows: 1, ncols: 5 })) => {}
            other => panic!("{}: expected NotSquare, got {other:?}", model.name()),
        }
    }
}

#[test]
fn empty_matrix_degrades_with_reason() {
    let a = csr(5, vec![]);
    let out = decompose_workload(
        Workload::Spmv(&a),
        &DecomposeConfig::new(Model::FineGrain2D, 4),
    )
    .and_then(WorkloadOutcome::into_spmv)
    .unwrap();
    match &out.status {
        DecompositionStatus::Degraded { reason } => {
            assert_eq!(reason.code(), "empty-matrix");
            assert!(
                reason.to_string().contains("no nonzeros"),
                "reason: {reason}"
            );
        }
        DecompositionStatus::Full => panic!("empty matrix must be degraded"),
    }
    assert_eq!(out.stats.total_volume(), 0);
}

#[test]
fn expired_wall_budget_still_returns_valid_partition() {
    // A deadline that is already unreachable forces truncation at the
    // first checkpoint: the engine must fall back to a quick partition and
    // record what happened rather than fail.
    let a = fgh_sparse::catalog::by_name("bcspwr10")
        .expect("catalog matrix")
        .generate_scaled(48, 7);
    let cfg = DecomposeConfig::new(Model::FineGrain2D, 4)
        .with_budget(Budget::wall(Duration::from_nanos(1)));
    let out = decompose_workload(Workload::Spmv(&a), &cfg)
        .and_then(WorkloadOutcome::into_spmv)
        .unwrap();
    out.decomposition.validate(&a).unwrap();
    assert!(
        out.engine.truncated(),
        "an expired deadline must record a truncation: {:?}",
        out.engine
    );
    assert!(out.status.is_degraded());
    assert_eq!(out.status.code(), Some("budget-exhausted"));
    assert!(
        out.status
            .reason()
            .map(ToString::to_string)
            .unwrap_or_default()
            .contains("budget"),
        "reason: {:?}",
        out.status.reason()
    );
    // Strict callers reject the degraded outcome as budget exhaustion.
    match out.into_strict() {
        Err(FghError::BudgetExhausted(_)) => {}
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
}

#[test]
fn generous_wall_budget_returns_valid_partition() {
    // A 50ms budget on a catalog matrix: whether or not it trips, the
    // result must be valid, and any truncation must be visible in the
    // engine stats and the status tag.
    let a = fgh_sparse::catalog::by_name("bcspwr10")
        .expect("catalog matrix")
        .generate_scaled(48, 7);
    let cfg = DecomposeConfig::new(Model::FineGrain2D, 8)
        .with_budget(Budget::wall(Duration::from_millis(50)));
    let out = decompose_workload(Workload::Spmv(&a), &cfg)
        .and_then(WorkloadOutcome::into_spmv)
        .unwrap();
    out.decomposition.validate(&a).unwrap();
    assert_eq!(out.objective, out.stats.total_volume());
    if out.engine.truncated() {
        assert!(out.status.is_degraded());
    }
}

#[test]
fn fm_pass_budget_caps_refinement() {
    let a = fgh_sparse::catalog::by_name("bcspwr10")
        .expect("catalog matrix")
        .generate_scaled(32, 3);
    let budget = Budget {
        max_fm_passes: Some(1),
        ..Budget::UNLIMITED
    };
    let out = decompose_workload(
        Workload::Spmv(&a),
        &DecomposeConfig::new(Model::Hypergraph1DColNet, 4).with_budget(budget),
    )
    .and_then(WorkloadOutcome::into_spmv)
    .unwrap();
    out.decomposition.validate(&a).unwrap();
    assert!(
        out.engine.fm_truncations > 0,
        "a 1-pass cap on a multilevel run must truncate: {:?}",
        out.engine
    );
}

#[test]
fn level_budget_caps_coarsening() {
    // Large enough that coarsening genuinely needs several levels, so the
    // 1-level cap must trip before the natural coarsen-to threshold.
    let a = fgh_sparse::catalog::by_name("bcspwr10")
        .expect("catalog matrix")
        .generate_scaled(4, 3);
    let budget = Budget {
        max_levels: Some(1),
        ..Budget::UNLIMITED
    };
    let out = decompose_workload(
        Workload::Spmv(&a),
        &DecomposeConfig::new(Model::FineGrain2D, 4).with_budget(budget),
    )
    .and_then(WorkloadOutcome::into_spmv)
    .unwrap();
    out.decomposition.validate(&a).unwrap();
    assert!(
        out.engine.level_truncations > 0,
        "a 1-level cap must truncate coarsening: {:?}",
        out.engine
    );
}
