//! The big-index (`u64`) path end to end: streaming Matrix Market input →
//! width selection → decomposition → validation.
//!
//! The CI-sized tests exercise every stage of the wide path on small
//! band patterns (same code, small parameters); the `#[ignore]`d test at
//! the bottom runs a pattern whose fine-grain hypergraph genuinely
//! exceeds `u32::MAX` pins and needs tens of GB of RAM.

use fgh_core::{
    decompose_workload, decompose_workload_any, Budget, DecomposeConfig, Model, Workload,
    WorkloadAny, WorkloadOutcome,
};
use fgh_sparse::gen::BigPattern;
use fgh_sparse::{AnyCsrMatrix, CsrMatrix, IndexWidth};

/// Streams a band pattern through the Matrix Market writer and the
/// width-erased parser, compressing to CSR.
fn roundtrip_pattern(p: &BigPattern) -> AnyCsrMatrix {
    let mut buf = Vec::new();
    p.write_matrix_market_pattern(&mut buf).unwrap();
    fgh_sparse::io::parse_matrix_market_bytes_any(&buf)
        .unwrap()
        .try_into_csr()
        .unwrap()
}

#[test]
fn ci_sized_pattern_decomposes_on_both_paths_identically() {
    let p = BigPattern::new(600, &[1, 7, 40]);
    let any = roundtrip_pattern(&p);
    assert_eq!(any.nnz() as u64, p.nnz());
    // Small instance: the parser keeps it on the fast path.
    assert_eq!(any.width(), IndexWidth::U32);

    let cfg = DecomposeConfig::new(Model::FineGrain2D, 4);
    let erased = decompose_workload_any(WorkloadAny::Spmv(&any), &cfg)
        .and_then(WorkloadOutcome::into_spmv)
        .unwrap();

    // Force the identical instance through the wide path.
    let wide = any.convert_width(IndexWidth::U64).unwrap();
    let a64 = wide.as_u64().unwrap();
    let out = decompose_workload(Workload::Spmv(a64), &cfg)
        .and_then(WorkloadOutcome::into_spmv)
        .unwrap();
    assert_eq!(out.width, IndexWidth::U64);
    out.decomposition.validate(a64).unwrap();
    // ... and across the width-erased entry point.
    let erased_wide = decompose_workload_any(WorkloadAny::Spmv(&wide), &cfg)
        .and_then(WorkloadOutcome::into_spmv)
        .unwrap();
    assert_eq!(erased_wide.width, IndexWidth::U64);

    assert_eq!(erased.decomposition, out.decomposition);
    assert_eq!(erased.decomposition, erased_wide.decomposition);
    assert_eq!(erased.objective, out.objective);
}

#[test]
fn wide_byte_budget_truncates_but_stays_valid() {
    let p = BigPattern::new(400, &[1, 13]);
    let a64: CsrMatrix<u64> = p.to_csr().unwrap();
    let cfg = DecomposeConfig::new(Model::FineGrain2D, 4).with_budget(Budget::bytes(1));
    let out = decompose_workload(Workload::Spmv(&a64), &cfg)
        .and_then(WorkloadOutcome::into_spmv)
        .unwrap();
    out.decomposition.validate(&a64).unwrap();
    assert!(out.engine.byte_truncations > 0);
    assert!(out.status.is_degraded());
}

#[test]
fn oversized_pattern_selects_u64_without_materializing() {
    // nnz ≈ 5n ≈ 2.15e9, fine-grain pins ≈ 4.3e9 > u32::MAX: the matrix
    // itself fits 32-bit indices, but the fine-grain hypergraph does not —
    // exactly the case `IndexWidth::select` exists for. The arithmetic is
    // O(1); nothing is allocated.
    let p = BigPattern::new(430_000_000, &[1, 2]);
    assert!(p.n() < u64::from(u32::MAX));
    assert!(p.fine_grain_pins() > u64::from(u32::MAX));
    assert_eq!(p.width(), IndexWidth::U64);
    assert_eq!(
        IndexWidth::select(p.n(), p.n(), p.nnz()),
        IndexWidth::U64,
        "select must route the hypergraph-overflow case wide"
    );

    // A pattern whose order itself overflows u32 refuses narrow
    // materialization with a typed error (and would pick u64 anyway).
    let huge = BigPattern::new(1 << 33, &[]);
    assert_eq!(huge.width(), IndexWidth::U64);
    assert!(huge.to_csr::<u32>().is_err());
}

/// The real thing: > u32::MAX fine-grain pins, streamed to disk, parsed
/// back at width `u64`, decomposed under a byte budget, validated.
/// Needs roughly 60–100 GB of RAM and hours of wall clock — run manually
/// with `cargo test -p fgh-core --test big_index -- --ignored`.
#[test]
#[ignore = "needs ~100 GB RAM; exercises > u32::MAX hypergraph pins for real"]
fn huge_pattern_roundtrips_on_the_wide_path() {
    let p = BigPattern::new(430_000_000, &[1, 2]);
    assert!(p.fine_grain_pins() > u64::from(u32::MAX));

    let dir = std::env::temp_dir().join("fgh_big_index");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("huge.mtx");
    let f = std::fs::File::create(&path).unwrap();
    p.write_matrix_market_pattern(std::io::BufWriter::new(f))
        .unwrap();

    let any = fgh_sparse::io::read_matrix_market_any(&path)
        .unwrap()
        .try_into_csr()
        .unwrap();
    assert_eq!(any.width(), IndexWidth::U64);

    // A byte budget keeps the multilevel driver from building the full
    // level hierarchy; the result is truncated-but-valid, never an abort.
    let cfg = DecomposeConfig::new(Model::FineGrain2D, 8).with_budget(Budget::bytes(64 << 30));
    let out = decompose_workload_any(WorkloadAny::Spmv(&any), &cfg)
        .and_then(WorkloadOutcome::into_spmv)
        .unwrap();
    assert_eq!(out.width, IndexWidth::U64);
    let a64 = any.as_u64().unwrap();
    out.decomposition.validate(a64).unwrap();
    std::fs::remove_file(&path).ok();
}
