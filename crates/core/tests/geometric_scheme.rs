//! Geometric initial-partitioning scheme: balance, determinism, fallback,
//! and degenerate-geometry coverage on the fine-grain model.

use fgh_core::{
    decompose_workload, DecomposeConfig, InitialScheme, Model, Parallelism, Workload,
    WorkloadOutcome,
};
use fgh_sparse::catalog::by_name;
use fgh_sparse::{CooMatrix, CsrMatrix};

fn csr(rows: u32, cols: u32, triplets: Vec<(u32, u32, f64)>) -> CsrMatrix {
    CsrMatrix::from_coo(CooMatrix::from_triplets(rows, cols, triplets).unwrap())
}

/// Geometric seeding must keep every catalog decomposition inside the
/// balance tolerance (status not degraded) and produce a valid mapping.
#[test]
fn geometric_balances_catalog() {
    for (name, scale, k) in [
        ("sherman3", 8u32, 8u32),
        ("bcspwr10", 8, 8),
        ("ken-11", 16, 4),
    ] {
        let a = by_name(name).unwrap().generate_scaled(scale, 42);
        let cfg =
            DecomposeConfig::new(Model::FineGrain2D, k).with_initial(InitialScheme::Geometric);
        let out = decompose_workload(Workload::Spmv(&a), &cfg)
            .and_then(WorkloadOutcome::into_spmv)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        out.decomposition
            .validate(&a)
            .unwrap_or_else(|e| panic!("{name}: invalid decomposition: {e}"));
        assert!(
            !out.status.is_degraded(),
            "{name}: geometric run degraded: {:?}",
            out.status
        );
        assert!(out.objective > 0, "{name}: zero objective is implausible");
    }
}

/// `Auto` on the fine-grain model resolves to the geometric scheme:
/// bit-identical objectives.
#[test]
fn auto_matches_geometric_on_fine_grain() {
    let a = by_name("sherman3").unwrap().generate_scaled(8, 42);
    let geo = decompose_workload(
        Workload::Spmv(&a),
        &DecomposeConfig::new(Model::FineGrain2D, 8).with_initial(InitialScheme::Geometric),
    )
    .and_then(WorkloadOutcome::into_spmv)
    .unwrap();
    let auto = decompose_workload(
        Workload::Spmv(&a),
        &DecomposeConfig::new(Model::FineGrain2D, 8).with_initial(InitialScheme::Auto),
    )
    .and_then(WorkloadOutcome::into_spmv)
    .unwrap();
    assert_eq!(geo.objective, auto.objective);
    assert_eq!(geo.stats.total_volume(), auto.stats.total_volume());
}

/// Models without vertex coordinates (1D column-net) silently fall back
/// to GHG: requesting geometric must change nothing.
#[test]
fn geometric_falls_back_to_ghg_without_coords() {
    let a = by_name("sherman3").unwrap().generate_scaled(8, 42);
    let ghg = decompose_workload(
        Workload::Spmv(&a),
        &DecomposeConfig::new(Model::Hypergraph1DColNet, 8).with_initial(InitialScheme::Ghg),
    )
    .and_then(WorkloadOutcome::into_spmv)
    .unwrap();
    let geo = decompose_workload(
        Workload::Spmv(&a),
        &DecomposeConfig::new(Model::Hypergraph1DColNet, 8).with_initial(InitialScheme::Geometric),
    )
    .and_then(WorkloadOutcome::into_spmv)
    .unwrap();
    assert_eq!(ghg.objective, geo.objective);
    assert_eq!(ghg.stats.total_volume(), geo.stats.total_volume());
}

/// The parallel-determinism contract extends to the geometric scheme:
/// serial and threaded runs are bit-identical.
#[test]
fn geometric_deterministic_across_parallelism() {
    let a = by_name("bcspwr10").unwrap().generate_scaled(8, 42);
    let serial = decompose_workload(
        Workload::Spmv(&a),
        &DecomposeConfig::new(Model::FineGrain2D, 8)
            .with_initial(InitialScheme::Geometric)
            .with_parallelism(Parallelism::Serial),
    )
    .and_then(WorkloadOutcome::into_spmv)
    .unwrap();
    let threaded = decompose_workload(
        Workload::Spmv(&a),
        &DecomposeConfig::new(Model::FineGrain2D, 8)
            .with_initial(InitialScheme::Geometric)
            .with_parallelism(Parallelism::Threads(4)),
    )
    .and_then(WorkloadOutcome::into_spmv)
    .unwrap();
    assert_eq!(serial.objective, threaded.objective);
    assert_eq!(
        serial.stats.per_proc, threaded.stats.per_proc,
        "per-processor stats must be bit-identical across thread counts"
    );
}

/// Degenerate geometries: every nonzero on one row (all vertex rows
/// equal), every nonzero in one column, a diagonal line, and a matrix
/// with empty stripes between two dense bands. The sweep must not panic
/// and must return a valid decomposition.
#[test]
fn geometric_degenerate_geometries() {
    let n = 16u32;
    let single_row: Vec<(u32, u32, f64)> = (0..n).map(|j| (0, j, 1.0)).collect();
    let single_col: Vec<(u32, u32, f64)> = (0..n).map(|i| (i, 0, 1.0)).collect();
    let diagonal: Vec<(u32, u32, f64)> = (0..n).map(|i| (i, i, 1.0)).collect();
    // Dense bands at the top and bottom, empty stripe in the middle.
    let mut striped: Vec<(u32, u32, f64)> = Vec::new();
    for i in 0..3 {
        for j in 0..n {
            striped.push((i, j, 1.0));
            striped.push((n - 1 - i, j, 1.0));
        }
    }
    for (name, triplets) in [
        ("single_row", single_row),
        ("single_col", single_col),
        ("diagonal", diagonal),
        ("striped", striped),
    ] {
        let a = csr(n, n, triplets);
        for k in [2u32, 4] {
            let cfg =
                DecomposeConfig::new(Model::FineGrain2D, k).with_initial(InitialScheme::Geometric);
            let out = decompose_workload(Workload::Spmv(&a), &cfg)
                .and_then(WorkloadOutcome::into_spmv)
                .unwrap_or_else(|e| panic!("{name}/K={k}: geometric must not fail: {e}"));
            out.decomposition
                .validate(&a)
                .unwrap_or_else(|e| panic!("{name}/K={k}: invalid decomposition: {e}"));
        }
    }
}
