//! Adversarial fault-injection harness for the full pipeline:
//! Matrix Market parse → `decompose` → SpMV plan → multiply.
//!
//! The contract under test is simple: **no input may panic the
//! pipeline**. Parsing either yields a matrix or a typed
//! [`fgh_sparse::SparseError`]; `decompose` either yields a valid
//! decomposition (possibly tagged `Degraded`) or a typed
//! [`fgh_core::FghError`]; the SpMV executors agree with the serial
//! kernel. For consistent hypergraph models, an `Ok` outcome must also
//! satisfy eq. 3 of the paper (connectivity−1 cutsize = true volume) and
//! the balance contract its status claims.
//!
//! Four property tests at 64 cases each (overridable via
//! `PROPTEST_CASES`) give ≥ 256 generated fault cases per run, plus the
//! checked-in corpus in `tests/corpus/`.

use std::time::Duration;

use fgh_core::{
    decompose_workload, Budget, DecomposeConfig, DecompositionStatus, Model, Workload,
    WorkloadOutcome,
};
use fgh_sparse::io::read_matrix_market_from;
use fgh_sparse::{CooMatrix, CsrMatrix};
use fgh_spmv::parallel::parallel_spmv;
use fgh_spmv::DistributedSpmv;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------
// Garbled Matrix Market inputs
// ---------------------------------------------------------------------

/// A syntactically valid little Matrix Market file.
fn valid_mm(n: u32, entries: &[(u32, u32, f64)]) -> String {
    let mut s = format!(
        "%%MatrixMarket matrix coordinate real general\n{n} {n} {}\n",
        entries.len()
    );
    for &(i, j, v) in entries {
        s.push_str(&format!("{} {} {v}\n", i + 1, j + 1));
    }
    s
}

/// A random small valid file, deterministic in `seed`.
fn random_valid_mm(seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = rng.gen_range(2u32..=6);
    let nnz = rng.gen_range(0usize..=12);
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..nnz {
        seen.insert((rng.gen_range(0..n), rng.gen_range(0..n)));
    }
    let entries: Vec<(u32, u32, f64)> = seen
        .into_iter()
        .enumerate()
        .map(|(e, (i, j))| (i, j, e as f64 - 1.5))
        .collect();
    valid_mm(n, &entries)
}

/// Hostile parser input number `variant`: a truncation, a byte mutation,
/// a junk-line splice, or free-form junk.
fn garbled_mm(variant: usize, seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    let base = random_valid_mm(seed);
    match variant % 4 {
        0 => {
            // Truncated at an arbitrary byte.
            let cut = rng.gen_range(0..=base.len());
            base[..cut].to_string()
        }
        1 => {
            // One byte replaced with an arbitrary printable character.
            let mut s = base;
            if !s.is_empty() {
                let at = rng.gen_range(0..s.len());
                let b = rng.gen_range(0x20u8..0x7f) as char;
                s.replace_range(at..at + 1, &b.to_string());
            }
            s
        }
        2 => {
            // A junk line spliced in at an arbitrary line boundary.
            let junk: String = (0..rng.gen_range(0..30))
                .map(|_| rng.gen_range(0x20u8..0x7f) as char)
                .collect();
            let mut lines: Vec<String> = base.lines().map(String::from).collect();
            let at = rng.gen_range(0..=lines.len());
            lines.insert(at, junk);
            lines.join("\n")
        }
        _ => {
            // Free-form junk, sometimes behind a banner-like prefix.
            let mut s = if rng.gen_range(0..2) == 0 {
                String::from("%%MatrixMarket ")
            } else {
                String::new()
            };
            for _ in 0..rng.gen_range(0..120) {
                let c = rng.gen_range(0x0au8..0x7f) as char;
                s.push(if c.is_ascii_graphic() || c == ' ' || c == '\n' {
                    c
                } else {
                    '\n'
                });
            }
            s
        }
    }
}

// ---------------------------------------------------------------------
// Pathological matrices
// ---------------------------------------------------------------------

/// Pathological matrix number `variant`: empty, diagonal-only, dense row,
/// dense column, duplicate entries, or a small random pattern.
fn pathological_matrix(variant: usize, n: u32, seed: u64) -> CsrMatrix {
    let n = n.max(1);
    let t: Vec<(u32, u32, f64)> = match variant % 6 {
        0 => vec![],
        1 => (0..n).map(|i| (i, i, 1.0 + i as f64)).collect(),
        2 => {
            let r = (seed as u32) % n;
            let mut t: Vec<_> = (0..n).map(|j| (r, j, 1.0)).collect();
            t.extend((0..n).filter(|&i| i != r).map(|i| (i, i, 2.0)));
            t
        }
        3 => {
            let c = (seed as u32) % n;
            let mut t: Vec<_> = (0..n).map(|i| (i, c, 1.0)).collect();
            t.extend((0..n).filter(|&j| j != c).map(|j| (j, j, 2.0)));
            t
        }
        4 => {
            let mut t: Vec<_> = (0..n).map(|i| (i, i, 1.0)).collect();
            t.push((0, 0, 2.5));
            t.push((n - 1, 0, 0.5));
            t.push((n - 1, 0, -0.5));
            t
        }
        _ => {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut seen = std::collections::BTreeSet::new();
            for _ in 0..rng.gen_range(1usize..=40) {
                seen.insert((rng.gen_range(0..n), rng.gen_range(0..n)));
            }
            seen.into_iter()
                .enumerate()
                .map(|(e, (i, j))| (i, j, e as f64 * 0.3 - 2.0))
                .collect()
        }
    };
    CsrMatrix::from_coo(CooMatrix::from_triplets(n, n, t).expect("in bounds by construction"))
}

/// Runs one matrix through decompose → plan → multiply and checks every
/// contract an `Ok` outcome promises.
fn check_pipeline(a: &CsrMatrix, model: Model, k: u32, epsilon: f64, budget: Budget) {
    let mut cfg = DecomposeConfig::new(model, k);
    cfg.epsilon = epsilon;
    cfg.budget = budget;
    let out = match decompose_workload(Workload::Spmv(a), &cfg).and_then(WorkloadOutcome::into_spmv)
    {
        Ok(out) => out,
        // A typed error is an acceptable outcome; a panic is not (it
        // would abort the test).
        Err(_) => return,
    };
    out.decomposition
        .validate(a)
        .expect("Ok outcome must carry a valid decomposition");

    // Eq. 3: for the consistent hypergraph models the partitioner's
    // cutsize IS the communication volume, degraded or not.
    if matches!(
        model,
        Model::FineGrain2D | Model::Hypergraph1DColNet | Model::Hypergraph1DRowNet
    ) {
        assert_eq!(
            out.objective,
            out.stats.total_volume(),
            "{}: eq.-3 violated (cutsize {} != volume {})",
            model.name(),
            out.objective,
            out.stats.total_volume()
        );
    }

    // Balance contract: a Full outcome meets ε up to one work unit of
    // integer granularity; a Degraded outcome must say why.
    let imbalance = out.stats.load_imbalance_percent();
    match &out.status {
        DecompositionStatus::Full => {
            let allowed = epsilon * 100.0 + 100.0 * k as f64 / a.nnz().max(1) as f64 + 1e-6;
            assert!(
                imbalance <= allowed,
                "{}: Full outcome with {imbalance:.2}% > allowed {allowed:.2}%",
                model.name()
            );
        }
        DecompositionStatus::Degraded { reason } => {
            assert!(
                !reason.to_string().is_empty() && !reason.code().is_empty(),
                "degraded outcome without a reason"
            );
        }
    }

    // The plan and both executors must take any valid decomposition.
    let plan =
        DistributedSpmv::build(a, &out.decomposition).expect("plan from valid decomposition");
    let x: Vec<f64> = (0..a.ncols()).map(|j| (j as f64) * 0.4 - 1.0).collect();
    let (y_sim, _) = plan.multiply(&x).expect("simulate");
    let (y_par, _) = parallel_spmv(&plan, &x).expect("parallel");
    let y_serial = a.spmv(&x).expect("serial");
    for ((s, p), r) in y_sim.iter().zip(&y_par).zip(&y_serial) {
        assert!((s - r).abs() <= 1e-9 * r.abs().max(1.0));
        assert!((p - r).abs() <= 1e-9 * r.abs().max(1.0));
    }
}

const MODELS: [Model; 3] = [
    Model::FineGrain2D,
    Model::Hypergraph1DColNet,
    Model::Graph1D,
];

proptest! {
    /// The parser never panics on garbled input; it returns a matrix or a
    /// typed error.
    #[test]
    fn parser_survives_garbled_input(variant in 0usize..4, seed in 0u64..1_000_000) {
        let text = garbled_mm(variant, seed);
        let _ = read_matrix_market_from(text.as_bytes());
    }

    /// Garbled input that happens to parse still flows through the whole
    /// pipeline without panicking.
    #[test]
    fn garbled_parse_feeds_pipeline(variant in 0usize..4, seed in 0u64..1_000_000) {
        let text = garbled_mm(variant, seed);
        if let Ok(coo) = read_matrix_market_from(text.as_bytes()) {
            if let Ok(a) = CsrMatrix::try_from_coo(coo) {
                check_pipeline(&a, Model::FineGrain2D, 3, 0.03, Budget::UNLIMITED);
            }
        }
    }

    /// Pathological matrices × three models × boundary K values: the
    /// pipeline never panics, and Ok outcomes pass eq.-3 + balance +
    /// executor validation.
    #[test]
    fn pipeline_survives_pathological_matrices(
        variant in 0usize..6,
        n in 1u32..=12,
        seed in 0u64..1_000_000,
        model_ix in 0usize..3,
        k_sel in 0usize..4,
        eps_ix in 0usize..3,
    ) {
        let a = pathological_matrix(variant, n, seed);
        let nnz = a.nnz() as u32;
        let k = [1, 2, nnz.max(1), nnz + 1][k_sel];
        let epsilon = [0.0, 0.03, 0.5][eps_ix];
        check_pipeline(&a, MODELS[model_ix], k, epsilon, Budget::UNLIMITED);
    }

    /// The same pipeline under hostile budgets: an already-expired
    /// deadline and 1-pass/1-level caps must still produce valid
    /// outcomes.
    #[test]
    fn pipeline_survives_hostile_budgets(
        variant in 0usize..6,
        n in 1u32..=12,
        seed in 0u64..1_000_000,
        model_ix in 0usize..3,
        tight_wall in 0u32..2,
    ) {
        let a = pathological_matrix(variant, n, seed);
        let budget = if tight_wall == 1 {
            Budget::wall(Duration::from_nanos(1))
        } else {
            Budget { max_fm_passes: Some(1), max_levels: Some(1), ..Budget::UNLIMITED }
        };
        check_pipeline(&a, MODELS[model_ix], 3, 0.03, budget);
    }
}

// ---------------------------------------------------------------------
// Checked-in adversarial corpus
// ---------------------------------------------------------------------

/// Every file in `tests/corpus/` goes through the full pipeline. Files
/// that parse feed `decompose` under all three models; files that do not
/// must fail with a typed error. Nothing panics either way.
#[test]
fn corpus_never_panics() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "mtx"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 10,
        "corpus shrank to {} files",
        entries.len()
    );

    let (mut parsed, mut rejected) = (0usize, 0usize);
    for path in &entries {
        let text = std::fs::read(path).expect("readable corpus file");
        match read_matrix_market_from(text.as_slice()) {
            Err(_) => rejected += 1,
            Ok(coo) => {
                parsed += 1;
                let a = match CsrMatrix::try_from_coo(coo) {
                    Ok(a) => a,
                    Err(_) => continue,
                };
                for model in MODELS {
                    check_pipeline(&a, model, 3, 0.03, Budget::UNLIMITED);
                    check_pipeline(&a, model, 1, 0.03, Budget::UNLIMITED);
                }
            }
        }
    }
    // The corpus must stay adversarially mixed: some files parse, some
    // must be rejected.
    assert!(parsed >= 4, "only {parsed} corpus files parsed");
    assert!(rejected >= 3, "only {rejected} corpus files rejected");
}
