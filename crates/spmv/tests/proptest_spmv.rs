//! Property tests of the distributed SpMV engine: numeric exactness,
//! forward/transpose traffic identity, and plan/measurement agreement on
//! arbitrary matrices and arbitrary (even adversarial) decompositions.

use fgh_core::Decomposition;
use fgh_sparse::{CooMatrix, CsrMatrix};
use fgh_spmv::parallel::parallel_spmv;
use fgh_spmv::DistributedSpmv;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn square_matrix() -> impl Strategy<Value = CsrMatrix> {
    (2u32..=16)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::btree_set((0..n, 0..n), 1..=60),
            )
        })
        .prop_map(|(n, pos)| {
            let triplets: Vec<(u32, u32, f64)> = pos
                .into_iter()
                .enumerate()
                .map(|(e, (i, j))| (i, j, (e as f64) * 0.5 - 3.0))
                .collect();
            CsrMatrix::from_coo(CooMatrix::from_triplets(n, n, triplets).expect("in bounds"))
        })
}

fn random_decomposition(a: &CsrMatrix, k: u32, seed: u64) -> Decomposition {
    let mut rng = SmallRng::seed_from_u64(seed);
    let nz: Vec<u32> = (0..a.nnz())
        .map(|_| rand::Rng::gen_range(&mut rng, 0..k))
        .collect();
    let vo: Vec<u32> = (0..a.nrows())
        .map(|_| rand::Rng::gen_range(&mut rng, 0..k))
        .collect();
    Decomposition::general(a, k, nz, vo).expect("valid by construction")
}

proptest! {
    /// Simulator, threaded executor, and serial kernel agree numerically;
    /// simulator and plan agree on traffic.
    #[test]
    fn executors_agree(a in square_matrix(), k in 1u32..=4, seed in 0u64..500) {
        let d = random_decomposition(&a, k, seed);
        let plan = DistributedSpmv::build(&a, &d).expect("plan");
        let x: Vec<f64> = (0..a.ncols()).map(|j| (j as f64) * 0.7 - 1.0).collect();
        let (y_sim, m_sim) = plan.multiply(&x).expect("dims");
        let (y_par, m_par) = parallel_spmv(&plan, &x).expect("dims");
        let y_serial = a.spmv(&x).expect("dims");
        for ((s, p), r) in y_sim.iter().zip(&y_par).zip(&y_serial) {
            prop_assert!((s - r).abs() <= 1e-9 * r.abs().max(1.0));
            prop_assert!((p - r).abs() <= 1e-9 * r.abs().max(1.0));
        }
        prop_assert_eq!(&m_sim, &m_par);
        prop_assert_eq!(m_sim, plan.planned_comm());
    }

    /// Aᵀx is numerically exact and moves exactly the same number of
    /// words/messages as Ax under ANY decomposition (phase roles swap).
    #[test]
    fn transpose_identity(a in square_matrix(), k in 1u32..=4, seed in 0u64..500) {
        let d = random_decomposition(&a, k, seed);
        let plan = DistributedSpmv::build(&a, &d).expect("plan");
        let x: Vec<f64> = (0..a.nrows()).map(|i| 1.0 + (i % 3) as f64).collect();
        let (yt, mt) = plan.multiply_transpose(&x).expect("dims");
        let yt_serial = a.transpose().spmv(&x).expect("dims");
        for (p, r) in yt.iter().zip(&yt_serial) {
            prop_assert!((p - r).abs() <= 1e-9 * r.abs().max(1.0));
        }
        let (_, mf) = plan.multiply(&x).expect("dims");
        prop_assert_eq!(mf.total_words(), mt.total_words());
        prop_assert_eq!(mf.total_messages(), mt.total_messages());
        prop_assert_eq!(mf.expand_words, mt.fold_words);
        prop_assert_eq!(mf.fold_words, mt.expand_words);
    }

    /// Round schedules cover every transfer exactly once and respect the
    /// single-port constraint (checked inside schedule tests; here: the
    /// round count is sane for arbitrary plans).
    #[test]
    fn schedule_sane(a in square_matrix(), k in 2u32..=4, seed in 0u64..200) {
        let d = random_decomposition(&a, k, seed);
        let plan = DistributedSpmv::build(&a, &d).expect("plan");
        let sch = fgh_spmv::SpmvSchedule::build(&plan);
        let total: usize = sch.expand.rounds.iter().map(|r| r.len()).sum::<usize>()
            + sch.fold.rounds.iter().map(|r| r.len()).sum::<usize>();
        prop_assert_eq!(
            total,
            plan.expand_transfers().len() + plan.fold_transfers().len()
        );
        for phase in [&sch.expand, &sch.fold] {
            prop_assert!(phase.num_rounds() >= phase.max_degree);
            prop_assert!(phase.num_rounds() <= (2 * phase.max_degree).max(1) || phase.max_degree == 0);
        }
    }
}
