//! End-to-end check of the paper's central identity: the connectivity−1
//! cutsize reported by the partitioner equals the communication volume a
//! replayed distributed SpMV actually measures, for all three hypergraph
//! models (fine-grain 2D, 1D column-net, 1D row-net) on scaled-down
//! catalog matrices.

use fgh_core::models::{ColumnNetModel, FineGrainModel, RowNetModel};
use fgh_core::Decomposition;
use fgh_partition::{partition_hypergraph, PartitionConfig, PartitionResult};
use fgh_sparse::catalog::by_name;
use fgh_sparse::CsrMatrix;
use fgh_spmv::DistributedSpmv;

/// Catalog entries used for the identity check, scaled down to keep the
/// suite fast while preserving each family's sparsity structure.
const CASES: &[(&str, u32)] = &[("sherman3", 64), ("ken-11", 256), ("cre-d", 128)];

fn partition(hg: &fgh_hypergraph::Hypergraph, k: u32, seed: u64) -> PartitionResult {
    partition_hypergraph(hg, k, &PartitionConfig::with_seed(seed)).expect("partition")
}

/// Builds the plan, validates its internal invariants, and asserts the
/// planned/measured/cutsize triple agreement.
fn check_volume(name: &str, model: &str, a: &CsrMatrix, d: &Decomposition, cutsize: u64) {
    let plan = DistributedSpmv::build(a, d).expect("plan");
    plan.validate()
        .unwrap_or_else(|e| panic!("{name}/{model}: plan invariants: {e}"));
    plan.validate_cutsize(cutsize)
        .unwrap_or_else(|e| panic!("{name}/{model}: cutsize identity: {e}"));
}

#[test]
fn fine_grain_cutsize_equals_measured_volume() {
    for &(name, scale) in CASES {
        let a = by_name(name)
            .expect("catalog entry")
            .generate_scaled(scale, 42);
        let model = FineGrainModel::build(&a).expect("fine-grain model");
        model.validate().expect("fine-grain invariants");
        for k in [2u32, 4] {
            let r = partition(model.hypergraph(), k, 7);
            let d = model.decode(&a, &r.partition).expect("decode");
            check_volume(name, "fine-grain", &a, &d, r.cutsize);
        }
    }
}

#[test]
fn column_net_cutsize_equals_measured_volume() {
    for &(name, scale) in CASES {
        let a = by_name(name)
            .expect("catalog entry")
            .generate_scaled(scale, 43);
        let model = ColumnNetModel::build(&a).expect("column-net model");
        for k in [2u32, 4] {
            let r = partition(model.hypergraph(), k, 11);
            let d = model.decode(&a, &r.partition).expect("decode");
            check_volume(name, "column-net", &a, &d, r.cutsize);
        }
    }
}

#[test]
fn row_net_cutsize_equals_measured_volume() {
    for &(name, scale) in CASES {
        let a = by_name(name)
            .expect("catalog entry")
            .generate_scaled(scale, 44);
        let model = RowNetModel::build(&a).expect("row-net model");
        for k in [2u32, 4] {
            let r = partition(model.hypergraph(), k, 13);
            let d = model.decode(&a, &r.partition).expect("decode");
            check_volume(name, "row-net", &a, &d, r.cutsize);
        }
    }
}
