//! Real multi-threaded SpMV executor: one OS thread per processor,
//! crossbeam channels as the interconnect.
//!
//! Exercises the same [`DistributedSpmv`] plan as the simulator, but with
//! genuinely concurrent phases — each thread sends its expand messages,
//! receives the ones addressed to it, multiplies its local nonzeros, then
//! exchanges fold messages. The final `y` is assembled from the owners.

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::plan::{DistributedSpmv, MeasuredComm};
use crate::{Result, SpmvError};

/// A message between processors: element indices with their values.
enum Msg {
    /// Expand-phase x values.
    X(Vec<(u32, f64)>),
    /// Fold-phase partial y values.
    Y(Vec<(u32, f64)>),
}

/// Executes one `y = Ax` with `plan.k()` concurrent threads. Returns the
/// result and the measured communication (identical to the simulator's by
/// construction — the same transfers run, just concurrently).
pub fn parallel_spmv(plan: &DistributedSpmv, x: &[f64]) -> Result<(Vec<f64>, MeasuredComm)> {
    let n = plan.n() as usize;
    if x.len() != n {
        return Err(SpmvError::DimensionMismatch {
            expected: n,
            got: x.len(),
        });
    }
    let k = plan.k() as usize;

    // One inbox per processor.
    let mut senders: Vec<Sender<Msg>> = Vec::with_capacity(k);
    let mut receivers: Vec<Option<Receiver<Msg>>> = Vec::with_capacity(k);
    for _ in 0..k {
        let (s, r) = unbounded();
        senders.push(s);
        receivers.push(Some(r));
    }

    // Expected message counts per processor and phase.
    let mut expect_x = vec![0usize; k];
    let mut expect_y = vec![0usize; k];
    for t in plan.expand_transfers() {
        expect_x[t.to as usize] += 1;
    }
    for t in plan.fold_transfers() {
        expect_y[t.to as usize] += 1;
    }

    // A worker that loses a channel peer (because that peer died) returns
    // an error instead of panicking; the first error wins below.
    fn dead_peer() -> SpmvError {
        SpmvError::Worker("channel peer disconnected mid-multiply".into())
    }

    let mut results: Vec<Result<Vec<(u32, f64)>>> = Vec::with_capacity(k);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(k);
        for (p, inbox_slot) in receivers.iter_mut().enumerate() {
            let Some(inbox) = inbox_slot.take() else {
                results.push(Err(SpmvError::Worker(
                    "missing receiver for processor".into(),
                )));
                continue;
            };
            let senders = senders.clone();
            let expect_x = expect_x[p];
            let expect_y = expect_y[p];
            handles.push(scope.spawn(move || -> Result<Vec<(u32, f64)>> {
                let p = p as u32; // lint: checked-cast — p < k, a u32
                                  // Private x image: own values first.
                let mut x_local: Vec<f64> = vec![f64::NAN; n];
                for (j, &owner) in plan.vec_owner().iter().enumerate() {
                    if owner == p {
                        x_local[j] = x[j];
                    }
                }

                // Phase 1: expand — send what we own to the needers.
                for t in plan.expand_transfers().iter().filter(|t| t.from == p) {
                    let payload: Vec<(u32, f64)> = t
                        .indices
                        .iter()
                        .map(|&j| (j, x_local[j as usize]))
                        .collect();
                    senders[t.to as usize]
                        .send(Msg::X(payload))
                        .map_err(|_| dead_peer())?;
                }
                // Receive the x values addressed to us. Fold messages from
                // fast peers may already be interleaved; stash them.
                let mut stashed_y: Vec<Vec<(u32, f64)>> = Vec::new();
                let mut got_x = 0usize;
                while got_x < expect_x {
                    match inbox.recv().map_err(|_| dead_peer())? {
                        Msg::X(items) => {
                            for (j, v) in items {
                                x_local[j as usize] = v;
                            }
                            got_x += 1;
                        }
                        Msg::Y(items) => stashed_y.push(items),
                    }
                }

                // Phase 2: local multiply.
                let block = plan.local(p);
                let mut y_partial: Vec<f64> = vec![0.0; n];
                for e in 0..block.nnz() {
                    let (i, j, v) = (block.rows[e], block.cols[e], block.vals[e]);
                    let xj = x_local[j as usize];
                    debug_assert!(!xj.is_nan(), "processor {p} missing x_{j}");
                    y_partial[i as usize] += v * xj;
                }

                // Phase 3: fold — ship partials to the y owners.
                for t in plan.fold_transfers().iter().filter(|t| t.from == p) {
                    let payload: Vec<(u32, f64)> = t
                        .indices
                        .iter()
                        .map(|&i| (i, y_partial[i as usize]))
                        .collect();
                    senders[t.to as usize]
                        .send(Msg::Y(payload))
                        .map_err(|_| dead_peer())?;
                }
                let mut got_y = 0usize;
                for items in stashed_y {
                    for (i, v) in items {
                        y_partial[i as usize] += v;
                    }
                    got_y += 1;
                }
                while got_y < expect_y {
                    match inbox.recv().map_err(|_| dead_peer())? {
                        Msg::Y(items) => {
                            for (i, v) in items {
                                y_partial[i as usize] += v;
                            }
                            got_y += 1;
                        }
                        Msg::X(_) => {
                            // Protocol violation: all expand messages were
                            // already received.
                            return Err(SpmvError::Worker(
                                "unexpected expand message during fold phase".into(),
                            ));
                        }
                    }
                }

                // Emit the y entries we own.
                Ok(plan
                    .vec_owner()
                    .iter()
                    .enumerate()
                    .filter(|&(_, &owner)| owner == p)
                    .map(|(i, _)| (i as u32, y_partial[i])) // lint: checked-cast — i < n = nrows, a u32
                    .collect())
            }));
        }
        for h in handles {
            results.push(h.join().unwrap_or_else(|e| {
                let msg = if let Some(s) = e.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = e.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "worker panicked".to_string()
                };
                Err(SpmvError::Worker(msg))
            }));
        }
    });

    let mut y = vec![0.0; n];
    for owned in results {
        for (i, v) in owned? {
            y[i as usize] = v;
        }
    }
    Ok((y, plan.planned_comm()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgh_core::{
        decompose_workload, DecomposeConfig, Decomposition, Model, Workload, WorkloadOutcome,
    };
    use fgh_sparse::gen::{self, ValueMode};
    use fgh_sparse::{CooMatrix, CsrMatrix};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn parallel_matches_serial_small() {
        let a = CsrMatrix::from_coo(
            CooMatrix::from_triplets(
                3,
                3,
                vec![
                    (0, 0, 1.0),
                    (0, 2, 2.0),
                    (1, 1, 3.0),
                    (2, 0, 4.0),
                    (2, 2, 5.0),
                ],
            )
            .unwrap(),
        );
        let d = Decomposition::rowwise(&a, 3, vec![0, 1, 2]).unwrap();
        let plan = DistributedSpmv::build(&a, &d).unwrap();
        let x = vec![1.0, -2.0, 0.5];
        let (y, _) = parallel_spmv(&plan, &x).unwrap();
        assert_eq!(y, a.spmv(&x).unwrap());
    }

    #[test]
    fn parallel_matches_simulator_all_models() {
        let a = gen::grid5(
            10,
            10,
            1.0,
            ValueMode::Laplacian,
            &mut SmallRng::seed_from_u64(4),
        );
        let x: Vec<f64> = (0..a.ncols()).map(|j| (j as f64).sin() + 2.0).collect();
        for model in [
            Model::Graph1D,
            Model::Hypergraph1DColNet,
            Model::Hypergraph1DRowNet,
            Model::FineGrain2D,
        ] {
            let out = decompose_workload(Workload::Spmv(&a), &DecomposeConfig::new(model, 4))
                .and_then(WorkloadOutcome::into_spmv)
                .unwrap();
            let plan = DistributedSpmv::build(&a, &out.decomposition).unwrap();
            let (y_sim, m_sim) = plan.multiply(&x).unwrap();
            let (y_par, m_par) = parallel_spmv(&plan, &x).unwrap();
            for (a_, b_) in y_sim.iter().zip(&y_par) {
                assert!((a_ - b_).abs() < 1e-12, "{model:?}");
            }
            assert_eq!(m_sim, m_par, "{model:?} measured comm must agree");
        }
    }

    #[test]
    fn parallel_handles_k1() {
        let a = CsrMatrix::identity(5);
        let d = Decomposition::rowwise(&a, 1, vec![0; 5]).unwrap();
        let plan = DistributedSpmv::build(&a, &d).unwrap();
        let (y, m) = parallel_spmv(&plan, &[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(y, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(m.total_words(), 0);
    }

    #[test]
    fn repeated_multiplies_are_stable() {
        // Iterative-solver usage: same plan, many multiplies.
        let a = gen::scale_free(
            80,
            2.0,
            ValueMode::Laplacian,
            &mut SmallRng::seed_from_u64(6),
        );
        let out = decompose_workload(
            Workload::Spmv(&a),
            &DecomposeConfig::new(Model::FineGrain2D, 4),
        )
        .and_then(WorkloadOutcome::into_spmv)
        .unwrap();
        let plan = DistributedSpmv::build(&a, &out.decomposition).unwrap();
        let mut x = vec![1.0; a.ncols() as usize];
        for _ in 0..5 {
            let (y1, _) = parallel_spmv(&plan, &x).unwrap();
            let (y2, _) = plan.multiply(&x).unwrap();
            for (a_, b_) in y1.iter().zip(&y2) {
                assert!((a_ - b_).abs() < 1e-9);
            }
            // Normalize to keep values bounded (power-iteration style).
            let norm = y1.iter().map(|v| v * v).sum::<f64>().sqrt();
            x = y1.iter().map(|v| v / norm.max(1e-300)).collect();
        }
    }
}
