//! Communication plan and single-threaded executing simulator.

use fgh_core::Decomposition;
use fgh_invariant::{invariant, InvariantViolation};
use fgh_sparse::CsrMatrix;
use fgh_trace::SpanHandle;

use crate::{Result, SpmvError};

/// The local share of one processor: its nonzeros as triplets.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LocalBlock {
    /// Row index of each local nonzero.
    pub rows: Vec<u32>,
    /// Column index of each local nonzero.
    pub cols: Vec<u32>,
    /// Value of each local nonzero.
    pub vals: Vec<f64>,
}

impl LocalBlock {
    /// Number of local nonzeros (scalar multiplies).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }
}

/// One directed transfer in a phase: `indices` elements go from `from` to
/// `to` (x indices in the expand phase, y indices in the fold phase).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transfer {
    /// Sending processor.
    pub from: u32,
    /// Receiving processor.
    pub to: u32,
    /// Element indices carried by this message.
    pub indices: Vec<u32>,
}

/// Words/messages actually moved by one executed SpMV.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MeasuredComm {
    /// Words moved in the expand phase.
    pub expand_words: u64,
    /// Words moved in the fold phase.
    pub fold_words: u64,
    /// Messages in the expand phase.
    pub expand_messages: u64,
    /// Messages in the fold phase.
    pub fold_messages: u64,
    /// Words sent per processor (both phases).
    pub sent_words_per_proc: Vec<u64>,
}

impl MeasuredComm {
    /// Total words moved.
    pub fn total_words(&self) -> u64 {
        self.expand_words + self.fold_words
    }

    /// Total messages.
    pub fn total_messages(&self) -> u64 {
        self.expand_messages + self.fold_messages
    }
}

/// A distributed matrix plus the full communication plan of one SpMV.
///
/// Built once per decomposition; both the simulator and the threaded
/// executor run off the same plan.
#[derive(Debug, Clone)]
pub struct DistributedSpmv {
    k: u32,
    n: u32,
    /// `x_j`/`y_j` owner.
    vec_owner: Vec<u32>,
    /// Per-processor local nonzeros.
    local: Vec<LocalBlock>,
    /// Expand-phase messages (x words).
    expand: Vec<Transfer>,
    /// Fold-phase messages (partial y words).
    fold: Vec<Transfer>,
}

impl DistributedSpmv {
    /// Builds the distributed matrix and communication plan for
    /// decomposition `d` of matrix `a`.
    pub fn build(a: &CsrMatrix, d: &Decomposition) -> Result<Self> {
        d.validate(a)
            .map_err(|e| SpmvError::BadDecomposition(e.to_string()))?;
        let k = d.k;
        // `d.validate(a)` guaranteed `d.n == a.nrows()`, so the order fits
        // the matrix's u32 indices even though `Decomposition` carries u64.
        let n = a.nrows();

        let mut local = vec![LocalBlock::default(); k as usize];
        // Needs matrices: which processors hold nonzeros of each column/row.
        let mut col_needs: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
        let mut row_holds: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
        {
            for (e, (i, j, v)) in a.iter().enumerate() {
                let p = d.nonzero_owner[e];
                let b = &mut local[p as usize];
                b.rows.push(i);
                b.cols.push(j);
                b.vals.push(v);
                if !col_needs[j as usize].contains(&p) {
                    col_needs[j as usize].push(p);
                }
                if !row_holds[i as usize].contains(&p) {
                    row_holds[i as usize].push(p);
                }
            }
        }

        // Expand: owner(x_j) -> every needer except itself. Group per
        // (from, to) pair into one message.
        let mut expand_map: Vec<Vec<(u32, Vec<u32>)>> = vec![Vec::new(); k as usize];
        for j in 0..n {
            let owner = d.vec_owner[j as usize];
            for &p in &col_needs[j as usize] {
                if p == owner {
                    continue;
                }
                let row = &mut expand_map[owner as usize];
                match row.iter_mut().find(|(to, _)| *to == p) {
                    Some((_, idx)) => idx.push(j),
                    None => row.push((p, vec![j])),
                }
            }
        }
        // Fold: every holder of row i except owner(y_i) -> owner.
        let mut fold_map: Vec<Vec<(u32, Vec<u32>)>> = vec![Vec::new(); k as usize];
        for i in 0..n {
            let owner = d.vec_owner[i as usize];
            for &p in &row_holds[i as usize] {
                if p == owner {
                    continue;
                }
                let row = &mut fold_map[p as usize];
                match row.iter_mut().find(|(to, _)| *to == owner) {
                    Some((_, idx)) => idx.push(i),
                    None => row.push((owner, vec![i])),
                }
            }
        }

        let flatten = |map: Vec<Vec<(u32, Vec<u32>)>>| -> Vec<Transfer> {
            map.into_iter()
                .enumerate()
                .flat_map(|(from, tos)| {
                    tos.into_iter().map(move |(to, indices)| Transfer {
                        from: from as u32, // lint: checked-cast — from < k, a u32
                        to,
                        indices,
                    })
                })
                .collect()
        };

        Ok(DistributedSpmv {
            k,
            n,
            vec_owner: d.vec_owner.clone(),
            local,
            expand: flatten(expand_map),
            fold: flatten(fold_map),
        })
    }

    /// Number of processors.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Matrix order.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Owner of `x_j`/`y_j`.
    pub fn vec_owner(&self) -> &[u32] {
        &self.vec_owner
    }

    /// Local nonzeros of processor `p`.
    pub fn local(&self, p: u32) -> &LocalBlock {
        &self.local[p as usize]
    }

    /// Expand-phase transfers.
    pub fn expand_transfers(&self) -> &[Transfer] {
        &self.expand
    }

    /// Fold-phase transfers.
    pub fn fold_transfers(&self) -> &[Transfer] {
        &self.fold
    }

    /// Static communication cost of the plan (what *will* move, each
    /// SpMV): identical to what [`DistributedSpmv::multiply`] measures.
    pub fn planned_comm(&self) -> MeasuredComm {
        let mut m = MeasuredComm {
            sent_words_per_proc: vec![0; self.k as usize],
            ..Default::default()
        };
        for t in &self.expand {
            m.expand_words += t.indices.len() as u64;
            m.expand_messages += 1;
            m.sent_words_per_proc[t.from as usize] += t.indices.len() as u64;
        }
        for t in &self.fold {
            m.fold_words += t.indices.len() as u64;
            m.fold_messages += 1;
            m.sent_words_per_proc[t.from as usize] += t.indices.len() as u64;
        }
        m
    }

    /// Checks the structural invariants of the plan: vector owners in
    /// range, every transfer nonempty with distinct in-range endpoints and
    /// in-bounds element indices, and local nonzero coordinates inside the
    /// matrix order.
    pub fn validate(&self) -> std::result::Result<(), InvariantViolation> {
        const S: &str = "DistributedSpmv";
        invariant!(self.k > 0, S, "k.nonzero", "plan has k = 0 processors");
        invariant!(
            self.vec_owner.len() == self.n as usize,
            S,
            "vec_owner.len",
            "{} vector owners for order {}",
            self.vec_owner.len(),
            self.n
        );
        for (j, &p) in self.vec_owner.iter().enumerate() {
            invariant!(
                p < self.k,
                S,
                "vec_owner.in_range",
                "x_{j}/y_{j} owned by processor {p} >= k = {}",
                self.k
            );
        }
        invariant!(
            self.local.len() == self.k as usize,
            S,
            "local.len",
            "{} local blocks for {} processors",
            self.local.len(),
            self.k
        );
        for (p, b) in self.local.iter().enumerate() {
            invariant!(
                b.rows.len() == b.cols.len() && b.cols.len() == b.vals.len(),
                S,
                "local.parallel",
                "processor {p} block has rows/cols/vals lengths {}/{}/{}",
                b.rows.len(),
                b.cols.len(),
                b.vals.len()
            );
            for (&i, &j) in b.rows.iter().zip(&b.cols) {
                invariant!(
                    i < self.n && j < self.n,
                    S,
                    "local.in_bounds",
                    "processor {p} holds nonzero at ({i}, {j}) outside order {}",
                    self.n
                );
            }
        }
        for (phase, transfers) in [("expand", &self.expand), ("fold", &self.fold)] {
            for t in transfers.iter() {
                invariant!(
                    t.from < self.k && t.to < self.k && t.from != t.to,
                    S,
                    "transfer.endpoints",
                    "{phase} transfer {} -> {} invalid for k = {}",
                    t.from,
                    t.to,
                    self.k
                );
                invariant!(
                    !t.indices.is_empty(),
                    S,
                    "transfer.nonempty",
                    "{phase} transfer {} -> {} carries no words",
                    t.from,
                    t.to
                );
                for &e in &t.indices {
                    invariant!(
                        e < self.n,
                        S,
                        "transfer.in_bounds",
                        "{phase} transfer {} -> {} carries element {e} >= n = {}",
                        t.from,
                        t.to,
                        self.n
                    );
                }
            }
        }
        Ok(())
    }

    /// Cross-checks the paper's headline identity against an *executed*
    /// SpMV: replays one `y = Ax` with a deterministic input and verifies
    /// that the words actually moved equal both the static
    /// [`DistributedSpmv::planned_comm`] cost and `cutsize` — the
    /// connectivity−1 objective the partitioner reported. For consistent
    /// models (fine-grain and both 1D hypergraph variants) the equality is
    /// exact (eq. 3 of the paper); a mismatch means either the plan or the
    /// cutsize bookkeeping is wrong.
    pub fn validate_cutsize(&self, cutsize: u64) -> std::result::Result<(), InvariantViolation> {
        const S: &str = "DistributedSpmv";
        self.validate()?;
        let x: Vec<f64> = (0..self.n).map(|j| j as f64 * 0.5 + 1.0).collect();
        let measured = match self.multiply(&x) {
            Ok((_, m)) => m,
            Err(e) => {
                return Err(InvariantViolation::new(
                    S,
                    "replay.failed",
                    format!("plan replay aborted: {e}"),
                ))
            }
        };
        let planned = self.planned_comm();
        invariant!(
            planned == measured,
            S,
            "plan.vs_replay",
            "planned {} words / {} messages, replay moved {} words / {} messages",
            planned.total_words(),
            planned.total_messages(),
            measured.total_words(),
            measured.total_messages()
        );
        invariant!(
            measured.total_words() == cutsize,
            S,
            "cutsize.vs_volume",
            "connectivity-1 cutsize {cutsize} != replayed volume {} \
             (expand {} + fold {})",
            measured.total_words(),
            measured.expand_words,
            measured.fold_words
        );
        Ok(())
    }

    /// Executes one `y = Aᵀx` sequentially using the *same* communication
    /// plan with the transfer roles swapped: the transpose's expand
    /// follows the fold transfers in reverse (owner of `x_i` → holders of
    /// row `i`), and its fold follows the expand transfers in reverse.
    ///
    /// A consequence of symmetric partitioning the paper's consistency
    /// condition buys: `Ax` and `Aᵀx` cost exactly the same communication
    /// under one decomposition — handy for BiCG-type solvers that need
    /// both.
    pub fn multiply_transpose(&self, x: &[f64]) -> Result<(Vec<f64>, MeasuredComm)> {
        if x.len() != self.n as usize {
            return Err(SpmvError::DimensionMismatch {
                expected: self.n as usize,
                got: x.len(),
            });
        }
        let k = self.k as usize;
        let n = self.n as usize;

        let mut x_local: Vec<Vec<f64>> = vec![vec![f64::NAN; n]; k];
        for i in 0..n {
            x_local[self.vec_owner[i] as usize][i] = x[i];
        }
        let mut measured = MeasuredComm {
            sent_words_per_proc: vec![0; k],
            ..Default::default()
        };

        // Transpose expand: reverse of the fold plan (owner -> row holders).
        for t in &self.fold {
            // In the fold plan, `t.from` holds nonzeros of rows `t.indices`
            // whose y-owner is `t.to`; for Aᵀ, that x-owner must send x_i
            // the other way.
            for &i in &t.indices {
                let v = x_local[t.to as usize][i as usize];
                debug_assert!(
                    !v.is_nan(),
                    "transpose expand of x_{i} from non-owner {}",
                    t.to
                );
                x_local[t.from as usize][i as usize] = v;
            }
            measured.expand_words += t.indices.len() as u64;
            measured.expand_messages += 1;
            measured.sent_words_per_proc[t.to as usize] += t.indices.len() as u64;
        }

        // Local multiply with (i, j) swapped: y_j += a_ij * x_i.
        let mut y_partial: Vec<Vec<f64>> = vec![vec![0.0; n]; k];
        for (p, block) in self.local.iter().enumerate() {
            for e in 0..block.nnz() {
                let (i, j, v) = (block.rows[e], block.cols[e], block.vals[e]);
                let xi = x_local[p][i as usize];
                debug_assert!(!xi.is_nan(), "processor {p} multiplies unreceived x_{i}");
                y_partial[p][j as usize] += v * xi;
            }
        }

        // Transpose fold: reverse of the expand plan (column holders -> owner).
        for t in &self.expand {
            for &j in &t.indices {
                let v = y_partial[t.to as usize][j as usize];
                y_partial[t.from as usize][j as usize] += v;
            }
            measured.fold_words += t.indices.len() as u64;
            measured.fold_messages += 1;
            measured.sent_words_per_proc[t.to as usize] += t.indices.len() as u64;
        }

        let mut y = vec![0.0; n];
        for j in 0..n {
            y[j] = y_partial[self.vec_owner[j] as usize][j];
        }
        Ok((y, measured))
    }

    /// Executes one `y = Ax` sequentially, phase by phase, moving values
    /// exactly as the plan prescribes, and returns `(y, measured
    /// communication)`.
    ///
    /// Every processor reads *only* values it owns or received — this is
    /// checked with poisoned buffers in debug builds — so the result being
    /// equal to the serial SpMV certifies the plan is complete.
    pub fn multiply(&self, x: &[f64]) -> Result<(Vec<f64>, MeasuredComm)> {
        self.multiply_traced(x, &SpanHandle::noop())
    }

    /// [`DistributedSpmv::multiply`] recording the three phases as
    /// `expand` / `local-mult` / `fold` child spans of `parent`, with
    /// `words` and `messages` counters on the communication phases and a
    /// `nonzeros` counter on the multiply. Under a no-op handle this is
    /// exactly [`DistributedSpmv::multiply`].
    pub fn multiply_traced(
        &self,
        x: &[f64],
        parent: &SpanHandle,
    ) -> Result<(Vec<f64>, MeasuredComm)> {
        if x.len() != self.n as usize {
            return Err(SpmvError::DimensionMismatch {
                expected: self.n as usize,
                got: x.len(),
            });
        }
        let k = self.k as usize;
        let n = self.n as usize;

        // Per-processor private x image: own entries + received entries.
        let mut x_local: Vec<Vec<f64>> = vec![vec![f64::NAN; n]; k];
        for j in 0..n {
            x_local[self.vec_owner[j] as usize][j] = x[j];
        }

        let mut measured = MeasuredComm {
            sent_words_per_proc: vec![0; k],
            ..Default::default()
        };

        // Phase 1: expand.
        {
            let espan = parent.child("expand");
            for t in &self.expand {
                for &j in &t.indices {
                    let v = x_local[t.from as usize][j as usize];
                    debug_assert!(!v.is_nan(), "expand of x_{j} from non-owner {}", t.from);
                    x_local[t.to as usize][j as usize] = v;
                }
                measured.expand_words += t.indices.len() as u64;
                measured.expand_messages += 1;
                measured.sent_words_per_proc[t.from as usize] += t.indices.len() as u64;
            }
            if espan.is_enabled() {
                espan.counter("words", measured.expand_words);
                espan.counter("messages", measured.expand_messages);
            }
        }

        // Phase 2: local multiply into per-processor partial y.
        let mut y_partial: Vec<Vec<f64>> = vec![vec![0.0; n]; k];
        {
            let mspan = parent.child("local-mult");
            let mut flops = 0u64;
            for (p, block) in self.local.iter().enumerate() {
                for e in 0..block.nnz() {
                    let (i, j, v) = (block.rows[e], block.cols[e], block.vals[e]);
                    let xj = x_local[p][j as usize];
                    debug_assert!(!xj.is_nan(), "processor {p} multiplies unreceived x_{j}");
                    y_partial[p][i as usize] += v * xj;
                }
                flops += block.nnz() as u64;
            }
            if mspan.is_enabled() {
                mspan.counter("nonzeros", flops);
            }
        }

        // Phase 3: fold partial results to the y owners.
        {
            let fspan = parent.child("fold");
            for t in &self.fold {
                for &i in &t.indices {
                    let v = y_partial[t.from as usize][i as usize];
                    y_partial[t.to as usize][i as usize] += v;
                }
                measured.fold_words += t.indices.len() as u64;
                measured.fold_messages += 1;
                measured.sent_words_per_proc[t.from as usize] += t.indices.len() as u64;
            }
            if fspan.is_enabled() {
                fspan.counter("words", measured.fold_words);
                fspan.counter("messages", measured.fold_messages);
            }
        }

        // Assemble the global y from each owner.
        let mut y = vec![0.0; n];
        for i in 0..n {
            y[i] = y_partial[self.vec_owner[i] as usize][i];
        }
        Ok((y, measured))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgh_core::{
        decompose_workload, CommStats, DecomposeConfig, Model, Workload, WorkloadOutcome,
    };
    use fgh_sparse::gen::{self, ValueMode};
    use fgh_sparse::CooMatrix;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn sample() -> CsrMatrix {
        CsrMatrix::from_coo(
            CooMatrix::from_triplets(
                4,
                4,
                vec![
                    (0, 0, 2.0),
                    (1, 1, 3.0),
                    (2, 2, 4.0),
                    (3, 3, 5.0),
                    (1, 0, 1.0),
                    (3, 1, -1.0),
                    (1, 2, 0.5),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn simulated_spmv_matches_serial() {
        let a = sample();
        let d = Decomposition::rowwise(&a, 2, vec![0, 1, 0, 1]).unwrap();
        let plan = DistributedSpmv::build(&a, &d).unwrap();
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let (y, _) = plan.multiply(&x).unwrap();
        assert_eq!(y, a.spmv(&x).unwrap());
    }

    #[test]
    fn measured_comm_matches_commstats_for_all_models() {
        let a = gen::grid5(
            12,
            12,
            1.0,
            ValueMode::Laplacian,
            &mut SmallRng::seed_from_u64(3),
        );
        for model in [
            Model::Graph1D,
            Model::Hypergraph1DColNet,
            Model::Hypergraph1DRowNet,
            Model::FineGrain2D,
        ] {
            let out = decompose_workload(Workload::Spmv(&a), &DecomposeConfig::new(model, 4))
                .and_then(WorkloadOutcome::into_spmv)
                .unwrap();
            let plan = DistributedSpmv::build(&a, &out.decomposition).unwrap();
            let x: Vec<f64> = (0..a.ncols()).map(|j| j as f64 * 0.25 + 1.0).collect();
            let (y, m) = plan.multiply(&x).unwrap();

            // Numerics: distributed result equals serial result.
            let y_serial = a.spmv(&x).unwrap();
            for (ya, yb) in y.iter().zip(&y_serial) {
                assert!((ya - yb).abs() < 1e-9, "{model:?}");
            }

            // Measured words/messages equal the analytic CommStats.
            let s = CommStats::compute(&a, &out.decomposition).unwrap();
            assert_eq!(m.expand_words, s.expand_volume, "{model:?} expand words");
            assert_eq!(m.fold_words, s.fold_volume, "{model:?} fold words");
            assert_eq!(
                m.expand_messages, s.expand_messages,
                "{model:?} expand msgs"
            );
            assert_eq!(m.fold_messages, s.fold_messages, "{model:?} fold msgs");
            for p in 0..4usize {
                assert_eq!(
                    m.sent_words_per_proc[p], s.per_proc[p].sent_words,
                    "{model:?} proc {p} sent words"
                );
            }

            // And the plan's static cost equals the measured cost.
            assert_eq!(plan.planned_comm(), m);
        }
    }

    #[test]
    fn cutsize_equals_measured_volume_fine_grain() {
        // The paper's headline identity, end to end: connectivity−1
        // cutsize == words actually moved.
        let a = gen::scale_free(
            150,
            2.5,
            ValueMode::Laplacian,
            &mut SmallRng::seed_from_u64(9),
        );
        let out = decompose_workload(
            Workload::Spmv(&a),
            &DecomposeConfig::new(Model::FineGrain2D, 8),
        )
        .and_then(WorkloadOutcome::into_spmv)
        .unwrap();
        let plan = DistributedSpmv::build(&a, &out.decomposition).unwrap();
        let x = vec![1.0; a.ncols() as usize];
        let (_, m) = plan.multiply(&x).unwrap();
        assert_eq!(out.objective, m.total_words());
    }

    #[test]
    fn random_decompositions_still_compute_correctly() {
        // Any valid decomposition — even a terrible random one — must give
        // the right numeric answer.
        let a = sample();
        let mut rng = SmallRng::seed_from_u64(1);
        for k in [1u32, 2, 3, 5] {
            let nz: Vec<u32> = (0..a.nnz()).map(|_| rng.gen_range(0..k)).collect();
            let vo: Vec<u32> = (0..4).map(|_| rng.gen_range(0..k)).collect();
            let d = Decomposition::general(&a, k, nz, vo).unwrap();
            let plan = DistributedSpmv::build(&a, &d).unwrap();
            let x = vec![0.5, -1.0, 2.0, 7.0];
            let (y, _) = plan.multiply(&x).unwrap();
            let y_serial = a.spmv(&x).unwrap();
            for (ya, yb) in y.iter().zip(&y_serial) {
                assert!((ya - yb).abs() < 1e-12, "k={k}");
            }
        }
    }

    #[test]
    fn transpose_multiply_matches_serial_transpose() {
        let a = gen::scale_free(
            120,
            2.0,
            ValueMode::Laplacian,
            &mut SmallRng::seed_from_u64(8),
        );
        let at = a.transpose();
        let out = decompose_workload(
            Workload::Spmv(&a),
            &DecomposeConfig::new(Model::FineGrain2D, 5),
        )
        .and_then(WorkloadOutcome::into_spmv)
        .unwrap();
        let plan = DistributedSpmv::build(&a, &out.decomposition).unwrap();
        let x: Vec<f64> = (0..a.nrows())
            .map(|i| (i as f64 * 0.11).sin() + 2.0)
            .collect();
        let (y, _) = plan.multiply_transpose(&x).unwrap();
        let y_serial = at.spmv(&x).unwrap();
        for (a_, b_) in y.iter().zip(&y_serial) {
            assert!((a_ - b_).abs() < 1e-9, "transpose numeric mismatch");
        }
    }

    #[test]
    fn transpose_costs_the_same_communication() {
        // Symmetric partitioning makes Ax and Aᵀx equally expensive: same
        // total words, same message count (phases swap roles).
        let a = gen::scale_free(
            150,
            2.5,
            ValueMode::Laplacian,
            &mut SmallRng::seed_from_u64(3),
        );
        let out = decompose_workload(
            Workload::Spmv(&a),
            &DecomposeConfig::new(Model::FineGrain2D, 6),
        )
        .and_then(WorkloadOutcome::into_spmv)
        .unwrap();
        let plan = DistributedSpmv::build(&a, &out.decomposition).unwrap();
        let x = vec![1.0; a.nrows() as usize];
        let (_, m_fwd) = plan.multiply(&x).unwrap();
        let (_, m_t) = plan.multiply_transpose(&x).unwrap();
        assert_eq!(m_fwd.total_words(), m_t.total_words());
        assert_eq!(m_fwd.total_messages(), m_t.total_messages());
        // Phase volumes swap exactly.
        assert_eq!(m_fwd.expand_words, m_t.fold_words);
        assert_eq!(m_fwd.fold_words, m_t.expand_words);
    }

    #[test]
    fn transpose_on_nonsymmetric_pattern() {
        // A strictly triangular (very nonsymmetric) matrix with dummy
        // diagonal handling via the fine-grain model.
        let a = CsrMatrix::from_coo(
            CooMatrix::from_triplets(
                4,
                4,
                vec![(1, 0, 2.0), (2, 0, 3.0), (2, 1, 4.0), (3, 2, 5.0)],
            )
            .unwrap(),
        );
        let out = decompose_workload(
            Workload::Spmv(&a),
            &DecomposeConfig::new(Model::FineGrain2D, 2),
        )
        .and_then(WorkloadOutcome::into_spmv)
        .unwrap();
        let plan = DistributedSpmv::build(&a, &out.decomposition).unwrap();
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let (y, _) = plan.multiply_transpose(&x).unwrap();
        assert_eq!(y, a.transpose().spmv(&x).unwrap());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = sample();
        let d = Decomposition::rowwise(&a, 2, vec![0, 1, 0, 1]).unwrap();
        let plan = DistributedSpmv::build(&a, &d).unwrap();
        assert!(plan.multiply(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn local_blocks_partition_the_nonzeros() {
        let a = sample();
        let d = Decomposition::rowwise(&a, 2, vec![0, 1, 0, 1]).unwrap();
        let plan = DistributedSpmv::build(&a, &d).unwrap();
        let total: usize = (0..2).map(|p| plan.local(p).nnz()).sum();
        assert_eq!(total, a.nnz());
        // Row-wise: every local nonzero's row is owned by that processor.
        for p in 0..2u32 {
            for &i in &plan.local(p).rows {
                assert_eq!(plan.vec_owner()[i as usize], p);
            }
        }
    }
}
