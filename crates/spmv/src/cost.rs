//! Analytic machine cost model: predicts parallel SpMV time and speedup
//! from a communication plan under an α-β-γ machine (per-message latency,
//! per-word bandwidth cost, per-flop compute cost).
//!
//! This extends the paper's evaluation: Table 2 reports volumes and
//! message counts separately; the cost model combines them into a single
//! predicted runtime, exposing the tradeoff the paper discusses in §4 —
//! the fine-grain model halves the volume (β term) but may double the
//! message count (α term), so which model wins depends on the machine's
//! α/β ratio.

use crate::plan::DistributedSpmv;

/// An α-β-γ machine: `time = α · messages + β · words + γ · flops`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineModel {
    /// Per-message startup latency, seconds.
    pub alpha: f64,
    /// Per-word transfer time, seconds.
    pub beta: f64,
    /// Per-flop time (one multiply or add), seconds.
    pub gamma: f64,
}

impl MachineModel {
    /// A mid-1990s MPP in the spirit of the paper's era (Parsytec
    /// CC-class): ~50 µs message latency, ~10 MB/s per-word transfer,
    /// ~50 Mflop/s per node.
    pub fn classic_mpp() -> Self {
        MachineModel {
            alpha: 50e-6,
            beta: 0.8e-6,
            gamma: 20e-9,
        }
    }

    /// A commodity Beowulf-style cluster: ~60 µs TCP latency, ~100 Mb/s.
    pub fn beowulf() -> Self {
        MachineModel {
            alpha: 60e-6,
            beta: 0.64e-6,
            gamma: 2e-9,
        }
    }

    /// A modern InfiniBand-class cluster: ~1.5 µs latency, ~100 Gb/s,
    /// ~10 Gflop/s effective per core for sparse kernels.
    pub fn modern_cluster() -> Self {
        MachineModel {
            alpha: 1.5e-6,
            beta: 0.64e-9,
            gamma: 0.1e-9,
        }
    }

    /// A latency-dominated network (e.g. heavily oversubscribed
    /// ethernet): message count matters far more than volume.
    pub fn latency_bound() -> Self {
        MachineModel {
            alpha: 500e-6,
            beta: 0.1e-6,
            gamma: 2e-9,
        }
    }
}

/// Predicted timing breakdown of one parallel SpMV.
#[derive(Debug, Clone, PartialEq)]
pub struct CostEstimate {
    /// Serial reference time (`γ · 2Z`).
    pub t_serial: f64,
    /// Expand-phase time: bottleneck processor's `α·msgs + β·words`.
    pub t_expand: f64,
    /// Compute time: bottleneck processor's `γ · 2·nnz_local`.
    pub t_compute: f64,
    /// Fold-phase time.
    pub t_fold: f64,
}

impl CostEstimate {
    /// Total predicted parallel time (phases execute in sequence, as in
    /// the paper's pre-communication / compute / post-communication
    /// schedule).
    pub fn t_parallel(&self) -> f64 {
        self.t_expand + self.t_compute + self.t_fold
    }

    /// Predicted speedup over the serial kernel.
    pub fn speedup(&self) -> f64 {
        self.t_serial / self.t_parallel().max(f64::MIN_POSITIVE)
    }

    /// Predicted parallel efficiency for `k` processors.
    pub fn efficiency(&self, k: u32) -> f64 {
        self.speedup() / k as f64
    }
}

/// Estimates the cost of one SpMV under `machine`, bottlenecked per phase
/// by the busiest processor (send + receive on the communication phases).
pub fn estimate(plan: &DistributedSpmv, machine: &MachineModel) -> CostEstimate {
    let k = plan.k() as usize;
    let total_nnz: usize = (0..plan.k()).map(|p| plan.local(p).nnz()).sum();

    // Per-processor, per-phase message and word tallies.
    let mut ex_msgs = vec![0u64; k];
    let mut ex_words = vec![0u64; k];
    for t in plan.expand_transfers() {
        ex_msgs[t.from as usize] += 1;
        ex_msgs[t.to as usize] += 1;
        ex_words[t.from as usize] += t.indices.len() as u64;
        ex_words[t.to as usize] += t.indices.len() as u64;
    }
    let mut fo_msgs = vec![0u64; k];
    let mut fo_words = vec![0u64; k];
    for t in plan.fold_transfers() {
        fo_msgs[t.from as usize] += 1;
        fo_msgs[t.to as usize] += 1;
        fo_words[t.from as usize] += t.indices.len() as u64;
        fo_words[t.to as usize] += t.indices.len() as u64;
    }

    let phase_time = |msgs: &[u64], words: &[u64]| {
        (0..k)
            .map(|p| machine.alpha * msgs[p] as f64 + machine.beta * words[p] as f64)
            .fold(0.0f64, f64::max)
    };

    let max_nnz = (0..plan.k())
        .map(|p| plan.local(p).nnz())
        .max()
        .unwrap_or(0);
    CostEstimate {
        t_serial: machine.gamma * 2.0 * total_nnz as f64,
        t_expand: phase_time(&ex_msgs, &ex_words),
        t_compute: machine.gamma * 2.0 * max_nnz as f64,
        t_fold: phase_time(&fo_msgs, &fo_words),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgh_core::{
        decompose_workload, DecomposeConfig, Decomposition, Model, Workload, WorkloadOutcome,
    };
    use fgh_sparse::gen::{self, ValueMode};
    use fgh_sparse::CsrMatrix;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn matrix() -> CsrMatrix {
        gen::grid5(
            24,
            24,
            1.0,
            ValueMode::Laplacian,
            &mut SmallRng::seed_from_u64(1),
        )
    }

    #[test]
    fn k1_speedup_is_one() {
        let a = matrix();
        let d = Decomposition::rowwise(&a, 1, vec![0; a.nrows() as usize]).unwrap();
        let plan = DistributedSpmv::build(&a, &d).unwrap();
        let e = estimate(&plan, &MachineModel::classic_mpp());
        assert_eq!(e.t_expand, 0.0);
        assert_eq!(e.t_fold, 0.0);
        assert!((e.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_bounded_by_k_with_balance() {
        // A compute-dominated machine: speedup approaches K but can never
        // exceed it (t_compute >= t_serial / K by the max-load bound).
        let a = matrix();
        let machine = MachineModel {
            alpha: 1e-12,
            beta: 1e-12,
            gamma: 1e-6,
        };
        for k in [2u32, 4, 8] {
            let out = decompose_workload(
                Workload::Spmv(&a),
                &DecomposeConfig::new(Model::FineGrain2D, k),
            )
            .and_then(WorkloadOutcome::into_spmv)
            .unwrap();
            let plan = DistributedSpmv::build(&a, &out.decomposition).unwrap();
            let e = estimate(&plan, &machine);
            assert!(
                e.speedup() <= k as f64 + 1e-9,
                "k={k}: speedup {}",
                e.speedup()
            );
            assert!(e.speedup() > 1.0, "k={k}: no speedup at all");
        }
    }

    #[test]
    fn latency_bound_machine_prefers_fewer_messages() {
        // On an extremely latency-bound machine, phase times are dominated
        // by α · messages, so the estimate must track message counts.
        let a = matrix();
        let out = decompose_workload(
            Workload::Spmv(&a),
            &DecomposeConfig::new(Model::FineGrain2D, 8),
        )
        .and_then(WorkloadOutcome::into_spmv)
        .unwrap();
        let plan = DistributedSpmv::build(&a, &out.decomposition).unwrap();
        let lat = estimate(&plan, &MachineModel::latency_bound());
        let comm = plan.planned_comm();
        let alpha = MachineModel::latency_bound().alpha;
        // Communication time is at least alpha times the max per-proc
        // message involvement, and alpha dwarfs beta here.
        assert!(lat.t_expand + lat.t_fold >= alpha);
        let _ = comm;
    }

    #[test]
    fn hand_computed_estimate() {
        // 2x2 with one off-diagonal nonzero split across 2 processors:
        // row-wise, rows {0} -> P0, {1} -> P1; a_10 forces x_0 expand
        // P0 -> P1 (1 message, 1 word); no fold.
        use fgh_sparse::CooMatrix;
        let a = CsrMatrix::from_coo(
            CooMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (1, 0, 1.0), (1, 1, 1.0)]).unwrap(),
        );
        let d = Decomposition::rowwise(&a, 2, vec![0, 1]).unwrap();
        let plan = DistributedSpmv::build(&a, &d).unwrap();
        let m = MachineModel {
            alpha: 10.0,
            beta: 1.0,
            gamma: 0.5,
        };
        let e = estimate(&plan, &m);
        // Serial: gamma * 2 * 3 nonzeros = 3.0.
        assert!((e.t_serial - 3.0).abs() < 1e-12);
        // Expand: both P0 (send) and P1 (recv) handle 1 msg + 1 word = 11.
        assert!((e.t_expand - 11.0).abs() < 1e-12);
        assert_eq!(e.t_fold, 0.0);
        // Compute bottleneck: P1 holds 2 nonzeros -> 0.5 * 2 * 2 = 2.0.
        assert!((e.t_compute - 2.0).abs() < 1e-12);
        assert!((e.t_parallel() - 13.0).abs() < 1e-12);
    }

    #[test]
    fn presets_are_sane() {
        for m in [
            MachineModel::classic_mpp(),
            MachineModel::beowulf(),
            MachineModel::modern_cluster(),
            MachineModel::latency_bound(),
        ] {
            assert!(m.alpha > m.beta, "latency exceeds per-word cost");
            assert!(m.beta > 0.0 && m.gamma > 0.0);
        }
    }
}
