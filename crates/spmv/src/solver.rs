//! Iterative solvers over the distributed SpMV — the application that
//! motivates the paper (repeated `y = Ax` in iterative methods).
//!
//! Because the decomposition is *symmetric* (each processor owns the same
//! entries of every vector), the vector operations of these solvers (dot
//! products, AXPYs) involve owned data only — no extra communication
//! beyond the per-iteration expand/fold of the SpMV itself, plus the
//! usual scalar all-reduce. That conformality is exactly why the paper's
//! consistency condition matters.

use crate::plan::{DistributedSpmv, MeasuredComm};
use crate::{Result, SpmvError};

/// Outcome of an iterative solve.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The solution (CG) or dominant eigenvector (power iteration).
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual norm (CG) or eigenvalue estimate (power iteration).
    pub scalar: f64,
    /// Total words communicated across all SpMVs.
    pub comm: MeasuredComm,
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

fn accumulate(total: &mut MeasuredComm, m: &MeasuredComm) {
    total.expand_words += m.expand_words;
    total.fold_words += m.fold_words;
    total.expand_messages += m.expand_messages;
    total.fold_messages += m.fold_messages;
    if total.sent_words_per_proc.len() < m.sent_words_per_proc.len() {
        total
            .sent_words_per_proc
            .resize(m.sent_words_per_proc.len(), 0);
    }
    for (t, s) in total
        .sent_words_per_proc
        .iter_mut()
        .zip(&m.sent_words_per_proc)
    {
        *t += s;
    }
}

/// Conjugate gradients for SPD systems `Ax = b` on the distributed matrix.
///
/// Converges when `||r|| <= tol * ||b||`; errors with
/// [`SpmvError::NoConvergence`] after `max_iter` iterations otherwise.
pub fn conjugate_gradient(
    plan: &DistributedSpmv,
    b: &[f64],
    tol: f64,
    max_iter: usize,
) -> Result<SolveOutcome> {
    let n = plan.n() as usize;
    if b.len() != n {
        return Err(SpmvError::DimensionMismatch {
            expected: n,
            got: b.len(),
        });
    }
    let mut comm = MeasuredComm::default();
    let b_norm = dot(b, b).sqrt().max(f64::MIN_POSITIVE);

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rs_old = dot(&r, &r);

    for it in 0..max_iter {
        if rs_old.sqrt() <= tol * b_norm {
            return Ok(SolveOutcome {
                x,
                iterations: it,
                scalar: rs_old.sqrt(),
                comm,
            });
        }
        let (ap, m) = plan.multiply(&p)?;
        accumulate(&mut comm, &m);
        let alpha = rs_old / dot(&p, &ap).max(f64::MIN_POSITIVE);
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let rs_new = dot(&r, &r);
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }
    if rs_old.sqrt() <= tol * b_norm {
        return Ok(SolveOutcome {
            x,
            iterations: max_iter,
            scalar: rs_old.sqrt(),
            comm,
        });
    }
    Err(SpmvError::NoConvergence {
        iterations: max_iter,
        residual: rs_old.sqrt(),
    })
}

/// CGNR — conjugate gradients on the normal equations `AᵀA x = Aᵀb` —
/// solves *nonsymmetric* (even non-SPD) systems using one `Ax` and one
/// `Aᵀx` per iteration. Exercises [`DistributedSpmv::multiply_transpose`];
/// under symmetric partitioning both multiplies cost identical
/// communication, so one CGNR iteration moves exactly twice the
/// decomposition's volume.
pub fn cgnr(plan: &DistributedSpmv, b: &[f64], tol: f64, max_iter: usize) -> Result<SolveOutcome> {
    let n = plan.n() as usize;
    if b.len() != n {
        return Err(SpmvError::DimensionMismatch {
            expected: n,
            got: b.len(),
        });
    }
    let mut comm = MeasuredComm::default();
    let b_norm = dot(b, b).sqrt().max(f64::MIN_POSITIVE);

    let mut x = vec![0.0; n];
    let mut r = b.to_vec(); // residual of Ax = b
    let (mut z, m) = plan.multiply_transpose(&r)?; // z = Aᵀ r
    accumulate(&mut comm, &m);
    let mut p = z.clone();
    let mut zz = dot(&z, &z);

    for it in 0..max_iter {
        if dot(&r, &r).sqrt() <= tol * b_norm {
            return Ok(SolveOutcome {
                x,
                iterations: it,
                scalar: dot(&r, &r).sqrt(),
                comm,
            });
        }
        let (ap, m) = plan.multiply(&p)?;
        accumulate(&mut comm, &m);
        let alpha = zz / dot(&ap, &ap).max(f64::MIN_POSITIVE);
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let (z_new, m) = plan.multiply_transpose(&r)?;
        accumulate(&mut comm, &m);
        z = z_new;
        let zz_new = dot(&z, &z);
        let beta = zz_new / zz.max(f64::MIN_POSITIVE);
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
        zz = zz_new;
    }
    let res = dot(&r, &r).sqrt();
    if res <= tol * b_norm {
        return Ok(SolveOutcome {
            x,
            iterations: max_iter,
            scalar: res,
            comm,
        });
    }
    Err(SpmvError::NoConvergence {
        iterations: max_iter,
        residual: res,
    })
}

/// Power iteration: estimates the dominant eigenvalue/eigenvector of `A`.
pub fn power_iteration(plan: &DistributedSpmv, iterations: usize) -> Result<SolveOutcome> {
    let n = plan.n() as usize;
    let mut comm = MeasuredComm::default();
    let mut x = vec![1.0 / (n as f64).sqrt(); n];
    let mut lambda = 0.0;
    for _ in 0..iterations {
        let (y, m) = plan.multiply(&x)?;
        accumulate(&mut comm, &m);
        lambda = dot(&x, &y);
        let norm = dot(&y, &y).sqrt().max(f64::MIN_POSITIVE);
        x = y.into_iter().map(|v| v / norm).collect();
    }
    Ok(SolveOutcome {
        x,
        iterations,
        scalar: lambda,
        comm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgh_core::{decompose_workload, DecomposeConfig, Model, Workload, WorkloadOutcome};
    use fgh_sparse::gen::{self, ValueMode};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn spd_plan(k: u32) -> (fgh_sparse::CsrMatrix, DistributedSpmv) {
        // Laplacian + identity: SPD.
        let a = gen::grid5(
            12,
            12,
            1.0,
            ValueMode::Laplacian,
            &mut SmallRng::seed_from_u64(2),
        );
        let out = decompose_workload(
            Workload::Spmv(&a),
            &DecomposeConfig::new(Model::FineGrain2D, k),
        )
        .and_then(WorkloadOutcome::into_spmv)
        .unwrap();
        let plan = DistributedSpmv::build(&a, &out.decomposition).unwrap();
        (a, plan)
    }

    #[test]
    fn cg_solves_spd_system() {
        let (a, plan) = spd_plan(4);
        let n = a.nrows() as usize;
        let x_true: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
        let b = a.spmv(&x_true).unwrap();
        let sol = conjugate_gradient(&plan, &b, 1e-10, 10 * n).unwrap();
        for (xs, xt) in sol.x.iter().zip(&x_true) {
            assert!((xs - xt).abs() < 1e-6, "{xs} vs {xt}");
        }
        assert!(sol.iterations > 0);
        assert!(sol.comm.total_words() > 0, "K=4 CG must communicate");
    }

    #[test]
    fn cg_comm_is_iterations_times_per_spmv() {
        let (_, plan) = spd_plan(4);
        let per = plan.planned_comm().total_words();
        let n = plan.n() as usize;
        let b = vec![1.0; n];
        let sol = conjugate_gradient(&plan, &b, 1e-8, 5 * n).unwrap();
        assert_eq!(sol.comm.total_words(), per * sol.iterations as u64);
    }

    #[test]
    fn cg_reports_nonconvergence() {
        let (_, plan) = spd_plan(2);
        // A rough right-hand side that one CG step cannot resolve.
        let b: Vec<f64> = (0..plan.n()).map(|i| ((i % 5) as f64) - 2.0).collect();
        let r = conjugate_gradient(&plan, &b, 1e-14, 1);
        assert!(matches!(r, Err(SpmvError::NoConvergence { .. })));
    }

    #[test]
    fn power_iteration_finds_dominant_eigenvalue() {
        // A hub-dominated matrix has a well-separated top eigenvalue, so
        // power iteration converges quickly.
        let a = gen::scale_free(
            100,
            3.0,
            ValueMode::Laplacian,
            &mut SmallRng::seed_from_u64(5),
        );
        let out = decompose_workload(
            Workload::Spmv(&a),
            &DecomposeConfig::new(Model::FineGrain2D, 2),
        )
        .and_then(WorkloadOutcome::into_spmv)
        .unwrap();
        let plan = DistributedSpmv::build(&a, &out.decomposition).unwrap();
        let sol = power_iteration(&plan, 500).unwrap();
        // Verify A x ≈ λ x (relative to λ).
        let ax = a.spmv(&sol.x).unwrap();
        let mut err: f64 = 0.0;
        for (axi, xi) in ax.iter().zip(&sol.x) {
            err = err.max((axi - sol.scalar * xi).abs());
        }
        assert!(
            err / sol.scalar < 1e-2,
            "eigen residual {err}, lambda {}",
            sol.scalar
        );
        assert!(sol.scalar > 1.0);
    }

    #[test]
    fn dimension_mismatch() {
        let (_, plan) = spd_plan(2);
        assert!(conjugate_gradient(&plan, &[1.0], 1e-8, 10).is_err());
        assert!(cgnr(&plan, &[1.0], 1e-8, 10).is_err());
    }

    #[test]
    fn cgnr_solves_nonsymmetric_system() {
        // Diagonally dominant but nonsymmetric: CG would be invalid, CGNR
        // converges.
        use fgh_sparse::CooMatrix;
        use fgh_sparse::CsrMatrix;
        let n = 60u32;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 6.0));
            if i + 1 < n {
                t.push((i, i + 1, -2.0)); // upper band only: nonsymmetric
            }
            if i >= 3 {
                t.push((i, i - 3, 1.0));
            }
        }
        let a = CsrMatrix::from_coo(CooMatrix::from_triplets(n, n, t).unwrap());
        assert!(!a.pattern_symmetric());
        let out = decompose_workload(
            Workload::Spmv(&a),
            &DecomposeConfig::new(Model::FineGrain2D, 4),
        )
        .and_then(WorkloadOutcome::into_spmv)
        .unwrap();
        let plan = DistributedSpmv::build(&a, &out.decomposition).unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let b = a.spmv(&x_true).unwrap();
        let sol = cgnr(&plan, &b, 1e-12, 2000).unwrap();
        for (xs, xt) in sol.x.iter().zip(&x_true) {
            assert!((xs - xt).abs() < 1e-6, "{xs} vs {xt}");
        }
        assert!(sol.comm.expand_words > 0 && sol.comm.fold_words > 0);
    }
}
