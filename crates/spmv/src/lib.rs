//! # fgh-spmv — distributed sparse matrix-vector multiplication
//!
//! Executes parallel `y = Ax` under any [`fgh_core::Decomposition`],
//! following the paper's two-phase schedule:
//!
//! 1. **expand** (pre-communication): owners of `x_j` send it to every
//!    processor holding a nonzero of column `j`,
//! 2. **local multiply**: each processor computes `y_i^j = a_ij x_j` for
//!    its nonzeros and accumulates local partials,
//! 3. **fold** (post-communication): partial `y_i` values are sent to the
//!    owner of `y_i` and summed.
//!
//! Two executors share one [`plan::DistributedSpmv`] communication plan:
//!
//! * [`plan::DistributedSpmv::multiply`] — deterministic single-threaded
//!   simulator that also **counts every word and message actually
//!   transferred** ([`plan::MeasuredComm`]), closing the loop on the
//!   paper's claim that the fine-grain cutsize equals true communication
//!   volume,
//! * [`parallel::parallel_spmv`] — a real multi-threaded executor (one
//!   thread per processor, crossbeam channels as the interconnect).
//!
//! [`solver`] builds iterative methods (CG, power iteration) on top, with
//! conformal vector ownership so vector operations need no communication —
//! the reason the paper insists on symmetric x/y partitioning.

// Robustness contract: library (non-test) code must not panic; provably
// infallible sites carry a narrowly scoped `allow` with a justification.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cost;
pub mod parallel;
pub mod plan;
pub mod schedule;
pub mod solver;

pub use cost::{estimate, CostEstimate, MachineModel};
pub use plan::{DistributedSpmv, MeasuredComm};
pub use schedule::{schedule_phase, PhaseSchedule, SpmvSchedule};

/// Errors from plan construction and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SpmvError {
    /// The decomposition failed validation against the matrix.
    BadDecomposition(String),
    /// Input vector length mismatch.
    DimensionMismatch { expected: usize, got: usize },
    /// An iterative solver failed to converge.
    NoConvergence { iterations: usize, residual: f64 },
    /// A parallel-executor worker thread failed (panicked or lost its
    /// channel peer mid-multiply).
    Worker(String),
}

impl std::fmt::Display for SpmvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpmvError::BadDecomposition(m) => write!(f, "bad decomposition: {m}"),
            SpmvError::DimensionMismatch { expected, got } => {
                write!(f, "vector has length {got}, expected {expected}")
            }
            SpmvError::NoConvergence {
                iterations,
                residual,
            } => {
                write!(
                    f,
                    "no convergence after {iterations} iterations (residual {residual:e})"
                )
            }
            SpmvError::Worker(m) => write!(f, "spmv worker failed: {m}"),
        }
    }
}

impl std::error::Error for SpmvError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SpmvError>;
