//! Communication-round scheduling: organizes each phase's messages into
//! contention-free rounds.
//!
//! Under the single-port (telephone) model a processor sends at most one
//! message and receives at most one message per round, so a phase's
//! messages form a bipartite multigraph whose edge chromatic number
//! bounds the rounds: by König's theorem it equals the maximum
//! send-or-receive degree `Δ`. The greedy round builder here achieves
//! `Δ` on bipartite inputs (processors appear as distinct sender/receiver
//! endpoints), giving per-phase round counts — the latency-bound
//! completion-time companion to the volume metrics of Table 2. For 1D
//! models the expand phase bounds at `K − 1` rounds; the fine-grain
//! model's two phases bound at `2(K − 1)` but are typically far shorter.

use crate::plan::{DistributedSpmv, Transfer};

/// A communication phase organized into single-port rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSchedule {
    /// For each round, the transfers executed concurrently, as indices
    /// into the phase's transfer list.
    pub rounds: Vec<Vec<usize>>,
    /// Maximum send-or-receive degree (the König lower bound).
    pub max_degree: usize,
}

impl PhaseSchedule {
    /// Number of rounds.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// `true` when the schedule meets the König lower bound.
    pub fn is_optimal(&self) -> bool {
        self.num_rounds() == self.max_degree
    }
}

/// Builds a single-port round schedule for a list of transfers.
///
/// Greedy bipartite edge coloring: process transfers in decreasing word
/// count (longest messages first) and place each in the first round where
/// both endpoints are free. Because senders and receivers are distinct
/// endpoint sets per phase, this uses at most `2Δ − 1` rounds and in
/// practice lands on or near `Δ`.
pub fn schedule_phase(transfers: &[Transfer], k: u32) -> PhaseSchedule {
    let k = k as usize;
    let mut send_deg = vec![0usize; k];
    let mut recv_deg = vec![0usize; k];
    for t in transfers {
        send_deg[t.from as usize] += 1;
        recv_deg[t.to as usize] += 1;
    }
    let max_degree = send_deg
        .iter()
        .chain(recv_deg.iter())
        .copied()
        .max()
        .unwrap_or(0);

    let mut order: Vec<usize> = (0..transfers.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(transfers[i].indices.len()));

    // busy[round] bitmaps per endpoint, grown on demand.
    let mut send_busy: Vec<Vec<bool>> = Vec::new();
    let mut recv_busy: Vec<Vec<bool>> = Vec::new();
    let mut rounds: Vec<Vec<usize>> = Vec::new();
    for &ti in &order {
        let t = &transfers[ti];
        let (s, r) = (t.from as usize, t.to as usize);
        let mut placed = false;
        for round in 0..rounds.len() {
            if !send_busy[round][s] && !recv_busy[round][r] {
                send_busy[round][s] = true;
                recv_busy[round][r] = true;
                rounds[round].push(ti);
                placed = true;
                break;
            }
        }
        if !placed {
            let mut sb = vec![false; k];
            let mut rb = vec![false; k];
            sb[s] = true;
            rb[r] = true;
            send_busy.push(sb);
            recv_busy.push(rb);
            rounds.push(vec![ti]);
        }
    }
    PhaseSchedule { rounds, max_degree }
}

/// Round schedules for both phases of one SpMV.
#[derive(Debug, Clone)]
pub struct SpmvSchedule {
    /// Expand-phase schedule.
    pub expand: PhaseSchedule,
    /// Fold-phase schedule.
    pub fold: PhaseSchedule,
}

impl SpmvSchedule {
    /// Builds the schedule for a plan.
    pub fn build(plan: &DistributedSpmv) -> Self {
        SpmvSchedule {
            expand: schedule_phase(plan.expand_transfers(), plan.k()),
            fold: schedule_phase(plan.fold_transfers(), plan.k()),
        }
    }

    /// Total rounds across phases (phases are serialized by the data
    /// dependency: folds need the multiply, which needs the expands).
    pub fn total_rounds(&self) -> usize {
        self.expand.num_rounds() + self.fold.num_rounds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgh_core::{decompose_workload, DecomposeConfig, Model, Workload, WorkloadOutcome};
    use fgh_sparse::gen::{self, ValueMode};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn transfer(from: u32, to: u32, words: usize) -> Transfer {
        Transfer {
            from,
            to,
            indices: (0..words as u32).collect(),
        }
    }

    /// Validates single-port constraints and completeness.
    fn check(sch: &PhaseSchedule, transfers: &[Transfer], k: u32) {
        let mut seen = vec![false; transfers.len()];
        for round in &sch.rounds {
            let mut s = vec![false; k as usize];
            let mut r = vec![false; k as usize];
            for &ti in round {
                let t = &transfers[ti];
                assert!(
                    !s[t.from as usize],
                    "sender {} busy twice in a round",
                    t.from
                );
                assert!(!r[t.to as usize], "receiver {} busy twice in a round", t.to);
                s[t.from as usize] = true;
                r[t.to as usize] = true;
                assert!(!seen[ti], "transfer scheduled twice");
                seen[ti] = true;
            }
        }
        assert!(seen.iter().all(|&x| x), "every transfer scheduled once");
        assert!(sch.num_rounds() >= sch.max_degree, "König lower bound");
    }

    #[test]
    fn empty_phase() {
        let sch = schedule_phase(&[], 4);
        assert_eq!(sch.num_rounds(), 0);
        assert_eq!(sch.max_degree, 0);
    }

    #[test]
    fn all_to_one_is_fan_in() {
        // K-1 senders to one receiver: exactly K-1 rounds.
        let transfers: Vec<Transfer> = (1..8).map(|p| transfer(p, 0, 1)).collect();
        let sch = schedule_phase(&transfers, 8);
        check(&sch, &transfers, 8);
        assert_eq!(sch.num_rounds(), 7);
        assert!(sch.is_optimal());
    }

    #[test]
    fn disjoint_pairs_one_round() {
        let transfers = vec![transfer(0, 1, 3), transfer(2, 3, 1), transfer(4, 5, 2)];
        let sch = schedule_phase(&transfers, 6);
        check(&sch, &transfers, 6);
        assert_eq!(sch.num_rounds(), 1);
    }

    #[test]
    fn ring_shift_one_round() {
        // p -> p+1 mod K: every endpoint degree 1, one round.
        let k = 6u32;
        let transfers: Vec<Transfer> = (0..k).map(|p| transfer(p, (p + 1) % k, 1)).collect();
        let sch = schedule_phase(&transfers, k);
        check(&sch, &transfers, k);
        assert_eq!(sch.num_rounds(), 1);
    }

    #[test]
    fn real_plan_schedules_validly_and_within_bounds() {
        let a = gen::scale_free(
            200,
            3.0,
            ValueMode::Laplacian,
            &mut SmallRng::seed_from_u64(2),
        );
        let k = 8;
        for model in [Model::Hypergraph1DColNet, Model::FineGrain2D] {
            let out = decompose_workload(Workload::Spmv(&a), &DecomposeConfig::new(model, k))
                .and_then(WorkloadOutcome::into_spmv)
                .unwrap();
            let plan = crate::DistributedSpmv::build(&a, &out.decomposition).unwrap();
            let sch = SpmvSchedule::build(&plan);
            check(&sch.expand, plan.expand_transfers(), k);
            check(&sch.fold, plan.fold_transfers(), k);
            // Per-phase degree is bounded by K−1 (single counterpart set),
            // and greedy coloring uses at most 2Δ−1 rounds per phase.
            for phase in [&sch.expand, &sch.fold] {
                assert!(phase.max_degree < k as usize, "{}", model.name());
                assert!(
                    phase.num_rounds() <= (2 * phase.max_degree).max(1),
                    "{}: {} rounds vs degree {}",
                    model.name(),
                    phase.num_rounds(),
                    phase.max_degree
                );
            }
        }
    }

    #[test]
    fn greedy_is_usually_tight() {
        // Random-ish transfer sets: greedy should land on Δ (or within 1).
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10 {
            let k = 10u32;
            let mut transfers = Vec::new();
            for s in 0..k {
                for r in 0..k {
                    if s != r && rand::Rng::gen_bool(&mut rng, 0.3) {
                        transfers.push(transfer(s, r, rand::Rng::gen_range(&mut rng, 1..5)));
                    }
                }
            }
            let sch = schedule_phase(&transfers, k);
            check(&sch, &transfers, k);
            assert!(
                sch.num_rounds() <= sch.max_degree + 1,
                "rounds {} vs degree {}",
                sch.num_rounds(),
                sch.max_degree
            );
        }
    }
}
