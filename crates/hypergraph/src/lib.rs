//! # fgh-hypergraph — hypergraph data structures and partition metrics
//!
//! A hypergraph `H = (V, N)` is a vertex set plus a set of *nets*
//! (hyperedges), each net being an arbitrary subset of vertices (its
//! *pins*). This crate provides:
//!
//! * [`Hypergraph`] — compact dual-CSR storage (pins of each net *and* nets
//!   of each vertex), with integer vertex weights and net costs,
//! * [`HypergraphBuilder`] — incremental construction,
//! * [`Partition`] — a K-way vertex partition with balance queries,
//! * cutsize metrics: the **cut-net** metric (eq. 2 of the paper) and the
//!   **connectivity − 1** metric (eq. 3), plus per-net connectivity sets,
//! * [`Hypergraph::extract_part`] — sub-hypergraph extraction with *net
//!   splitting*, the operation recursive bisection relies on so that
//!   minimizing cut nets per bisection composes to minimizing `Σ (λ−1)`
//!   over the final K-way partition.
//!
//! The terminology follows Section 2 of the paper: a net with pins in more
//! than one part is *cut* (external); `λ_j` is the number of parts net `j`
//! connects.

// Robustness contract: this crate sits on user-reachable paths, so the
// library (non-test) code must not panic. Sites that are provably
// infallible carry a narrowly scoped `allow` with a justification.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod builder;
pub mod hypergraph;
pub mod io;
pub mod metrics;
pub mod partition;
pub mod stats;

pub use builder::HypergraphBuilder;
pub use hypergraph::Hypergraph;
pub use metrics::{connectivities, connectivity_sets, cutsize_connectivity, cutsize_cutnet};
pub use partition::Partition;
pub use stats::HypergraphStats;

/// Errors from hypergraph construction and partition validation.
///
/// Vertex/net/pin ids are reported as `u64` so the same error type serves
/// every [`fgh_sparse::IndexType`] width the hypergraph is instantiated at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HypergraphError {
    /// A pin refers to a vertex id >= the vertex count.
    PinOutOfBounds {
        net: u64,
        pin: u64,
        num_vertices: u64,
    },
    /// A net contains the same pin twice.
    DuplicatePin { net: u64, pin: u64 },
    /// Vertex weight vector length does not match the vertex count.
    WeightLengthMismatch { expected: usize, got: usize },
    /// Net cost vector length does not match the net count.
    CostLengthMismatch { expected: usize, got: usize },
    /// Partition vector length does not match the vertex count.
    PartitionLengthMismatch { expected: usize, got: usize },
    /// A vertex is assigned to a part id >= K.
    PartOutOfBounds { vertex: u64, part: u32, k: u32 },
    /// K must be at least 1.
    InvalidK,
    /// A part of the partition received no vertices.
    EmptyPart { part: u32 },
    /// An I/O or parse failure (`.hgr` reading/writing).
    Io(String),
}

impl std::fmt::Display for HypergraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HypergraphError::PinOutOfBounds {
                net,
                pin,
                num_vertices,
            } => write!(
                f,
                "net {net} has pin {pin} out of bounds (|V| = {num_vertices})"
            ),
            HypergraphError::DuplicatePin { net, pin } => {
                write!(f, "net {net} contains pin {pin} more than once")
            }
            HypergraphError::WeightLengthMismatch { expected, got } => {
                write!(
                    f,
                    "vertex weight vector has {got} entries, hypergraph has {expected} vertices"
                )
            }
            HypergraphError::CostLengthMismatch { expected, got } => {
                write!(
                    f,
                    "net cost vector has {got} entries, hypergraph has {expected} nets"
                )
            }
            HypergraphError::PartitionLengthMismatch { expected, got } => {
                write!(
                    f,
                    "partition has {got} entries, hypergraph has {expected} vertices"
                )
            }
            HypergraphError::PartOutOfBounds { vertex, part, k } => {
                write!(f, "vertex {vertex} assigned to part {part} >= K = {k}")
            }
            HypergraphError::InvalidK => write!(f, "K must be >= 1"),
            HypergraphError::EmptyPart { part } => write!(f, "part {part} is empty"),
            HypergraphError::Io(msg) => write!(f, "hypergraph i/o: {msg}"),
        }
    }
}

impl std::error::Error for HypergraphError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, HypergraphError>;
