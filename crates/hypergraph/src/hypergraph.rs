//! The core [`Hypergraph`] type: dual-CSR pin/net storage, generic over
//! the index width.

use fgh_invariant::{invariant, InvariantViolation};
use fgh_sparse::IndexType;

use crate::{HypergraphError, Partition, Result};

/// An undirected hypergraph with weighted vertices and costed nets.
///
/// Storage is dual-CSR: `pins[pin_ptr[n] .. pin_ptr[n+1]]` lists the pins of
/// net `n`, and `vnets[vnet_ptr[v] .. vnet_ptr[v+1]]` lists the nets
/// containing vertex `v`. Vertex weights are `u32` (`0` is allowed — the
/// fine-grain model's dummy diagonal vertices carry zero weight); net costs
/// are `u32` (the paper uses unit costs).
///
/// The vertex/net id type `I` is [`u32`] by default (the fast path: half the
/// pin-array footprint and better cache behavior) and [`u64`] for
/// hypergraphs whose vertex, net, or pin counts overflow `u32` — the
/// fine-grain model reaches `2·nnz` pins, which crosses `u32::MAX` around
/// 2.1 billion nonzeros. `I::MAX` is reserved as a sentinel throughout, so
/// usable ids are `0 .. I::MAX` exclusive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph<I: IndexType = u32> {
    pub(crate) num_vertices: I,
    pub(crate) pin_ptr: Vec<usize>,
    pub(crate) pins: Vec<I>,
    pub(crate) vnet_ptr: Vec<usize>,
    pub(crate) vnets: Vec<I>,
    pub(crate) vertex_weights: Vec<u32>,
    pub(crate) net_costs: Vec<u32>,
}

impl<I: IndexType> Hypergraph<I> {
    /// Builds a hypergraph from per-net pin lists, unit weights and costs.
    ///
    /// ```
    /// use fgh_hypergraph::Hypergraph;
    /// let hg = Hypergraph::<u32>::from_nets(4, &[vec![0, 1, 2], vec![2, 3]]).unwrap();
    /// assert_eq!(hg.num_nets(), 2);
    /// assert_eq!(hg.pins(0), &[0, 1, 2]);
    /// assert_eq!(hg.nets(2), &[0, 1]); // vertex 2 pins both nets
    /// ```
    pub fn from_nets(num_vertices: I, nets: &[Vec<I>]) -> Result<Self> {
        let weights = vec![1u32; num_vertices.index()];
        let costs = vec![1u32; nets.len()];
        Self::from_nets_weighted(num_vertices, nets, weights, costs)
    }

    /// Builds a hypergraph from per-net pin lists with explicit vertex
    /// weights and net costs. Pins are validated (in bounds, no duplicates
    /// within a net) and stored sorted.
    pub fn from_nets_weighted(
        num_vertices: I,
        nets: &[Vec<I>],
        vertex_weights: Vec<u32>,
        net_costs: Vec<u32>,
    ) -> Result<Self> {
        if vertex_weights.len() != num_vertices.index() {
            return Err(HypergraphError::WeightLengthMismatch {
                expected: num_vertices.index(),
                got: vertex_weights.len(),
            });
        }
        if net_costs.len() != nets.len() {
            return Err(HypergraphError::CostLengthMismatch {
                expected: nets.len(),
                got: net_costs.len(),
            });
        }
        let total_pins: usize = nets.iter().map(|n| n.len()).sum();
        let mut pin_ptr = Vec::with_capacity(nets.len() + 1);
        let mut pins = Vec::with_capacity(total_pins);
        pin_ptr.push(0);
        for (ni, net) in nets.iter().enumerate() {
            let start = pins.len();
            pins.extend_from_slice(net);
            let slice = &mut pins[start..];
            slice.sort_unstable();
            for w in slice.windows(2) {
                if w[0] == w[1] {
                    return Err(HypergraphError::DuplicatePin {
                        net: ni as u64,
                        pin: w[0].as_u64(),
                    });
                }
            }
            if let Some(&last) = slice.last() {
                if last >= num_vertices {
                    return Err(HypergraphError::PinOutOfBounds {
                        net: ni as u64,
                        pin: last.as_u64(),
                        num_vertices: num_vertices.as_u64(),
                    });
                }
            }
            pin_ptr.push(pins.len());
        }

        // Invert to vertex -> nets.
        let (vnet_ptr, vnets) = invert_pins(num_vertices.index(), &pin_ptr, &pins);

        Ok(Hypergraph {
            num_vertices,
            pin_ptr,
            pins,
            vnet_ptr,
            vnets,
            vertex_weights,
            net_costs,
        })
    }

    /// Builds a hypergraph from an already-flat pin CSR: net `n` owns
    /// `pins[pin_ptr[n] .. pin_ptr[n + 1]]`. Pins must be sorted and
    /// duplicate-free within each net; this is the allocation-lean
    /// constructor contraction uses (no per-net `Vec`). Weight/cost vector
    /// lengths and pin bounds are validated.
    pub fn from_flat_nets(
        num_vertices: I,
        pin_ptr: Vec<usize>,
        pins: Vec<I>,
        vertex_weights: Vec<u32>,
        net_costs: Vec<u32>,
    ) -> Result<Self> {
        assert!(!pin_ptr.is_empty(), "pin_ptr needs a leading 0 entry");
        let num_nets = pin_ptr.len() - 1;
        if vertex_weights.len() != num_vertices.index() {
            return Err(HypergraphError::WeightLengthMismatch {
                expected: num_vertices.index(),
                got: vertex_weights.len(),
            });
        }
        if net_costs.len() != num_nets {
            return Err(HypergraphError::CostLengthMismatch {
                expected: num_nets,
                got: net_costs.len(),
            });
        }
        for n in 0..num_nets {
            let net = &pins[pin_ptr[n]..pin_ptr[n + 1]];
            for w in net.windows(2) {
                debug_assert!(w[0] < w[1], "net {n} pins must be sorted and unique");
            }
            if let Some(&last) = net.last() {
                if last >= num_vertices {
                    return Err(HypergraphError::PinOutOfBounds {
                        net: n as u64,
                        pin: last.as_u64(),
                        num_vertices: num_vertices.as_u64(),
                    });
                }
            }
        }

        // Invert to vertex -> nets.
        let (vnet_ptr, vnets) = invert_pins(num_vertices.index(), &pin_ptr, &pins);

        Ok(Hypergraph {
            num_vertices,
            pin_ptr,
            pins,
            vnet_ptr,
            vnets,
            vertex_weights,
            net_costs,
        })
    }

    /// Number of vertices `|V|`.
    pub fn num_vertices(&self) -> I {
        self.num_vertices
    }

    /// Number of nets `|N|`.
    pub fn num_nets(&self) -> I {
        I::from_index(self.pin_ptr.len() - 1)
    }

    /// Total number of pins `Σ |pins[n]|`.
    pub fn num_pins(&self) -> usize {
        self.pins.len()
    }

    /// The pins (vertices) of net `n`, sorted ascending.
    pub fn pins(&self, n: I) -> &[I] {
        &self.pins[self.pin_ptr[n.index()]..self.pin_ptr[n.index() + 1]]
    }

    /// The nets containing vertex `v`, sorted ascending.
    pub fn nets(&self, v: I) -> &[I] {
        &self.vnets[self.vnet_ptr[v.index()]..self.vnet_ptr[v.index() + 1]]
    }

    /// Size (pin count) of net `n`.
    pub fn net_size(&self, n: I) -> usize {
        self.pin_ptr[n.index() + 1] - self.pin_ptr[n.index()]
    }

    /// Degree (net count) of vertex `v`.
    pub fn vertex_degree(&self, v: I) -> usize {
        self.vnet_ptr[v.index() + 1] - self.vnet_ptr[v.index()]
    }

    /// Weight `w_v` of vertex `v`.
    pub fn vertex_weight(&self, v: I) -> u32 {
        self.vertex_weights[v.index()]
    }

    /// All vertex weights.
    pub fn vertex_weights(&self) -> &[u32] {
        &self.vertex_weights
    }

    /// Cost `c_n` of net `n`.
    pub fn net_cost(&self, n: I) -> u32 {
        self.net_costs[n.index()]
    }

    /// All net costs.
    pub fn net_costs(&self) -> &[u32] {
        &self.net_costs
    }

    /// Sum of all vertex weights.
    pub fn total_vertex_weight(&self) -> u64 {
        self.vertex_weights.iter().map(|&w| w as u64).sum()
    }

    /// Heap footprint of the dual-CSR storage in bytes (capacities, not
    /// lengths — what the allocator actually holds). This is the accounting
    /// primitive behind `Budget::max_bytes` in the partitioning engine.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.pin_ptr.capacity() * size_of::<usize>()
            + self.pins.capacity() * size_of::<I>()
            + self.vnet_ptr.capacity() * size_of::<usize>()
            + self.vnets.capacity() * size_of::<I>()
            + self.vertex_weights.capacity() * size_of::<u32>()
            + self.net_costs.capacity() * size_of::<u32>()
    }

    /// Extracts the sub-hypergraph induced by the vertices of `part` under
    /// `partition`, applying **net splitting**: each net keeps only its pins
    /// inside the part, and nets left with fewer than 2 pins are dropped
    /// (they can never be cut again). Net costs are preserved.
    ///
    /// Returns the sub-hypergraph plus the mapping from new vertex ids to
    /// original ids.
    pub fn extract_part(&self, partition: &Partition, part: u32) -> (Hypergraph<I>, Vec<I>) {
        self.extract_part_mode(partition, part, true)
    }

    /// Like [`Hypergraph::extract_part`] but with net splitting optional.
    /// With `split_nets = false`, *cut* nets are dropped entirely instead
    /// of keeping their in-part pins — the classic cut-net-metric
    /// recursive bisection, kept for ablation studies (it under-counts the
    /// connectivity−1 objective and yields worse K-way volumes).
    // Infallible `expect` below: extraction renumbers pins into
    // `0..old_of_new.len()` with sorted, deduped nets — exactly what
    // `from_nets_weighted` validates.
    #[allow(clippy::expect_used)]
    pub fn extract_part_mode(
        &self,
        partition: &Partition,
        part: u32,
        split_nets: bool,
    ) -> (Hypergraph<I>, Vec<I>) {
        let parts = partition.parts();
        let mut old_of_new: Vec<I> = Vec::new();
        let mut new_of_old: Vec<I> = vec![I::MAX; self.num_vertices.index()];
        for v in 0..self.num_vertices.index() {
            if parts[v] == part {
                new_of_old[v] = I::from_index(old_of_new.len());
                old_of_new.push(I::from_index(v));
            }
        }
        let mut nets: Vec<Vec<I>> = Vec::new();
        let mut costs: Vec<u32> = Vec::new();
        for n in 0..self.pin_ptr.len() - 1 {
            let all_pins = &self.pins[self.pin_ptr[n]..self.pin_ptr[n + 1]];
            let mut kept: Vec<I> = all_pins
                .iter()
                .filter_map(|&p| {
                    let np = new_of_old[p.index()];
                    (np != I::MAX).then_some(np)
                })
                .collect();
            if !split_nets && kept.len() != all_pins.len() {
                continue; // cut net: dropped under the cut-net-metric mode
            }
            if kept.len() >= 2 {
                kept.sort_unstable();
                nets.push(kept);
                costs.push(self.net_costs[n]);
            }
        }
        let weights: Vec<u32> = old_of_new
            .iter()
            .map(|&v| self.vertex_weights[v.index()])
            .collect();
        let num_vertices = I::from_index(old_of_new.len());
        let hg = Hypergraph::from_nets_weighted(num_vertices, &nets, weights, costs)
            .expect("extraction preserves validity");
        (hg, old_of_new)
    }

    /// Checks internal invariants (used in tests and after coarsening).
    pub fn validate(&self) -> Result<()> {
        for n in 0..self.pin_ptr.len() - 1 {
            let pins = &self.pins[self.pin_ptr[n]..self.pin_ptr[n + 1]];
            for w in pins.windows(2) {
                if w[0] == w[1] {
                    return Err(HypergraphError::DuplicatePin {
                        net: n as u64,
                        pin: w[0].as_u64(),
                    });
                }
            }
            if let Some(&last) = pins.last() {
                if last >= self.num_vertices {
                    return Err(HypergraphError::PinOutOfBounds {
                        net: n as u64,
                        pin: last.as_u64(),
                        num_vertices: self.num_vertices.as_u64(),
                    });
                }
            }
        }
        // Dual consistency: v in pins[n] <=> n in nets[v].
        debug_assert_eq!(self.pins.len(), self.vnets.len());
        Ok(())
    }

    /// Exhaustive structural audit of the dual-CSR storage, returning a
    /// shared [`InvariantViolation`] rather than a crate-local error.
    ///
    /// Beyond what [`Hypergraph::validate`] checks (sorted unique in-bounds
    /// pins), this verifies both CSR pointer arrays, the weight/cost vector
    /// lengths, and full **dual consistency**: `v ∈ pins[n]` if and only if
    /// `n ∈ nets[v]`, with matching multiplicity. Runs in `O(|pins|)` plus
    /// binary searches; used by proptest harnesses and, behind the
    /// `paranoid` feature of `fgh-partition`, at multilevel checkpoints.
    pub fn validate_invariants(&self) -> std::result::Result<(), InvariantViolation> {
        const S: &str = "Hypergraph";
        invariant!(
            self.pin_ptr.first() == Some(&0),
            S,
            "pin_ptr.origin",
            "pin_ptr[0] = {:?}, expected 0",
            self.pin_ptr.first()
        );
        invariant!(
            self.pin_ptr.last() == Some(&self.pins.len()),
            S,
            "pin_ptr.end",
            "pin_ptr ends at {:?}, expected {} pins",
            self.pin_ptr.last(),
            self.pins.len()
        );
        invariant!(
            self.vnet_ptr.len() == self.num_vertices.index() + 1,
            S,
            "vnet_ptr.len",
            "vnet_ptr has {} entries for {} vertices",
            self.vnet_ptr.len(),
            self.num_vertices
        );
        invariant!(
            self.vnet_ptr.first() == Some(&0) && self.vnet_ptr.last() == Some(&self.vnets.len()),
            S,
            "vnet_ptr.span",
            "vnet_ptr spans {:?}..{:?}, expected 0..{}",
            self.vnet_ptr.first(),
            self.vnet_ptr.last(),
            self.vnets.len()
        );
        invariant!(
            self.pins.len() == self.vnets.len(),
            S,
            "dual.pin_count",
            "{} pins vs {} vertex-net incidences",
            self.pins.len(),
            self.vnets.len()
        );
        invariant!(
            self.vertex_weights.len() == self.num_vertices.index(),
            S,
            "weights.len",
            "{} weights for {} vertices",
            self.vertex_weights.len(),
            self.num_vertices
        );
        invariant!(
            self.net_costs.len() == self.pin_ptr.len() - 1,
            S,
            "costs.len",
            "{} costs for {} nets",
            self.net_costs.len(),
            self.pin_ptr.len() - 1
        );
        for w in self.pin_ptr.windows(2) {
            invariant!(
                w[0] <= w[1],
                S,
                "pin_ptr.monotone",
                "pin_ptr not monotone: {} > {}",
                w[0],
                w[1]
            );
        }
        for w in self.vnet_ptr.windows(2) {
            invariant!(
                w[0] <= w[1],
                S,
                "vnet_ptr.monotone",
                "vnet_ptr not monotone: {} > {}",
                w[0],
                w[1]
            );
        }
        // Forward direction: every pin list sorted, unique, in bounds, and
        // mirrored in the vertex's net list.
        for ni in 0..self.pin_ptr.len() - 1 {
            let n = I::from_index(ni);
            let pins = self.pins(n);
            for w in pins.windows(2) {
                invariant!(
                    w[0] < w[1],
                    S,
                    "pins.sorted_unique",
                    "net {ni} pins not sorted/unique: {} then {}",
                    w[0],
                    w[1]
                );
            }
            for &v in pins {
                invariant!(
                    v < self.num_vertices,
                    S,
                    "pins.in_bounds",
                    "net {ni} pin {v} >= |V| = {}",
                    self.num_vertices
                );
                invariant!(
                    self.nets(v).binary_search(&n).is_ok(),
                    S,
                    "dual.forward",
                    "v{v} ∈ pins[{ni}] but net {ni} ∉ nets[{v}]"
                );
            }
        }
        // Reverse direction: every vertex's net list sorted, unique, in
        // bounds, and mirrored in the net's pin list. Together with the
        // forward pass and the equal incidence counts this proves the two
        // CSRs are exact duals.
        for vi in 0..self.num_vertices.index() {
            let v = I::from_index(vi);
            let nets = self.nets(v);
            for w in nets.windows(2) {
                invariant!(
                    w[0] < w[1],
                    S,
                    "vnets.sorted_unique",
                    "vertex {vi} nets not sorted/unique: {} then {}",
                    w[0],
                    w[1]
                );
            }
            for &n in nets {
                invariant!(
                    n.index() < self.pin_ptr.len() - 1,
                    S,
                    "vnets.in_bounds",
                    "vertex {vi} lists net {n} >= |N| = {}",
                    self.pin_ptr.len() - 1
                );
                invariant!(
                    self.pins(n).binary_search(&v).is_ok(),
                    S,
                    "dual.reverse",
                    "n{n} ∈ nets[{vi}] but vertex {vi} ∉ pins[{n}]"
                );
            }
        }
        Ok(())
    }
}

/// Inverts a net→pin CSR into the dual vertex→net CSR (counting sort).
fn invert_pins<I: IndexType>(
    num_vertices: usize,
    pin_ptr: &[usize],
    pins: &[I],
) -> (Vec<usize>, Vec<I>) {
    let mut vnet_ptr = vec![0usize; num_vertices + 1];
    for &p in pins {
        vnet_ptr[p.index() + 1] += 1;
    }
    for i in 0..num_vertices {
        vnet_ptr[i + 1] += vnet_ptr[i];
    }
    let mut vnets = vec![I::ZERO; pins.len()];
    let mut next = vnet_ptr.clone();
    for n in 0..pin_ptr.len() - 1 {
        let net = I::from_index(n);
        for &p in &pins[pin_ptr[n]..pin_ptr[n + 1]] {
            vnets[next[p.index()]] = net;
            next[p.index()] += 1;
        }
    }
    (vnet_ptr, vnets)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure-1 example hypergraph: nets n_j = {v0, v1, v2} (column) and
    /// m_i = {v3, v4, v5, v0} (row) sharing vertex v0 = v_ij.
    fn figure1_like() -> Hypergraph {
        Hypergraph::from_nets(6, &[vec![0, 1, 2], vec![3, 4, 5, 0]]).unwrap()
    }

    #[test]
    fn construction_and_duals() {
        let hg = figure1_like();
        assert_eq!(hg.num_vertices(), 6);
        assert_eq!(hg.num_nets(), 2);
        assert_eq!(hg.num_pins(), 7);
        assert_eq!(hg.pins(0), &[0, 1, 2]);
        assert_eq!(hg.pins(1), &[0, 3, 4, 5]);
        assert_eq!(hg.nets(0), &[0, 1], "v0 is the shared pin");
        assert_eq!(hg.nets(4), &[1]);
        assert_eq!(hg.net_size(1), 4);
        assert_eq!(hg.vertex_degree(0), 2);
    }

    #[test]
    fn u64_width_construction_and_duals() {
        let hg = Hypergraph::<u64>::from_nets(6, &[vec![0, 1, 2], vec![3, 4, 5, 0]]).unwrap();
        assert_eq!(hg.num_vertices(), 6u64);
        assert_eq!(hg.num_nets(), 2u64);
        assert_eq!(hg.pins(0), &[0u64, 1, 2]);
        assert_eq!(hg.nets(0), &[0u64, 1]);
        assert!(hg.validate_invariants().is_ok());
        // Same structure at both widths, u64 costs twice the pin bytes.
        let hg32 = figure1_like();
        assert!(hg.heap_bytes() > hg32.heap_bytes());
    }

    #[test]
    fn duplicate_pin_rejected() {
        let err = Hypergraph::<u32>::from_nets(3, &[vec![0, 1, 1]]).unwrap_err();
        assert!(matches!(
            err,
            HypergraphError::DuplicatePin { net: 0, pin: 1 }
        ));
    }

    #[test]
    fn out_of_bounds_pin_rejected() {
        let err = Hypergraph::<u32>::from_nets(3, &[vec![0, 5]]).unwrap_err();
        assert!(matches!(
            err,
            HypergraphError::PinOutOfBounds { pin: 5, .. }
        ));
    }

    #[test]
    fn weights_and_costs() {
        let hg: Hypergraph =
            Hypergraph::from_nets_weighted(3, &[vec![0, 1], vec![1, 2]], vec![2, 0, 5], vec![3, 7])
                .unwrap();
        assert_eq!(hg.vertex_weight(1), 0);
        assert_eq!(hg.net_cost(1), 7);
        assert_eq!(hg.total_vertex_weight(), 7);
    }

    #[test]
    fn from_flat_nets_matches_from_nets() {
        let nested: Hypergraph = Hypergraph::from_nets_weighted(
            4,
            &[vec![0, 1, 2], vec![2, 3]],
            vec![1, 2, 3, 4],
            vec![5, 6],
        )
        .unwrap();
        let flat = Hypergraph::from_flat_nets(
            4,
            vec![0, 3, 5],
            vec![0, 1, 2, 2, 3],
            vec![1, 2, 3, 4],
            vec![5, 6],
        )
        .unwrap();
        assert_eq!(nested, flat);
        assert!(
            Hypergraph::<u32>::from_flat_nets(2, vec![0, 1], vec![5], vec![1, 1], vec![1]).is_err()
        );
        assert!(
            Hypergraph::<u32>::from_flat_nets(2, vec![0, 1], vec![0], vec![1], vec![1]).is_err()
        );
        assert!(
            Hypergraph::<u32>::from_flat_nets(2, vec![0, 1], vec![0], vec![1, 1], vec![]).is_err()
        );
    }

    #[test]
    fn mismatched_weight_length_rejected() {
        let err = Hypergraph::<u32>::from_nets_weighted(3, &[vec![0, 1]], vec![1, 1], vec![1])
            .unwrap_err();
        assert_eq!(
            err,
            HypergraphError::WeightLengthMismatch {
                expected: 3,
                got: 2
            }
        );
        let err = Hypergraph::<u32>::from_nets_weighted(2, &[vec![0, 1]], vec![1, 1, 1], vec![1])
            .unwrap_err();
        assert_eq!(
            err,
            HypergraphError::WeightLengthMismatch {
                expected: 2,
                got: 3
            }
        );
    }

    #[test]
    fn mismatched_cost_length_rejected() {
        let err = Hypergraph::<u32>::from_nets_weighted(2, &[vec![0, 1]], vec![1, 1], vec![1, 4])
            .unwrap_err();
        assert_eq!(
            err,
            HypergraphError::CostLengthMismatch {
                expected: 1,
                got: 2
            }
        );
        let err = Hypergraph::<u32>::from_nets_weighted(2, &[vec![0, 1]], vec![1, 1], vec![])
            .unwrap_err();
        assert_eq!(
            err,
            HypergraphError::CostLengthMismatch {
                expected: 1,
                got: 0
            }
        );
    }

    #[test]
    fn empty_net_allowed() {
        let hg: Hypergraph = Hypergraph::from_nets(2, &[vec![], vec![0, 1]]).unwrap();
        assert_eq!(hg.net_size(0), 0);
        assert_eq!(hg.num_pins(), 2);
    }

    #[test]
    fn extract_part_with_net_splitting() {
        // Vertices 0..6; nets: {0,1,2,3}, {2,3,4}, {4,5}.
        let hg: Hypergraph =
            Hypergraph::from_nets(6, &[vec![0, 1, 2, 3], vec![2, 3, 4], vec![4, 5]]).unwrap();
        // Partition: {0,1,2,3} in part 0, {4,5} in part 1.
        let p = Partition::new(2, vec![0, 0, 0, 0, 1, 1]).unwrap();
        let (sub0, map0) = hg.extract_part(&p, 0);
        assert_eq!(map0, vec![0, 1, 2, 3]);
        // Net 0 survives whole; net 1 splits to {2,3}; net 2 vanishes.
        assert_eq!(sub0.num_nets(), 2);
        assert_eq!(sub0.pins(0), &[0, 1, 2, 3]);
        assert_eq!(sub0.pins(1), &[2, 3]);
        let (sub1, map1) = hg.extract_part(&p, 1);
        assert_eq!(map1, vec![4, 5]);
        // Net 1 leaves a single pin (4) -> dropped; net 2 survives.
        assert_eq!(sub1.num_nets(), 1);
        assert_eq!(sub1.pins(0), &[0, 1]);
    }

    #[test]
    fn extract_preserves_weights_and_costs() {
        let hg: Hypergraph =
            Hypergraph::from_nets_weighted(4, &[vec![0, 1, 2, 3]], vec![1, 2, 3, 4], vec![9])
                .unwrap();
        let p = Partition::new(2, vec![0, 1, 1, 0]).unwrap();
        let (sub, map) = hg.extract_part(&p, 1);
        assert_eq!(map, vec![1, 2]);
        assert_eq!(sub.vertex_weights(), &[2, 3]);
        assert_eq!(sub.net_cost(0), 9);
    }

    #[test]
    fn validate_ok() {
        assert!(figure1_like().validate().is_ok());
    }

    #[test]
    fn extract_without_net_splitting_drops_cut_nets() {
        let hg: Hypergraph =
            Hypergraph::from_nets(6, &[vec![0, 1, 2, 3], vec![2, 3, 4], vec![4, 5]]).unwrap();
        let p = Partition::new(2, vec![0, 0, 0, 0, 1, 1]).unwrap();
        let (sub0, _) = hg.extract_part_mode(&p, 0, false);
        // Net 0 is internal (kept); net 1 is cut (dropped, unlike the
        // splitting mode which keeps {2,3}); net 2 has no pins here.
        assert_eq!(sub0.num_nets(), 1);
        assert_eq!(sub0.pins(0), &[0, 1, 2, 3]);
    }
}
