//! K-way vertex partitions and balance queries.

use fgh_invariant::{invariant, InvariantViolation};
use fgh_sparse::IndexType;

use crate::{Hypergraph, HypergraphError, Result};

/// A K-way partition `Π = {P_1, ..., P_K}` of a hypergraph's vertex set,
/// stored as a per-vertex part id in `0..k`.
///
/// Part ids stay `u32` regardless of the hypergraph's index width — K is
/// a processor count, never anywhere near `u32::MAX`. Only vertex *indices*
/// widen, and those are plain `usize` positions into the part vector here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    k: u32,
    parts: Vec<u32>,
}

impl Partition {
    /// Creates a partition from a per-vertex part vector, validating that
    /// every id is `< k`.
    pub fn new(k: u32, parts: Vec<u32>) -> Result<Self> {
        if k == 0 {
            return Err(HypergraphError::InvalidK);
        }
        for (v, &p) in parts.iter().enumerate() {
            if p >= k {
                return Err(HypergraphError::PartOutOfBounds {
                    vertex: v as u64,
                    part: p,
                    k,
                });
            }
        }
        Ok(Partition { k, parts })
    }

    /// The trivial 1-way partition of `n` vertices.
    pub fn trivial(n: u32) -> Self {
        Self::trivial_n(n as usize)
    }

    /// The trivial 1-way partition of `n` vertices, sized by `usize` —
    /// the entry point for index widths whose vertex counts exceed `u32`.
    pub fn trivial_n(n: usize) -> Self {
        Partition {
            k: 1,
            parts: vec![0; n],
        }
    }

    /// Number of parts K.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// `true` when the partition covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Part id of vertex `v`.
    pub fn part(&self, v: u32) -> u32 {
        self.parts[v as usize]
    }

    /// Part id of vertex `v`, addressed by `usize` position — the accessor
    /// for index widths whose vertex ids exceed `u32`.
    pub fn part_at(&self, v: usize) -> u32 {
        self.parts[v]
    }

    /// The raw per-vertex part vector.
    pub fn parts(&self) -> &[u32] {
        &self.parts
    }

    /// Mutable access for refinement algorithms.
    pub fn parts_mut(&mut self) -> &mut [u32] {
        &mut self.parts
    }

    /// Reassigns vertex `v` to `part`.
    pub fn assign(&mut self, v: u32, part: u32) {
        debug_assert!(part < self.k);
        self.parts[v as usize] = part;
    }

    /// Reassigns vertex `v` (a `usize` position) to `part` — the mutator
    /// counterpart of [`Partition::part_at`] for wide index types.
    pub fn assign_at(&mut self, v: usize, part: u32) {
        debug_assert!(part < self.k);
        self.parts[v] = part;
    }

    /// Part weights `W_k = Σ_{v in P_k} w_v` under the hypergraph's vertex
    /// weights.
    pub fn part_weights<I: IndexType>(&self, hg: &Hypergraph<I>) -> Vec<u64> {
        assert_eq!(self.parts.len(), hg.num_vertices().index());
        let mut w = vec![0u64; self.k as usize];
        for (v, &p) in self.parts.iter().enumerate() {
            w[p as usize] += hg.vertex_weights()[v] as u64;
        }
        w
    }

    /// Per-part vertex counts (regardless of weight).
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.k as usize];
        for &p in &self.parts {
            s[p as usize] += 1;
        }
        s
    }

    /// Percent load imbalance `100 · (W_max − W_avg) / W_avg`, the measure
    /// the paper reports (kept below 3% in all its experiments).
    pub fn imbalance_percent<I: IndexType>(&self, hg: &Hypergraph<I>) -> f64 {
        let w = self.part_weights(hg);
        let total: u64 = w.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let avg = total as f64 / self.k as f64;
        let max = w.iter().copied().max().unwrap_or(0) as f64;
        100.0 * (max - avg) / avg
    }

    /// Checks the balance criterion (eq. 1): every part weight is at most
    /// `W_avg · (1 + epsilon)`.
    pub fn is_balanced<I: IndexType>(&self, hg: &Hypergraph<I>, epsilon: f64) -> bool {
        let w = self.part_weights(hg);
        let total: u64 = w.iter().sum();
        let cap = (total as f64 / self.k as f64) * (1.0 + epsilon);
        w.iter().all(|&x| x as f64 <= cap + 1e-9)
    }

    /// Validates the partition against a hypergraph: length matches and,
    /// when `require_nonempty`, every part has at least one vertex.
    pub fn validate<I: IndexType>(&self, hg: &Hypergraph<I>, require_nonempty: bool) -> Result<()> {
        if self.parts.len() != hg.num_vertices().index() {
            return Err(HypergraphError::PartitionLengthMismatch {
                expected: hg.num_vertices().index(),
                got: self.parts.len(),
            });
        }
        if require_nonempty {
            let sizes = self.part_sizes();
            if let Some(p) = sizes.iter().position(|&s| s == 0) {
                return Err(HypergraphError::EmptyPart { part: p as u32 }); // lint: checked-cast — p < k, a u32
            }
        }
        Ok(())
    }

    /// Structural audit against `hg`, returning the shared
    /// [`InvariantViolation`] type: K is nonzero, the part vector covers
    /// exactly the vertex set, and every part id is in `0..k`.
    /// [`Partition::new`] enforces the id range, but refinement algorithms
    /// mutate the vector through [`Partition::parts_mut`], so this re-checks
    /// it from scratch.
    pub fn validate_invariants<I: IndexType>(
        &self,
        hg: &Hypergraph<I>,
    ) -> std::result::Result<(), InvariantViolation> {
        const S: &str = "Partition";
        invariant!(self.k > 0, S, "k.nonzero", "partition has k = 0 parts");
        invariant!(
            self.parts.len() == hg.num_vertices().index(),
            S,
            "parts.len",
            "part vector covers {} vertices, hypergraph has {}",
            self.parts.len(),
            hg.num_vertices()
        );
        for (v, &p) in self.parts.iter().enumerate() {
            invariant!(
                p < self.k,
                S,
                "parts.in_range",
                "vertex {v} assigned part {p} >= k = {}",
                self.k
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hg() -> Hypergraph {
        Hypergraph::from_nets_weighted(4, &[vec![0, 1], vec![2, 3]], vec![1, 2, 3, 4], vec![1, 1])
            .unwrap()
    }

    #[test]
    fn part_weights_and_imbalance() {
        let p = Partition::new(2, vec![0, 0, 1, 1]).unwrap();
        let w = p.part_weights(&hg());
        assert_eq!(w, vec![3, 7]);
        // avg = 5, max = 7 -> 40% imbalance.
        assert!((p.imbalance_percent(&hg()) - 40.0).abs() < 1e-9);
        assert!(!p.is_balanced(&hg(), 0.3));
        assert!(p.is_balanced(&hg(), 0.4));
    }

    #[test]
    fn perfect_balance() {
        let p = Partition::new(2, vec![0, 1, 1, 0]).unwrap();
        let w = p.part_weights(&hg());
        assert_eq!(w, vec![5, 5]);
        assert_eq!(p.imbalance_percent(&hg()), 0.0);
        assert!(p.is_balanced(&hg(), 0.0));
    }

    #[test]
    fn invalid_part_rejected() {
        assert!(matches!(
            Partition::new(2, vec![0, 2]).unwrap_err(),
            HypergraphError::PartOutOfBounds { part: 2, .. }
        ));
        assert!(matches!(
            Partition::new(0, vec![]).unwrap_err(),
            HypergraphError::InvalidK
        ));
    }

    #[test]
    fn validate_checks_length_and_empty_parts() {
        let p = Partition::new(2, vec![0, 0, 0, 0]).unwrap();
        assert!(matches!(
            p.validate(&hg(), true).unwrap_err(),
            HypergraphError::EmptyPart { part: 1 }
        ));
        assert!(p.validate(&hg(), false).is_ok());
        let short = Partition::new(2, vec![0, 1]).unwrap();
        assert!(matches!(
            short.validate(&hg(), false).unwrap_err(),
            HypergraphError::PartitionLengthMismatch { .. }
        ));
    }

    #[test]
    fn trivial_partition() {
        let p = Partition::trivial(4);
        assert_eq!(p.k(), 1);
        assert_eq!(p.imbalance_percent(&hg()), 0.0);
        assert_eq!(Partition::trivial_n(4), p);
    }

    #[test]
    fn balance_queries_work_at_u64_width() {
        let hg64 = Hypergraph::<u64>::from_nets_weighted(
            4,
            &[vec![0, 1], vec![2, 3]],
            vec![1, 2, 3, 4],
            vec![1, 1],
        )
        .unwrap();
        let p = Partition::new(2, vec![0, 1, 1, 0]).unwrap();
        assert_eq!(p.part_weights(&hg64), vec![5, 5]);
        assert!(p.validate(&hg64, true).is_ok());
        assert!(p.validate_invariants(&hg64).is_ok());
    }

    #[test]
    fn assign_moves_vertex() {
        let mut p = Partition::new(2, vec![0, 0, 1, 1]).unwrap();
        p.assign(0, 1);
        assert_eq!(p.part(0), 1);
        assert_eq!(p.part_sizes(), vec![1, 3]);
    }
}
