//! Cutsize metrics: the cut-net metric (eq. 2) and the connectivity − 1
//! metric (eq. 3), plus per-net connectivity sets `Λ_j`.

use fgh_sparse::IndexType;

use crate::{Hypergraph, Partition};

/// Computes the connectivity `λ_j` of every net: the number of distinct
/// parts its pins touch. Empty nets have connectivity 0.
///
/// Runs in `O(pins)` using a timestamped marker array of size K (stamps are
/// `usize` net indices so the same code serves every index width).
pub fn connectivities<I: IndexType>(hg: &Hypergraph<I>, partition: &Partition) -> Vec<u32> {
    let k = partition.k() as usize;
    let num_nets = hg.num_nets().index();
    let mut stamp = vec![usize::MAX; k];
    let mut lambdas = Vec::with_capacity(num_nets);
    for n in 0..num_nets {
        let mut lambda = 0u32;
        for &p in hg.pins(I::from_index(n)) {
            let part = partition.parts()[p.index()] as usize;
            if stamp[part] != n {
                stamp[part] = n;
                lambda += 1;
            }
        }
        lambdas.push(lambda);
    }
    lambdas
}

/// Computes the connectivity set `Λ_j` of every net: the sorted list of
/// parts its pins touch.
pub fn connectivity_sets<I: IndexType>(hg: &Hypergraph<I>, partition: &Partition) -> Vec<Vec<u32>> {
    let k = partition.k() as usize;
    let num_nets = hg.num_nets().index();
    let mut stamp = vec![usize::MAX; k];
    let mut sets = Vec::with_capacity(num_nets);
    for n in 0..num_nets {
        let mut set: Vec<u32> = Vec::new();
        for &p in hg.pins(I::from_index(n)) {
            let part = partition.parts()[p.index()] as usize;
            if stamp[part] != n {
                stamp[part] = n;
                set.push(part as u32); // lint: checked-cast — part < k, a u32
            }
        }
        set.sort_unstable();
        sets.push(set);
    }
    sets
}

/// Cut-net cutsize (eq. 2): `Σ_{cut nets} c_j`.
pub fn cutsize_cutnet<I: IndexType>(hg: &Hypergraph<I>, partition: &Partition) -> u64 {
    connectivities(hg, partition)
        .iter()
        .enumerate()
        .filter(|(_, &l)| l > 1)
        .map(|(n, _)| hg.net_costs()[n] as u64)
        .sum()
}

/// Connectivity − 1 cutsize (eq. 3): `Σ_j c_j (λ_j − 1)`.
///
/// For the fine-grain model with unit costs this equals the **total
/// communication volume in words** of one parallel SpMV (the paper's
/// central claim, re-verified end-to-end by `fgh-spmv`).
pub fn cutsize_connectivity<I: IndexType>(hg: &Hypergraph<I>, partition: &Partition) -> u64 {
    connectivities(hg, partition)
        .iter()
        .enumerate()
        .map(|(n, &l)| hg.net_costs()[n] as u64 * (l.max(1) - 1) as u64)
        .sum()
}

/// Number of cut (external) nets.
pub fn num_cut_nets<I: IndexType>(hg: &Hypergraph<I>, partition: &Partition) -> usize {
    connectivities(hg, partition)
        .iter()
        .filter(|&&l| l > 1)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 6 vertices, nets {0,1,2}, {2,3}, {4,5}, {0,5}; parts (0,0,1,1,2,2).
    fn setup() -> (Hypergraph, Partition) {
        let hg =
            Hypergraph::from_nets(6, &[vec![0, 1, 2], vec![2, 3], vec![4, 5], vec![0, 5]]).unwrap();
        let p = Partition::new(3, vec![0, 0, 1, 1, 2, 2]).unwrap();
        (hg, p)
    }

    #[test]
    fn lambda_values() {
        let (hg, p) = setup();
        assert_eq!(connectivities(&hg, &p), vec![2, 1, 1, 2]);
    }

    #[test]
    fn connectivity_sets_sorted() {
        let (hg, p) = setup();
        let sets = connectivity_sets(&hg, &p);
        assert_eq!(sets[0], vec![0, 1]);
        assert_eq!(sets[1], vec![1]);
        assert_eq!(sets[2], vec![2]);
        assert_eq!(sets[3], vec![0, 2]);
    }

    #[test]
    fn cutsizes() {
        let (hg, p) = setup();
        // Cut nets: 0 and 3, each cost 1, each λ = 2.
        assert_eq!(cutsize_cutnet(&hg, &p), 2);
        assert_eq!(cutsize_connectivity(&hg, &p), 2);
        assert_eq!(num_cut_nets(&hg, &p), 2);
    }

    #[test]
    fn connectivity_exceeds_cutnet_when_lambda_high() {
        // One net spanning 3 parts: cut-net metric 1, λ−1 metric 2.
        let hg: Hypergraph = Hypergraph::from_nets(3, &[vec![0, 1, 2]]).unwrap();
        let p = Partition::new(3, vec![0, 1, 2]).unwrap();
        assert_eq!(cutsize_cutnet(&hg, &p), 1);
        assert_eq!(cutsize_connectivity(&hg, &p), 2);
    }

    #[test]
    fn metrics_agree_across_index_widths() {
        let (hg, p) = setup();
        let hg64 =
            Hypergraph::<u64>::from_nets(6, &[vec![0, 1, 2], vec![2, 3], vec![4, 5], vec![0, 5]])
                .unwrap();
        assert_eq!(connectivities(&hg, &p), connectivities(&hg64, &p));
        assert_eq!(cutsize_cutnet(&hg, &p), cutsize_cutnet(&hg64, &p));
        assert_eq!(
            cutsize_connectivity(&hg, &p),
            cutsize_connectivity(&hg64, &p)
        );
    }

    #[test]
    fn net_costs_scale_cutsize() {
        let hg: Hypergraph =
            Hypergraph::from_nets_weighted(2, &[vec![0, 1]], vec![1, 1], vec![5]).unwrap();
        let p = Partition::new(2, vec![0, 1]).unwrap();
        assert_eq!(cutsize_cutnet(&hg, &p), 5);
        assert_eq!(cutsize_connectivity(&hg, &p), 5);
    }

    #[test]
    fn uncut_partition_has_zero_cutsize() {
        let (hg, _) = setup();
        let p = Partition::trivial(6);
        assert_eq!(cutsize_cutnet(&hg, &p), 0);
        assert_eq!(cutsize_connectivity(&hg, &p), 0);
    }

    #[test]
    fn empty_net_connectivity_zero() {
        let hg: Hypergraph = Hypergraph::from_nets(2, &[vec![]]).unwrap();
        let p = Partition::new(2, vec![0, 1]).unwrap();
        assert_eq!(connectivities(&hg, &p), vec![0]);
        assert_eq!(cutsize_connectivity(&hg, &p), 0);
    }
}
