//! Hypergraph file I/O in the hMETIS/PaToH `.hgr` format.
//!
//! Format (hMETIS manual):
//!
//! ```text
//! % comments
//! <#nets> <#vertices> [fmt]
//! <pins of net 1 (1-based vertex ids)> ...
//! ...
//! [vertex weights, one per line, when fmt includes 10]
//! ```
//!
//! `fmt` is `1` (net costs lead each net line), `10` (vertex weights
//! follow the net lines), `11` (both), or absent (unweighted). This makes
//! the partitioner interoperable with hypergraphs produced for/by PaToH
//! and hMETIS — the tools the paper's experiments used.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use fgh_sparse::IndexType;

use crate::{Hypergraph, HypergraphError, Result};

/// Reads an `.hgr` hypergraph from a file.
pub fn read_hgr(path: impl AsRef<Path>) -> Result<Hypergraph> {
    let file = std::fs::File::open(&path).map_err(|e| parse_err(format!("open: {e}")))?;
    read_hgr_from(BufReader::new(file))
}

fn parse_err(msg: String) -> HypergraphError {
    HypergraphError::Io(msg)
}

/// Reads `.hgr` data from any reader.
pub fn read_hgr_from(reader: impl Read) -> Result<Hypergraph> {
    let mut lines = BufReader::new(reader)
        .lines()
        .map(|l| l.map_err(|e| parse_err(e.to_string())));

    // Header.
    let header = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                let t = line.trim().to_string();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break t;
            }
            None => return Err(parse_err("empty file".into())),
        }
    };
    let mut it = header.split_whitespace();
    let num_nets: usize = parse_num(it.next(), "net count")?;
    let num_vertices: u32 = parse_num(it.next(), "vertex count")?;
    let fmt: u32 = match it.next() {
        Some(t) => t.parse().map_err(|_| parse_err(format!("bad fmt {t:?}")))?,
        None => 0,
    };
    let has_net_costs = fmt == 1 || fmt == 11;
    let has_vertex_weights = fmt == 10 || fmt == 11;

    let mut nets: Vec<Vec<u32>> = Vec::with_capacity(num_nets);
    let mut costs: Vec<u32> = Vec::with_capacity(num_nets);
    while nets.len() < num_nets {
        let line = match lines.next() {
            Some(l) => l?,
            None => return Err(parse_err(format!("expected {num_nets} net lines"))),
        };
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut nums = t.split_whitespace();
        let cost = if has_net_costs {
            parse_num::<u32>(nums.next(), "net cost")?
        } else {
            1
        };
        let mut pins = Vec::new();
        for tok in nums {
            let v: u32 = tok
                .parse()
                .map_err(|_| parse_err(format!("bad pin {tok:?}")))?;
            if v == 0 || v > num_vertices {
                return Err(parse_err(format!("pin {v} out of 1..={num_vertices}")));
            }
            pins.push(v - 1);
        }
        nets.push(pins);
        costs.push(cost);
    }

    let mut weights = vec![1u32; num_vertices as usize];
    if has_vertex_weights {
        let mut got = 0usize;
        while got < num_vertices as usize {
            let line = match lines.next() {
                Some(l) => l?,
                None => return Err(parse_err(format!("expected {num_vertices} weight lines"))),
            };
            let t = line.trim();
            if t.is_empty() || t.starts_with('%') {
                continue;
            }
            for tok in t.split_whitespace() {
                if got >= num_vertices as usize {
                    return Err(parse_err("too many vertex weights".into()));
                }
                weights[got] = tok
                    .parse()
                    .map_err(|_| parse_err(format!("bad weight {tok:?}")))?;
                got += 1;
            }
        }
    }

    Hypergraph::from_nets_weighted(num_vertices, &nets, weights, costs)
}

/// Writes a hypergraph to `.hgr` format (fmt 11: costs and weights).
pub fn write_hgr<I: IndexType>(hg: &Hypergraph<I>, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(&path).map_err(|e| parse_err(format!("create: {e}")))?;
    write_hgr_to(hg, BufWriter::new(file))
}

/// Writes `.hgr` data to any writer. Generic over the index width — ids
/// are emitted in decimal either way, so a `u64` hypergraph writes a file
/// any compliant reader accepts (the *reader* here stays `u32`: `.hgr`
/// interchange with PaToH/hMETIS never involves >4G-vertex inputs).
pub fn write_hgr_to<I: IndexType>(hg: &Hypergraph<I>, mut w: impl Write) -> Result<()> {
    let io = |e: std::io::Error| parse_err(e.to_string());
    writeln!(w, "% written by fgh-hypergraph").map_err(io)?;
    writeln!(w, "{} {} 11", hg.num_nets(), hg.num_vertices()).map_err(io)?;
    for n in 0..hg.num_nets().index() {
        let n = I::from_index(n);
        write!(w, "{}", hg.net_cost(n)).map_err(io)?;
        for &p in hg.pins(n) {
            write!(w, " {}", p.as_u64() + 1).map_err(io)?;
        }
        writeln!(w).map_err(io)?;
    }
    for v in 0..hg.num_vertices().index() {
        writeln!(w, "{}", hg.vertex_weight(I::from_index(v))).map_err(io)?;
    }
    w.flush().map_err(io)
}

fn parse_num<T: std::str::FromStr>(token: Option<&str>, what: &str) -> Result<T> {
    token
        .ok_or_else(|| parse_err(format!("missing {what}")))?
        .parse::<T>()
        .map_err(|_| parse_err(format!("bad {what}: {token:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_unweighted() {
        let data = "% demo\n2 4\n1 2 3\n3 4\n";
        let hg = read_hgr_from(data.as_bytes()).unwrap();
        assert_eq!(hg.num_vertices(), 4);
        assert_eq!(hg.num_nets(), 2);
        assert_eq!(hg.pins(0), &[0, 1, 2]);
        assert_eq!(hg.pins(1), &[2, 3]);
        assert_eq!(hg.net_cost(0), 1);
        assert_eq!(hg.vertex_weight(3), 1);
    }

    #[test]
    fn read_fmt_11() {
        let data = "2 3 11\n5 1 2\n7 2 3\n10\n20\n30\n";
        let hg = read_hgr_from(data.as_bytes()).unwrap();
        assert_eq!(hg.net_cost(0), 5);
        assert_eq!(hg.net_cost(1), 7);
        assert_eq!(hg.vertex_weight(0), 10);
        assert_eq!(hg.vertex_weight(2), 30);
    }

    #[test]
    fn read_fmt_1_costs_only() {
        let data = "1 2 1\n9 1 2\n";
        let hg = read_hgr_from(data.as_bytes()).unwrap();
        assert_eq!(hg.net_cost(0), 9);
        assert_eq!(hg.pins(0), &[0, 1]);
    }

    #[test]
    fn reject_bad_input() {
        assert!(read_hgr_from("".as_bytes()).is_err());
        assert!(read_hgr_from("2 3\n1 2\n".as_bytes()).is_err()); // missing a net line
        assert!(read_hgr_from("1 2\n1 5\n".as_bytes()).is_err()); // pin out of range
        assert!(read_hgr_from("1 2\n0 1\n".as_bytes()).is_err()); // pins are 1-based
        assert!(read_hgr_from("1 2 10\n1 2\n7\n".as_bytes()).is_err()); // missing weight
    }

    #[test]
    fn roundtrip() {
        let hg: Hypergraph = Hypergraph::from_nets_weighted(
            5,
            &[vec![0, 1, 4], vec![2, 3], vec![0, 3]],
            vec![1, 2, 3, 4, 0],
            vec![1, 5, 2],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_hgr_to(&hg, &mut buf).unwrap();
        let back = read_hgr_from(buf.as_slice()).unwrap();
        assert_eq!(back, hg);
    }

    #[test]
    fn u64_hypergraph_writes_readable_hgr() {
        let hg64 = Hypergraph::<u64>::from_nets(3, &[vec![0, 1], vec![1, 2]]).unwrap();
        let mut buf = Vec::new();
        write_hgr_to(&hg64, &mut buf).unwrap();
        let back = read_hgr_from(buf.as_slice()).unwrap();
        assert_eq!(back.num_nets(), 2);
        assert_eq!(back.pins(0), &[0, 1]);
        assert_eq!(back.pins(1), &[1, 2]);
    }

    #[test]
    fn file_roundtrip() {
        let hg: Hypergraph = Hypergraph::from_nets(3, &[vec![0, 1], vec![1, 2]]).unwrap();
        let dir = std::env::temp_dir().join("fgh_hgr_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.hgr");
        write_hgr(&hg, &path).unwrap();
        assert_eq!(read_hgr(&path).unwrap(), hg);
    }
}
