//! Incremental hypergraph construction.

use fgh_sparse::IndexType;

use crate::{Hypergraph, Result};

/// Builds a [`Hypergraph`] incrementally: declare vertices (with weights),
/// then add nets (with costs) as pin lists. The decomposition-model crates
/// use this to assemble the fine-grain and 1D hypergraphs.
///
/// Generic over the index width `I` (default `u32`); the `u64`
/// instantiation serves models whose vertex/net counts overflow `u32`.
#[derive(Debug, Clone, Default)]
pub struct HypergraphBuilder<I: IndexType = u32> {
    vertex_weights: Vec<u32>,
    nets: Vec<Vec<I>>,
    net_costs: Vec<u32>,
}

impl<I: IndexType> HypergraphBuilder<I> {
    /// Creates a builder with no vertices or nets.
    pub fn new() -> Self {
        HypergraphBuilder {
            vertex_weights: Vec::new(),
            nets: Vec::new(),
            net_costs: Vec::new(),
        }
    }

    /// Creates a builder pre-populated with `n` vertices of unit weight.
    pub fn with_unit_vertices(n: I) -> Self {
        HypergraphBuilder {
            vertex_weights: vec![1; n.index()],
            nets: Vec::new(),
            net_costs: Vec::new(),
        }
    }

    /// Adds a vertex with the given weight; returns its id.
    pub fn add_vertex(&mut self, weight: u32) -> I {
        self.vertex_weights.push(weight);
        I::from_index(self.vertex_weights.len() - 1)
    }

    /// Current number of vertices.
    pub fn num_vertices(&self) -> I {
        I::from_index(self.vertex_weights.len())
    }

    /// Current number of nets.
    pub fn num_nets(&self) -> I {
        I::from_index(self.nets.len())
    }

    /// Adds a net with unit cost; returns its id.
    pub fn add_net(&mut self, pins: Vec<I>) -> I {
        self.add_net_with_cost(pins, 1)
    }

    /// Adds a net with an explicit cost; returns its id.
    pub fn add_net_with_cost(&mut self, pins: Vec<I>, cost: u32) -> I {
        self.nets.push(pins);
        self.net_costs.push(cost);
        I::from_index(self.nets.len() - 1)
    }

    /// Appends a pin to an existing net.
    pub fn add_pin(&mut self, net: I, vertex: I) {
        self.nets[net.index()].push(vertex);
    }

    /// Finalizes into an immutable [`Hypergraph`], validating pins.
    pub fn build(self) -> Result<Hypergraph<I>> {
        Hypergraph::from_nets_weighted(
            I::from_index(self.vertex_weights.len()),
            &self.nets,
            self.vertex_weights,
            self.net_costs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_build() {
        let mut b: HypergraphBuilder = HypergraphBuilder::new();
        let v0 = b.add_vertex(1);
        let v1 = b.add_vertex(2);
        let v2 = b.add_vertex(0);
        let n0 = b.add_net(vec![v0, v1]);
        b.add_pin(n0, v2);
        b.add_net_with_cost(vec![v1, v2], 5);
        let hg = b.build().unwrap();
        assert_eq!(hg.num_vertices(), 3);
        assert_eq!(hg.num_nets(), 2);
        assert_eq!(hg.pins(0), &[0, 1, 2]);
        assert_eq!(hg.net_cost(1), 5);
        assert_eq!(hg.vertex_weight(2), 0);
    }

    #[test]
    fn unit_vertices_shortcut() {
        let mut b: HypergraphBuilder = HypergraphBuilder::with_unit_vertices(4);
        b.add_net(vec![0, 3]);
        let hg = b.build().unwrap();
        assert_eq!(hg.total_vertex_weight(), 4);
    }

    #[test]
    fn u64_builder_roundtrip() {
        let mut b: HypergraphBuilder<u64> = HypergraphBuilder::with_unit_vertices(3);
        let n = b.add_net(vec![0, 2]);
        b.add_pin(n, 1);
        let hg = b.build().unwrap();
        assert_eq!(hg.num_nets(), 1u64);
        assert_eq!(hg.pins(0), &[0u64, 1, 2]);
    }

    #[test]
    fn invalid_pin_caught_at_build() {
        let mut b: HypergraphBuilder = HypergraphBuilder::with_unit_vertices(2);
        b.add_net(vec![0, 7]);
        assert!(b.build().is_err());
    }
}
