//! Incremental hypergraph construction.

use crate::{Hypergraph, Result};

/// Builds a [`Hypergraph`] incrementally: declare vertices (with weights),
/// then add nets (with costs) as pin lists. The decomposition-model crates
/// use this to assemble the fine-grain and 1D hypergraphs.
#[derive(Debug, Clone, Default)]
pub struct HypergraphBuilder {
    vertex_weights: Vec<u32>,
    nets: Vec<Vec<u32>>,
    net_costs: Vec<u32>,
}

impl HypergraphBuilder {
    /// Creates a builder with no vertices or nets.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-populated with `n` vertices of unit weight.
    pub fn with_unit_vertices(n: u32) -> Self {
        HypergraphBuilder {
            vertex_weights: vec![1; n as usize],
            nets: Vec::new(),
            net_costs: Vec::new(),
        }
    }

    /// Adds a vertex with the given weight; returns its id.
    pub fn add_vertex(&mut self, weight: u32) -> u32 {
        self.vertex_weights.push(weight);
        (self.vertex_weights.len() - 1) as u32 // lint: checked-cast — add_vertex caps the count at u32::MAX
    }

    /// Current number of vertices.
    pub fn num_vertices(&self) -> u32 {
        self.vertex_weights.len() as u32 // lint: checked-cast — add_vertex caps the count at u32::MAX
    }

    /// Current number of nets.
    pub fn num_nets(&self) -> u32 {
        self.nets.len() as u32 // lint: checked-cast — add_net caps the count at u32::MAX
    }

    /// Adds a net with unit cost; returns its id.
    pub fn add_net(&mut self, pins: Vec<u32>) -> u32 {
        self.add_net_with_cost(pins, 1)
    }

    /// Adds a net with an explicit cost; returns its id.
    pub fn add_net_with_cost(&mut self, pins: Vec<u32>, cost: u32) -> u32 {
        self.nets.push(pins);
        self.net_costs.push(cost);
        (self.nets.len() - 1) as u32 // lint: checked-cast — add_net caps the count at u32::MAX
    }

    /// Appends a pin to an existing net.
    pub fn add_pin(&mut self, net: u32, vertex: u32) {
        self.nets[net as usize].push(vertex);
    }

    /// Finalizes into an immutable [`Hypergraph`], validating pins.
    pub fn build(self) -> Result<Hypergraph> {
        Hypergraph::from_nets_weighted(
            self.vertex_weights.len() as u32, // lint: checked-cast — add_vertex caps the count at u32::MAX
            &self.nets,
            self.vertex_weights,
            self.net_costs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_build() {
        let mut b = HypergraphBuilder::new();
        let v0 = b.add_vertex(1);
        let v1 = b.add_vertex(2);
        let v2 = b.add_vertex(0);
        let n0 = b.add_net(vec![v0, v1]);
        b.add_pin(n0, v2);
        b.add_net_with_cost(vec![v1, v2], 5);
        let hg = b.build().unwrap();
        assert_eq!(hg.num_vertices(), 3);
        assert_eq!(hg.num_nets(), 2);
        assert_eq!(hg.pins(0), &[0, 1, 2]);
        assert_eq!(hg.net_cost(1), 5);
        assert_eq!(hg.vertex_weight(2), 0);
    }

    #[test]
    fn unit_vertices_shortcut() {
        let mut b = HypergraphBuilder::with_unit_vertices(4);
        b.add_net(vec![0, 3]);
        let hg = b.build().unwrap();
        assert_eq!(hg.total_vertex_weight(), 4);
    }

    #[test]
    fn invalid_pin_caught_at_build() {
        let mut b = HypergraphBuilder::with_unit_vertices(2);
        b.add_net(vec![0, 7]);
        assert!(b.build().is_err());
    }
}
