//! Hypergraph structural statistics — the quantities behind the paper's
//! §4 runtime discussion (the fine-grain hypergraph has `Z` vertices and
//! twice the nets/pins of the 1D model, hence the 2–3x partitioning
//! time).

use fgh_sparse::IndexType;

use crate::Hypergraph;

/// Structural statistics of a hypergraph.
///
/// Count fields are `u64` so the same struct reports on any index width.
#[derive(Debug, Clone, PartialEq)]
pub struct HypergraphStats {
    /// Vertex count `|V|`.
    pub num_vertices: u64,
    /// Net count `|N|`.
    pub num_nets: u64,
    /// Total pins.
    pub num_pins: usize,
    /// Smallest net size (0 for empty nets).
    pub min_net_size: usize,
    /// Largest net size.
    pub max_net_size: usize,
    /// Mean net size.
    pub avg_net_size: f64,
    /// Smallest vertex degree.
    pub min_degree: usize,
    /// Largest vertex degree.
    pub max_degree: usize,
    /// Mean vertex degree.
    pub avg_degree: f64,
    /// Total vertex weight.
    pub total_weight: u64,
    /// Number of zero-weight vertices (e.g. fine-grain dummies).
    pub zero_weight_vertices: u64,
    /// Number of single-pin nets (never cuttable).
    pub single_pin_nets: u64,
}

impl HypergraphStats {
    /// Computes statistics for `hg`.
    pub fn compute<I: IndexType>(hg: &Hypergraph<I>) -> Self {
        let nv = hg.num_vertices().index();
        let nn = hg.num_nets().index();
        let (mut min_ns, mut max_ns) = (usize::MAX, 0usize);
        let mut single = 0u64;
        for n in 0..nn {
            let s = hg.net_size(I::from_index(n));
            min_ns = min_ns.min(s);
            max_ns = max_ns.max(s);
            if s == 1 {
                single += 1;
            }
        }
        if nn == 0 {
            min_ns = 0;
        }
        let (mut min_d, mut max_d) = (usize::MAX, 0usize);
        let mut zero_w = 0u64;
        for v in 0..nv {
            let v = I::from_index(v);
            let d = hg.vertex_degree(v);
            min_d = min_d.min(d);
            max_d = max_d.max(d);
            if hg.vertex_weight(v) == 0 {
                zero_w += 1;
            }
        }
        if nv == 0 {
            min_d = 0;
        }
        HypergraphStats {
            num_vertices: nv as u64,
            num_nets: nn as u64,
            num_pins: hg.num_pins(),
            min_net_size: min_ns,
            max_net_size: max_ns,
            avg_net_size: if nn == 0 {
                0.0
            } else {
                hg.num_pins() as f64 / nn as f64
            },
            min_degree: min_d,
            max_degree: max_d,
            avg_degree: if nv == 0 {
                0.0
            } else {
                hg.num_pins() as f64 / nv as f64
            },
            total_weight: hg.total_vertex_weight(),
            zero_weight_vertices: zero_w,
            single_pin_nets: single,
        }
    }

    /// Histogram of net sizes in power-of-two buckets: entry `i` counts
    /// nets with size in `[2^i, 2^(i+1))` (entry 0 covers sizes 0 and 1).
    pub fn net_size_histogram<I: IndexType>(hg: &Hypergraph<I>) -> Vec<usize> {
        let mut hist: Vec<usize> = Vec::new();
        for n in 0..hg.num_nets().index() {
            let s = hg.net_size(I::from_index(n));
            let bucket = if s <= 1 {
                0
            } else {
                usize::BITS as usize - (s.leading_zeros() as usize) - 1
            };
            if hist.len() <= bucket {
                hist.resize(bucket + 1, 0);
            }
            hist[bucket] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let hg: Hypergraph = Hypergraph::from_nets_weighted(
            4,
            &[vec![0, 1, 2], vec![2, 3], vec![3]],
            vec![1, 1, 0, 2],
            vec![1, 1, 1],
        )
        .unwrap();
        let s = HypergraphStats::compute(&hg);
        assert_eq!(s.num_vertices, 4);
        assert_eq!(s.num_nets, 3);
        assert_eq!(s.num_pins, 6);
        assert_eq!(s.min_net_size, 1);
        assert_eq!(s.max_net_size, 3);
        assert_eq!(s.avg_net_size, 2.0);
        assert_eq!(s.min_degree, 1);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.total_weight, 4);
        assert_eq!(s.zero_weight_vertices, 1);
        assert_eq!(s.single_pin_nets, 1);
    }

    #[test]
    fn stats_empty() {
        let hg: Hypergraph = Hypergraph::from_nets(0, &[]).unwrap();
        let s = HypergraphStats::compute(&hg);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.min_net_size, 0);
    }

    #[test]
    fn stats_agree_across_widths() {
        let nets = [vec![0, 1, 2], vec![2, 3], vec![3]];
        let hg32: Hypergraph = Hypergraph::from_nets(4, &nets).unwrap();
        let nets64: Vec<Vec<u64>> = nets
            .iter()
            .map(|n| n.iter().map(|&p| p as u64).collect())
            .collect();
        let hg64 = Hypergraph::<u64>::from_nets(4, &nets64).unwrap();
        assert_eq!(
            HypergraphStats::compute(&hg32),
            HypergraphStats::compute(&hg64)
        );
    }

    #[test]
    fn histogram_buckets() {
        // Sizes 1, 2, 3, 5, 9 -> buckets 0, 1, 1, 2, 3.
        let hg: Hypergraph = Hypergraph::from_nets(
            9,
            &[
                vec![0],
                vec![0, 1],
                vec![0, 1, 2],
                vec![0, 1, 2, 3, 4],
                vec![0, 1, 2, 3, 4, 5, 6, 7, 8],
            ],
        )
        .unwrap();
        let h = HypergraphStats::net_size_histogram(&hg);
        assert_eq!(h, vec![1, 2, 1, 1]);
    }
}
