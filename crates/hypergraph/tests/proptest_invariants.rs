//! Property tests of the runtime invariant validators:
//! `Hypergraph::validate_invariants` must hold after every public
//! construction path (from_nets, the incremental builder, extraction),
//! and `Partition::validate_invariants` after every assignment.

use fgh_hypergraph::{Hypergraph, HypergraphBuilder, Partition};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn nets() -> impl Strategy<Value = (u32, Vec<Vec<u32>>)> {
    (2u32..=16).prop_flat_map(|nv| {
        proptest::collection::vec(
            proptest::collection::btree_set(0..nv, 1..=(nv as usize).min(6)),
            0..=20,
        )
        .prop_map(move |ns| {
            (
                nv,
                ns.into_iter()
                    .map(|s| s.into_iter().collect::<Vec<u32>>())
                    .collect(),
            )
        })
    })
}

proptest! {
    /// Every `from_nets` construction satisfies the structural invariants.
    #[test]
    fn from_nets_valid((nv, ns) in nets()) {
        let hg = Hypergraph::from_nets(nv, &ns).expect("pins in range");
        hg.validate_invariants().expect("from_nets");
    }

    /// The incremental builder produces structurally valid hypergraphs,
    /// including with out-of-order `add_pin` calls.
    #[test]
    fn builder_valid((nv, ns) in nets(), seed in 0u64..100) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = HypergraphBuilder::with_unit_vertices(nv);
        for pins in &ns {
            // Half the nets go in whole, half are grown pin by pin — the
            // builder must canonicalize both the same way.
            if rand::Rng::gen_bool(&mut rng, 0.5) {
                b.add_net(pins.clone());
            } else {
                let n = b.add_net(Vec::new());
                let mut shuffled = pins.clone();
                rand::seq::SliceRandom::shuffle(shuffled.as_mut_slice(), &mut rng);
                for &p in &shuffled {
                    b.add_pin(n, p);
                }
            }
        }
        let hg = b.build().expect("valid construction");
        hg.validate_invariants().expect("builder");
    }

    /// Extraction keeps both the invariants and the id map consistent,
    /// and partitions stay valid after every reassignment.
    #[test]
    fn extraction_and_partition_valid((nv, ns) in nets(), k in 1u32..=4, seed in 0u64..200) {
        let hg = Hypergraph::from_nets(nv, &ns).expect("pins in range");
        let mut rng = SmallRng::seed_from_u64(seed);
        let parts: Vec<u32> = (0..nv)
            .map(|_| rand::Rng::gen_range(&mut rng, 0..k))
            .collect();
        let mut p = Partition::new(k, parts).expect("parts < k");
        p.validate_invariants(&hg).expect("fresh partition");

        for part in 0..k {
            let (sub, ids) = hg.extract_part(&p, part);
            sub.validate_invariants().expect("extracted part");
            prop_assert_eq!(sub.num_vertices() as usize, ids.len());
            for &orig in &ids {
                prop_assert!(orig < nv);
                prop_assert_eq!(p.part(orig), part);
            }
        }

        // Reassign a few vertices; the invariants must hold throughout.
        for _ in 0..5 {
            let v = rand::Rng::gen_range(&mut rng, 0..nv);
            let q = rand::Rng::gen_range(&mut rng, 0..k);
            p.assign(v, q);
            p.validate_invariants(&hg).expect("after assign");
        }
    }
}
