//! Property tests of hypergraph structure and metrics: dual-CSR
//! consistency, cutsize identities, net-splitting extraction invariants,
//! and `.hgr` round trips.

use fgh_hypergraph::{connectivities, cutsize_connectivity, cutsize_cutnet, Hypergraph, Partition};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn hypergraph() -> impl Strategy<Value = Hypergraph> {
    (2u32..=20).prop_flat_map(|nv| {
        proptest::collection::vec(
            proptest::collection::btree_set(0..nv, 1..=(nv as usize).min(8)),
            0..=25,
        )
        .prop_map(move |nets| {
            let nets: Vec<Vec<u32>> = nets.into_iter().map(|s| s.into_iter().collect()).collect();
            Hypergraph::from_nets(nv, &nets).expect("pins in range")
        })
    })
}

fn random_partition(hg: &Hypergraph, k: u32, seed: u64) -> Partition {
    let mut rng = SmallRng::seed_from_u64(seed);
    Partition::new(
        k,
        (0..hg.num_vertices())
            .map(|_| rand::Rng::gen_range(&mut rng, 0..k))
            .collect(),
    )
    .expect("parts < k")
}

proptest! {
    /// Dual-CSR consistency: v in pins[n] iff n in nets[v], and pin/net
    /// totals agree.
    #[test]
    fn dual_consistency(hg in hypergraph()) {
        let mut pin_total = 0usize;
        for n in 0..hg.num_nets() {
            for &v in hg.pins(n) {
                prop_assert!(hg.nets(v).contains(&n));
                pin_total += 1;
            }
        }
        prop_assert_eq!(pin_total, hg.num_pins());
        for v in 0..hg.num_vertices() {
            for &n in hg.nets(v) {
                prop_assert!(hg.pins(n).contains(&v));
            }
        }
        hg.validate().expect("valid");
    }

    /// Cutsize identities: λ−1 cutsize >= cut-net cutsize, both zero for
    /// K = 1, λ values bounded by min(K, net size).
    #[test]
    fn cutsize_identities(hg in hypergraph(), k in 1u32..=5, seed in 0u64..300) {
        let p = random_partition(&hg, k, seed);
        let conn = cutsize_connectivity(&hg, &p);
        let cutnet = cutsize_cutnet(&hg, &p);
        prop_assert!(conn >= cutnet);
        prop_assert!(conn <= cutnet * (k as u64).saturating_sub(1).max(1));
        if k == 1 {
            prop_assert_eq!(conn, 0);
        }
        for (n, &l) in connectivities(&hg, &p).iter().enumerate() {
            prop_assert!(l as usize <= hg.net_size(n as u32).min(k as usize));
        }
    }

    /// Net splitting telescopes: the λ−1 cutsize of a K-way partition
    /// equals the sum over parts of each extracted sub-hypergraph's
    /// internal λ−1 *deficit*... verified here in its practical corollary:
    /// extraction keeps exactly the pins of the part and preserves weights.
    #[test]
    fn extraction_invariants(hg in hypergraph(), k in 2u32..=4, seed in 0u64..300) {
        let p = random_partition(&hg, k, seed);
        let mut total_vertices = 0u32;
        for part in 0..k {
            let (sub, ids) = hg.extract_part(&p, part);
            total_vertices += sub.num_vertices();
            // ids maps back to vertices of this part, in order.
            for (nv, &ov) in ids.iter().enumerate() {
                prop_assert_eq!(p.part(ov), part);
                prop_assert_eq!(sub.vertex_weight(nv as u32), hg.vertex_weight(ov));
            }
            // Every kept net's pins are a subset of some original net's
            // in-part pins, and no kept net has fewer than 2 pins.
            for n in 0..sub.num_nets() {
                prop_assert!(sub.net_size(n) >= 2);
            }
        }
        prop_assert_eq!(total_vertices, hg.num_vertices());
    }

    /// `.hgr` write/read round trips any hypergraph.
    #[test]
    fn hgr_roundtrip(hg in hypergraph()) {
        // The .hgr format cannot express empty nets' positions... it can:
        // an empty line would be skipped; drop empty nets for the check.
        let nets: Vec<Vec<u32>> = (0..hg.num_nets())
            .filter(|&n| hg.net_size(n) > 0)
            .map(|n| hg.pins(n).to_vec())
            .collect();
        let clean = Hypergraph::from_nets(hg.num_vertices(), &nets).expect("valid");
        let mut buf = Vec::new();
        fgh_hypergraph::io::write_hgr_to(&clean, &mut buf).expect("write");
        let back = fgh_hypergraph::io::read_hgr_from(buf.as_slice()).expect("read");
        prop_assert_eq!(back, clean);
    }
}
