//! `OrderedMutex` — a `std::sync::Mutex` that knows its place in the
//! workspace's declared lock hierarchy.
//!
//! The static side of deadlock freedom is `cargo xtask lint` rule
//! FGH006, which checks the *textual* nesting of `.lock()` calls
//! against the `[locks] order` list in `xtask/lint.toml`. This module
//! is the dynamic side: under the `paranoid` cargo feature every
//! [`OrderedMutex::lock`] pushes onto a thread-local acquisition stack
//! and panics the moment a thread tries to acquire a lock whose rank is
//! not strictly greater than everything it already holds — the
//! interleaving that *could* deadlock is reported on the first run that
//! reaches it, whether or not the other thread shows up. Without the
//! feature the wrapper compiles down to a plain `Mutex` plus two copies
//! of a `&'static str` and a `u16`; there is no thread-local traffic.
//!
//! The rank constants in [`lock_order`] mirror `[locks] order` in
//! `xtask/lint.toml`; keep the two lists in sync (each names the other).
//!
//! A condvar wait through [`OrderedMutexGuard::wait_timeout`] keeps the
//! lock on the acquisition stack even though the mutex is released
//! while blocked. That is deliberately conservative and matches the
//! textual model: a scope written to hold rank N across a wait must not
//! acquire ≤ N afterwards either.

use std::sync::{Condvar, LockResult, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Ranks of the workspace's long-lived locks, in required acquisition
/// order. Mirror of `[locks] order` in `xtask/lint.toml` — keep in sync.
pub mod lock_order {
    /// `fgh-partition`'s `ArenaPool` free-list.
    pub const ARENA_POOL: u16 = 0;
    /// `fgh-serve`'s bounded job queue.
    pub const JOB_QUEUE: u16 = 1;
    /// `fgh-serve`'s LRU plan cache.
    pub const PLAN_CACHE: u16 = 2;
    /// `fgh-serve`'s per-worker `SharedSession` state.
    pub const SESSION_STATE: u16 = 3;
    /// `fgh-serve`'s in-flight cancellation-token table.
    pub const IN_FLIGHT_TABLE: u16 = 4;
    /// `fgh-serve`'s worker join-handle list.
    pub const WORKER_HANDLES: u16 = 5;
    /// `fgh-trace`'s collecting-sink span/counter buffers.
    pub const TRACE_SINK: u16 = 6;
}

#[cfg(feature = "paranoid")]
mod held {
    //! The per-thread acquisition stack. Entries carry a unique id so a
    //! guard's release finds *its* entry even when guards are dropped
    //! out of acquisition order (which is legal — only acquisition is
    //! ranked).

    use std::cell::{Cell, RefCell};

    thread_local! {
        static STACK: RefCell<Vec<(u16, &'static str, u64)>> =
            const { RefCell::new(Vec::new()) };
        static NEXT_ID: Cell<u64> = const { Cell::new(0) };
    }

    /// Checks `rank` against every held lock and records the
    /// acquisition. Panics on a hierarchy violation — before the mutex
    /// is touched, so the defect is a loud report, not a silent
    /// deadlock waiting for its partner interleaving.
    pub(super) fn acquire(rank: u16, name: &'static str) -> u64 {
        let id = NEXT_ID.with(|n| {
            let v = n.get();
            n.set(v.wrapping_add(1));
            v
        });
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(&(held_rank, held_name, _)) = s.iter().find(|&&(r, _, _)| rank <= r) {
                panic!(
                    "lock-order violation: thread acquiring `{name}` (rank {rank}) while \
                     holding `{held_name}` (rank {held_rank}); the declared hierarchy in \
                     xtask/lint.toml [locks] requires strictly increasing ranks"
                );
            }
            s.push((rank, name, id));
        });
        id
    }

    /// Removes the entry pushed by `acquire`. Runs from `Drop` during
    /// possible unwinding, so it must never panic: thread-teardown and
    /// reentrancy failures are ignored rather than reported.
    pub(super) fn release(id: u64) {
        let _ = STACK.try_with(|s| {
            if let Ok(mut s) = s.try_borrow_mut() {
                if let Some(pos) = s.iter().rposition(|&(_, _, i)| i == id) {
                    s.remove(pos);
                }
            }
        });
    }
}

/// A mutex with a name and a rank in the declared lock hierarchy. See
/// the module docs for the checking model.
#[derive(Debug)]
pub struct OrderedMutex<T> {
    name: &'static str,
    rank: u16,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Wraps `value`. `rank` should be one of the [`lock_order`]
    /// constants; `name` appears in violation panics and lint audits.
    pub const fn new(name: &'static str, rank: u16, value: T) -> Self {
        OrderedMutex {
            name,
            rank,
            inner: Mutex::new(value),
        }
    }

    /// Acquires the lock, mirroring [`Mutex::lock`]'s poison contract.
    /// Under `paranoid`, panics if this thread already holds a lock of
    /// equal or higher rank.
    pub fn lock(&self) -> LockResult<OrderedMutexGuard<'_, T>> {
        #[cfg(feature = "paranoid")]
        let id = held::acquire(self.rank, self.name);
        #[cfg(not(feature = "paranoid"))]
        let id = 0u64;
        match self.inner.lock() {
            Ok(g) => Ok(OrderedMutexGuard { guard: Some(g), id }),
            Err(poisoned) => Err(PoisonError::new(OrderedMutexGuard {
                guard: Some(poisoned.into_inner()),
                id,
            })),
        }
    }

    /// The name given at construction.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The hierarchy rank given at construction.
    pub fn rank(&self) -> u16 {
        self.rank
    }

    /// Consumes the mutex and returns the inner value, recovering from
    /// poisoning (the value's own invariants are the caller's problem).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard returned by [`OrderedMutex::lock`]. The inner option is
/// `Some` for the guard's whole observable life; it is taken only
/// transiently inside [`OrderedMutexGuard::wait_timeout`].
pub struct OrderedMutexGuard<'a, T> {
    guard: Option<MutexGuard<'a, T>>,
    /// Acquisition-stack entry id; only read under `paranoid`.
    #[cfg_attr(not(feature = "paranoid"), allow(dead_code))]
    id: u64,
}

impl<'a, T> OrderedMutexGuard<'a, T> {
    /// Blocks on `cv` until notified or `dur` elapses, releasing and
    /// reacquiring the underlying mutex like
    /// [`Condvar::wait_timeout`]. Returns the guard and whether the
    /// wait timed out; poisoning is recovered into the guard. The lock
    /// stays on the paranoid acquisition stack for the duration (see
    /// the module docs).
    pub fn wait_timeout(mut self, cv: &Condvar, dur: Duration) -> (Self, bool) {
        let Some(inner) = self.guard.take() else {
            return (self, false);
        };
        let (inner, timed_out) = match cv.wait_timeout(inner, dur) {
            Ok((g, t)) => (g, t.timed_out()),
            Err(poisoned) => {
                let (g, t) = poisoned.into_inner();
                (g, t.timed_out())
            }
        };
        self.guard = Some(inner);
        (self, timed_out)
    }
}

impl<T> std::ops::Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.guard {
            Some(g) => g,
            None => unreachable!("OrderedMutexGuard used after wait_timeout took it"),
        }
    }
}

impl<T> std::ops::DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.guard {
            Some(g) => g,
            None => unreachable!("OrderedMutexGuard used after wait_timeout took it"),
        }
    }
}

impl<T> Drop for OrderedMutexGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "paranoid")]
        held::release(self.id);
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for OrderedMutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.guard {
            Some(g) => g.fmt(f),
            None => f.write_str("OrderedMutexGuard(taken)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trips_values() {
        let m = OrderedMutex::new("Test", 0, 7u32);
        {
            let mut g = m.lock().unwrap_or_else(PoisonError::into_inner);
            *g += 1;
        }
        assert_eq!(*m.lock().unwrap_or_else(PoisonError::into_inner), 8);
        assert_eq!(m.name(), "Test");
        assert_eq!(m.rank(), 0);
        assert_eq!(m.into_inner(), 8);
    }

    #[test]
    fn correct_order_is_silent_in_both_modes() {
        let a = OrderedMutex::new("A", 0, ());
        let b = OrderedMutex::new("B", 1, ());
        let ga = a.lock().unwrap_or_else(PoisonError::into_inner);
        let gb = b.lock().unwrap_or_else(PoisonError::into_inner);
        drop((ga, gb));
        // Re-acquisition after release is fine, including lower ranks.
        let gb = b.lock().unwrap_or_else(PoisonError::into_inner);
        drop(gb);
        let ga = a.lock().unwrap_or_else(PoisonError::into_inner);
        drop(ga);
    }

    #[cfg(feature = "paranoid")]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn paranoid_panics_on_misordered_acquisition() {
        let a = OrderedMutex::new("A", lock_order::ARENA_POOL, ());
        let b = OrderedMutex::new("B", lock_order::JOB_QUEUE, ());
        let _gb = b.lock().unwrap_or_else(PoisonError::into_inner);
        let _ga = a.lock().unwrap_or_else(PoisonError::into_inner);
    }

    #[cfg(feature = "paranoid")]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn paranoid_panics_on_same_rank_reentry() {
        let a = OrderedMutex::new("A1", 3, ());
        let b = OrderedMutex::new("A2", 3, ());
        let _ga = a.lock().unwrap_or_else(PoisonError::into_inner);
        let _gb = b.lock().unwrap_or_else(PoisonError::into_inner);
    }

    #[cfg(not(feature = "paranoid"))]
    #[test]
    fn plain_mode_does_not_track_order() {
        // Without the feature the wrapper is a plain mutex: a reversed
        // acquisition succeeds (the locks are different objects, so no
        // real deadlock on a single thread).
        let a = OrderedMutex::new("A", 0, ());
        let b = OrderedMutex::new("B", 1, ());
        let gb = b.lock().unwrap_or_else(PoisonError::into_inner);
        let ga = a.lock().unwrap_or_else(PoisonError::into_inner);
        drop((ga, gb));
    }

    #[cfg(feature = "paranoid")]
    #[test]
    fn paranoid_stack_is_per_thread() {
        // Two threads may hold the same ranks concurrently; the
        // hierarchy constrains each thread's own nesting only.
        let a = Arc::new(OrderedMutex::new("A", 0, 0u32));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *a.lock().unwrap_or_else(PoisonError::into_inner) += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().ok();
        }
        assert_eq!(*a.lock().unwrap_or_else(PoisonError::into_inner), 400);
    }

    #[test]
    fn wait_timeout_returns_guard_and_flag() {
        let m = Arc::new(OrderedMutex::new("Q", 1, 0u32));
        let cv = Arc::new(Condvar::new());
        let g = m.lock().unwrap_or_else(PoisonError::into_inner);
        let (g, timed_out) = g.wait_timeout(&cv, Duration::from_millis(5));
        assert!(timed_out);
        assert_eq!(*g, 0);
        drop(g);
        // A notified wait comes back without the timeout flag.
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let waker = std::thread::spawn(move || {
            loop {
                {
                    let g = m2.lock().unwrap_or_else(PoisonError::into_inner);
                    if *g == 1 {
                        break;
                    }
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            cv2.notify_all();
        });
        let mut g = m.lock().unwrap_or_else(PoisonError::into_inner);
        *g = 1;
        let (g, _) = g.wait_timeout(&cv, Duration::from_secs(5));
        drop(g);
        waker.join().ok();
    }

    #[test]
    fn poisoned_lock_recovers_via_into_inner() {
        let m = Arc::new(OrderedMutex::new("P", 2, 41u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap_or_else(PoisonError::into_inner);
            panic!("poison it");
        })
        .join();
        let mut g = m.lock().unwrap_or_else(PoisonError::into_inner);
        *g += 1;
        assert_eq!(*g, 42);
    }
}
