//! # fgh-invariant — the shared vocabulary of structural invariants
//!
//! Every core data structure in the workspace (`CooMatrix`, `CsrMatrix`,
//! `CscMatrix`, `Hypergraph`, `Partition`, the decomposition models)
//! exposes a `validate()`-style method returning
//! `Result<(), InvariantViolation>`. The violations are *diagnoses*, not
//! recoverable errors: a violation means the structure's own construction
//! contract was broken somewhere — memory corruption, a partitioner
//! defect, or a bug in a mutating operation — so callers log/abort rather
//! than branch on the variant. Keeping the type in a leaf crate lets the
//! bottom-of-stack crates (`fgh-sparse`, `fgh-hypergraph`) share it
//! without depending on each other.
//!
//! The checks themselves run in three places:
//! * **proptest harnesses** — after every public mutating operation,
//! * **`MultilevelDriver` checkpoints** — behind the `paranoid` cargo
//!   feature of `fgh-partition` (off by default; zero cost when off),
//! * **`cargo xtask lint --paranoid-smoke`-style CI jobs** via the test
//!   suites.

// Robustness contract: library (non-test) code must not panic.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod ordered;

pub use ordered::{lock_order, OrderedMutex, OrderedMutexGuard};

/// A broken structural invariant: which structure, which rule, and a
/// human-readable account of the offending indices/values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    structure: &'static str,
    rule: &'static str,
    detail: String,
}

impl InvariantViolation {
    /// Creates a violation report for `structure` (type name) breaking
    /// `rule` (a short dotted identifier such as `"row_ptr.monotone"`).
    pub fn new(structure: &'static str, rule: &'static str, detail: String) -> Self {
        InvariantViolation {
            structure,
            rule,
            detail,
        }
    }

    /// The structure that failed validation (e.g. `"CsrMatrix"`).
    pub fn structure(&self) -> &'static str {
        self.structure
    }

    /// The violated rule's identifier (e.g. `"fine_grain.consistency"`).
    pub fn rule(&self) -> &'static str {
        self.rule
    }

    /// The human-readable account of the violation.
    pub fn detail(&self) -> &str {
        &self.detail
    }
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invariant violated [{}/{}]: {}",
            self.structure, self.rule, self.detail
        )
    }
}

impl std::error::Error for InvariantViolation {}

/// Early-returns an [`InvariantViolation`] when `cond` is false.
///
/// The enclosing function must return `Result<_, InvariantViolation>`:
///
/// ```
/// use fgh_invariant::{invariant, InvariantViolation};
/// fn check(len: usize) -> Result<(), InvariantViolation> {
///     invariant!(len < 10, "Demo", "len.bound", "len {len} out of range");
///     Ok(())
/// }
/// assert!(check(3).is_ok());
/// assert_eq!(check(12).unwrap_err().rule(), "len.bound");
/// ```
#[macro_export]
macro_rules! invariant {
    ($cond:expr, $structure:expr, $rule:expr, $($arg:tt)+) => {
        if !$cond {
            return Err($crate::InvariantViolation::new(
                $structure,
                $rule,
                format!($($arg)+),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_structure_rule_and_detail() {
        let v = InvariantViolation::new("CsrMatrix", "row_ptr.monotone", "at row 3".into());
        let s = v.to_string();
        assert!(s.contains("CsrMatrix"), "{s}");
        assert!(s.contains("row_ptr.monotone"), "{s}");
        assert!(s.contains("at row 3"), "{s}");
    }

    #[test]
    fn macro_passes_and_fails() {
        fn f(x: u32) -> Result<(), InvariantViolation> {
            invariant!(x.is_multiple_of(2), "T", "even", "{x} is odd");
            Ok(())
        }
        assert!(f(2).is_ok());
        let e = f(3).unwrap_err();
        assert_eq!(e.structure(), "T");
        assert_eq!(e.detail(), "3 is odd");
    }
}
