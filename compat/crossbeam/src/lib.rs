//! Offline stand-in for the subset of `crossbeam` used by this workspace:
//! `channel::{unbounded, Sender, Receiver}`. Backed by `std::sync::mpsc`,
//! with a mutex around the receiver end so `Receiver` stays `Sync` like
//! crossbeam's (the workspace moves each receiver into one thread, so the
//! lock is uncontended).

pub mod channel {
    use std::sync::mpsc;
    use std::sync::Mutex;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    pub struct Sender<T>(mpsc::Sender<T>);

    pub struct Receiver<T>(Mutex<mpsc::Receiver<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.lock().expect("channel poisoned").recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.lock().expect("channel poisoned").try_recv()
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (s, r) = mpsc::channel();
        (Sender(s), Receiver(Mutex::new(r)))
    }

    #[cfg(test)]
    mod tests {
        use super::unbounded;

        #[test]
        fn fan_in_across_threads() {
            let (s, r) = unbounded::<usize>();
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let s = s.clone();
                    std::thread::spawn(move || s.send(i).unwrap())
                })
                .collect();
            let mut got = Vec::new();
            for _ in 0..4 {
                got.push(r.recv().unwrap());
            }
            for h in handles {
                h.join().unwrap();
            }
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }
    }
}
