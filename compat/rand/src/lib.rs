//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace: `SmallRng` (xoshiro256++), `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_bool, gen_range}`, and `seq::SliceRandom::{shuffle,
//! choose}`. The build environment has no registry access, so the real
//! crate cannot be vendored; the streams differ from upstream `rand` but
//! are deterministic per seed, which is all the workspace relies on.

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators. Only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A value sampled uniformly from the "standard" distribution of its type.
pub trait StandardSample: Sized {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types that can be drawn uniformly from a bounded interval. Mirrors
/// rand's `SampleUniform` so that `gen_range(0..n)` infers the literal's
/// type from context exactly like the real crate.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: &Self,
        hi: &Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_int_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(lo: &Self, hi: &Self, inclusive: bool, rng: &mut R) -> $t {
                let lo = *lo as i128;
                let width = (*hi as i128 - lo) as u128 + inclusive as u128;
                assert!(width > 0, "cannot sample empty range");
                // Multiply-shift keeps the draw within bounds; the bias
                // for widths << 2^64 is negligible for this workload.
                let off = ((rng.next_u64() as u128 * width) >> 64) as i128;
                (lo + off) as $t
            }
        }
    )*};
}

impl_int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(lo: &Self, hi: &Self, _inclusive: bool, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_sample_uniform!(f32, f64);

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(&self.start, &self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_uniform(&start, &end, true, rng)
    }
}

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast generator (xoshiro256++), seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice helpers, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1usize..=2);
            assert!((1..=2).contains(&y));
            let f = rng.gen_range(-10.0..10.0);
            assert!((-10.0..10.0).contains(&f));
            let b = rng.gen_range(0..2u8);
            assert!(b < 2);
        }
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
