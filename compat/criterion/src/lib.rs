//! Offline stand-in for the subset of `criterion` 0.5 used by this
//! workspace's benches. It keeps the same structure (groups, ids,
//! throughput, `criterion_group!`/`criterion_main!`) but with a simple
//! warmup + fixed-sample timing loop and plain-text reporting instead of
//! criterion's statistical machinery.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Anything usable as a bench id: a `BenchmarkId` or a plain string.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.full
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

pub struct Bencher {
    /// Mean wall-clock time per iteration, filled in by `iter`.
    mean: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate the per-iteration cost.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        loop {
            std_black_box(f());
            warmup_iters += 1;
            if warmup_start.elapsed() >= Duration::from_millis(50) || warmup_iters >= 1000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        // Aim for ~200ms of measurement, capped to keep suites fast.
        let iters = ((0.2 / per_iter.max(1e-9)) as u64).clamp(1, 10_000);
        let start = Instant::now();
        for _ in 0..iters {
            std_black_box(f());
        }
        self.mean = start.elapsed() / iters as u32;
        self.iters = iters;
    }
}

fn run_one(
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        mean: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if b.mean > Duration::ZERO => {
            let mbps = n as f64 / b.mean.as_secs_f64() / 1e6;
            format!("  ({mbps:.1} MB/s)")
        }
        Some(Throughput::Elements(n)) if b.mean > Duration::ZERO => {
            let eps = n as f64 / b.mean.as_secs_f64();
            format!("  ({eps:.0} elem/s)")
        }
        _ => String::new(),
    };
    println!(
        "{name:<60} time: {:>12.3?}  ({} iters){rate}",
        b.mean, b.iters
    );
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(None, &id.into_id(), None, &mut f);
        self
    }

    pub fn sample_size(self, _n: usize) -> Self {
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(Some(&self.name), &id.into_id(), self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(Some(&self.name), &id.into_id(), self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
