//! Offline stand-in for the subset of `rayon` used by this workspace:
//! [`join`], [`ThreadPool`], [`ThreadPoolBuilder`], [`current_num_threads`],
//! and [`current_thread_index`].
//!
//! The real rayon keeps a lazily-started global work-stealing pool; this
//! stand-in keeps rayon's *shape* (`ThreadPoolBuilder::new().num_threads(n)
//! .build()?.install(|| ...)` with nested `join` calls inside) but
//! implements it on `std::thread::scope`. A pool is a token counter: a
//! pool of `n` threads hands out `n - 1` spare tokens, and `join(a, b)`
//! spawns `b` onto a fresh scoped thread when a token is free, running it
//! inline otherwise. Because every spawn is scoped inside the `join` call
//! itself, closures may borrow from the caller's stack exactly as with
//! real rayon, total concurrency never exceeds the pool size, and there is
//! no blocking hand-off that could deadlock — the fallback is always to
//! run inline on the current thread.
//!
//! Differences from real rayon, none observable to this workspace:
//! * `install` runs the closure on the calling thread (real rayon migrates
//!   it onto a pool thread); the calling thread counts as pool member #0.
//! * Threads are created per `join` rather than parked in the pool. The
//!   workspace forks at bisection/seed granularity (milliseconds of work),
//!   so spawn cost is noise.
//! * There is no global fallback pool: `join` outside any `install` runs
//!   both closures inline, serially, in order.

// Robustness contract: library (non-test) code must not panic.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Shared pool state: the configured width and the spare-thread tokens.
#[derive(Debug)]
struct PoolInner {
    threads: usize,
    spare: AtomicUsize,
}

impl PoolInner {
    // lint: atomic — relaxed: the token count is its own synchronization
    // object; the CAS only needs atomicity, and the spawned thread is
    // synchronized by `thread::scope`'s join edge, not by this counter
    fn try_acquire(self: &Arc<Self>) -> Option<Token> {
        let mut cur = self.spare.load(Ordering::Relaxed);
        while cur > 0 {
            match self.spare.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(Token(Arc::clone(self))),
                Err(seen) => cur = seen,
            }
        }
        None
    }
}

/// RAII spare-thread token: released back to the pool on drop, so a
/// panicking branch cannot leak pool capacity.
struct Token(Arc<PoolInner>);

impl Drop for Token {
    fn drop(&mut self) {
        self.0.spare.fetch_add(1, Ordering::Relaxed); // lint: atomic — relaxed: token release; scope join provides the ordering
    }
}

thread_local! {
    /// The pool the current thread is working for, set by
    /// [`ThreadPool::install`] and inherited by spawned `join` branches.
    static CURRENT: RefCell<Option<Arc<PoolInner>>> = const { RefCell::new(None) };
}

/// Restores the previous thread-local pool when an `install` scope ends.
struct EnterGuard(Option<Arc<PoolInner>>);

fn enter(pool: Option<Arc<PoolInner>>) -> EnterGuard {
    EnterGuard(CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), pool)))
}

impl Drop for EnterGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.0.take());
    }
}

/// Error from [`ThreadPoolBuilder::build`]. The stand-in never actually
/// fails to build; the type exists so callers keep rayon's `Result`
/// handling.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`], mirroring rayon's.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the pool width; `0` (the default) means one thread per
    /// available CPU, like rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool {
            inner: Arc::new(PoolInner {
                threads,
                spare: AtomicUsize::new(threads.saturating_sub(1)),
            }),
        })
    }
}

/// A fork-join pool of bounded width.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    inner: Arc<PoolInner>,
}

impl ThreadPool {
    /// Runs `op` with this pool as the current thread's pool: `join` calls
    /// made (transitively) inside may spawn onto spare pool threads.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let _guard = enter(Some(Arc::clone(&self.inner)));
        op()
    }

    /// The configured pool width.
    pub fn current_num_threads(&self) -> usize {
        self.inner.threads
    }

    /// [`join`] under this pool, without a surrounding `install`.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        self.install(|| join(a, b))
    }
}

/// Width of the current pool: the `install`ed pool's size, else 1 (no
/// implicit global pool in the stand-in).
pub fn current_num_threads() -> usize {
    CURRENT.with(|c| c.borrow().as_ref().map(|p| p.threads).unwrap_or(1))
}

/// `Some(0)` when the current thread works for a pool (rayon reports the
/// worker index; the stand-in does not number threads), `None` outside.
pub fn current_thread_index() -> Option<usize> {
    CURRENT.with(|c| c.borrow().as_ref().map(|_| 0))
}

/// Runs both closures, potentially in parallel, and returns both results.
///
/// `a` always runs on the calling thread. `b` runs on a freshly spawned
/// scoped thread when the current pool has a spare token, and inline (after
/// `a`) otherwise. A panic in either closure is propagated to the caller
/// after both branches have finished, like real rayon.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let pool = CURRENT.with(|c| c.borrow().clone());
    let Some(token) = pool.as_ref().and_then(PoolInner::try_acquire) else {
        return (a(), b());
    };
    let pool_for_b = pool.clone();
    let (ra, rb) = std::thread::scope(move |scope| {
        let hb = scope.spawn(move || {
            let _token = token; // released when b finishes
            let _guard = enter(pool_for_b);
            b()
        });
        // Catch a's panic so hb is still joined (scope would do so anyway,
        // but this lets us prefer a's panic payload deterministically).
        let ra = catch_unwind(AssertUnwindSafe(a));
        let rb = hb.join();
        (ra, rb)
    });
    match (ra, rb) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(pa), _) => resume_unwind(pa),
        (_, Err(pb)) => resume_unwind(pb),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn join_outside_pool_runs_inline_in_order() {
        let log = std::sync::Mutex::new(Vec::new());
        let ((), ()) = join(
            || log.lock().unwrap().push(1),
            || log.lock().unwrap().push(2),
        );
        assert_eq!(*log.lock().unwrap(), vec![1, 2]);
        assert_eq!(current_thread_index(), None);
    }

    #[test]
    fn pool_parallelizes_and_bounds_width() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.current_num_threads(), 4);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        fn fan(depth: usize, live: &AtomicUsize, peak: &AtomicUsize) {
            let n = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(n, Ordering::SeqCst);
            if depth > 0 {
                join(|| fan(depth - 1, live, peak), || fan(depth - 1, live, peak));
            } else {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            live.fetch_sub(1, Ordering::SeqCst);
        }
        pool.install(|| {
            assert_eq!(current_num_threads(), 4);
            assert_eq!(current_thread_index(), Some(0));
            fan(5, &live, &peak)
        });
        // The counter counts nested frames, not threads, so the bound is
        // loose; the real invariant (≤ 4 OS threads) is enforced by the
        // token counter this asserts on indirectly.
        assert!(peak.load(Ordering::SeqCst) >= 1);
        assert_eq!(pool.inner.spare.load(Ordering::SeqCst), 3, "tokens leaked");
    }

    #[test]
    fn results_come_back_in_position() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let (a, b) = pool.join(|| "left", || "right");
        assert_eq!((a, b), ("left", "right"));
    }

    #[test]
    fn nested_joins_sum_correctly() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        fn sum(lo: u64, hi: u64, hits: &AtomicU64) -> u64 {
            if hi - lo <= 1_000 {
                hits.fetch_add(1, Ordering::Relaxed);
                return (lo..hi).sum();
            }
            let mid = lo + (hi - lo) / 2;
            let (l, r) = join(|| sum(lo, mid, hits), || sum(mid, hi, hits));
            l + r
        }
        let hits = AtomicU64::new(0);
        let total = pool.install(|| sum(0, 100_000, &hits));
        assert_eq!(total, 100_000 * 99_999 / 2);
        assert!(hits.load(Ordering::Relaxed) >= 100);
    }

    #[test]
    fn panic_propagates_and_releases_tokens() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| join(|| 1, || panic!("branch b failed")))
        }));
        assert!(r.is_err());
        assert_eq!(pool.inner.spare.load(Ordering::SeqCst), 1, "token leaked");
        // The pool stays usable after the panic.
        let (a, b) = pool.join(|| 2, || 3);
        assert_eq!(a + b, 5);
    }

    #[test]
    fn single_thread_pool_never_spawns() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let main = std::thread::current().id();
        pool.install(|| {
            let (ta, tb) = join(
                || std::thread::current().id(),
                || std::thread::current().id(),
            );
            assert_eq!(ta, main);
            assert_eq!(tb, main);
        });
    }

    #[test]
    fn install_restores_previous_pool() {
        let outer = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        outer.install(|| {
            assert_eq!(current_num_threads(), 2);
            inner.install(|| assert_eq!(current_num_threads(), 3));
            assert_eq!(current_num_threads(), 2);
        });
        assert_eq!(current_num_threads(), 1);
    }
}
