//! Offline stand-in for the subset of `proptest` used by this workspace:
//! the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! `Strategy` with `prop_map`/`prop_flat_map`, range and tuple strategies,
//! `Just`, and `collection::{vec, btree_set}`.
//!
//! Values are generated from a deterministic per-test RNG (seeded from the
//! test's module path), so failures reproduce across runs. There is no
//! shrinking: a failing case panics with its case index.

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub mod strategy {
    use super::TestRng;

    /// A generator of values for property tests.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(&mut rng.0, self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(&mut rng.0, self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),* $(,)?) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// An inclusive size range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(&mut rng.0, self.min..=self.max)
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = std::collections::BTreeSet::new();
            // The element domain may be smaller than the target size, so
            // bound the attempts rather than insisting on an exact count.
            let mut attempts = 0usize;
            while set.len() < target && attempts < 100 * (target + 1) {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    use super::*;

    /// Deterministic RNG handed to strategies.
    pub struct TestRng(pub SmallRng);

    impl TestRng {
        pub fn for_test(name: &str) -> TestRng {
            // FNV-1a over the fully qualified test name keeps runs
            // deterministic while decorrelating sibling tests.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng(SmallRng::seed_from_u64(h))
        }
    }

    /// Number of cases per property, overridable via `PROPTEST_CASES`.
    pub fn num_cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Prints the failing case index if the test body panics, since there
    /// is no shrinking to reconstruct the input from.
    pub struct CaseGuard<'a> {
        pub test: &'a str,
        pub case: u32,
        pub armed: bool,
    }

    impl Drop for CaseGuard<'_> {
        fn drop(&mut self) {
            if self.armed && std::thread::panicking() {
                eprintln!(
                    "proptest shim: {} failed at case {} (deterministic; rerun reproduces)",
                    self.test, self.case
                );
            }
        }
    }
}

pub use test_runner::TestRng;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {$(
        $(#[$attr])*
        fn $name() {
            let __test_name = concat!(module_path!(), "::", stringify!($name));
            let mut __rng = $crate::test_runner::TestRng::for_test(__test_name);
            let __cases = $crate::test_runner::num_cases();
            for __case in 0..__cases {
                let mut __guard = $crate::test_runner::CaseGuard {
                    test: __test_name,
                    case: __case,
                    armed: true,
                };
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                #[allow(unused_mut)]
                let mut __finish = || {
                    $body
                    ::core::result::Result::Ok(())
                };
                let __outcome: ::core::result::Result<(), ()> = __finish();
                let _ = __outcome;
                __guard.armed = false;
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::core::assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::core::assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { ::core::assert_ne!($($args)*) };
}

/// Skips the rest of the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return ::core::result::Result::Err(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = (u32, u32)> {
        (1u32..=10).prop_flat_map(|n| (Just(n), 0..n))
    }

    proptest! {
        #[test]
        fn flat_map_respects_bound((n, x) in pairs()) {
            prop_assert!(x < n);
        }

        #[test]
        fn collections_in_size_range(v in crate::collection::vec(0u32..100, 2..=5)) {
            prop_assert!((2..=5).contains(&v.len()));
        }

        #[test]
        fn btree_set_distinct(s in crate::collection::btree_set(0u32..50, 3..=6)) {
            prop_assert!(s.len() <= 6);
            prop_assert!(s.len() >= 3, "domain of 50 must fill 3 slots");
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }
}
